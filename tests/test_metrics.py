"""Tests for the statistics helpers behind the evaluation tables."""

import pytest

from repro.metrics import (
    DEFAULT_PRICING,
    CostSummary,
    LatencySummary,
    MemorySummary,
    PricingModel,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)
from repro.metrics.stats import stddev


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_speedup(self):
        assert speedup(200.0, 100.0) == 2.0

    def test_speedup_rejects_zero_after(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_stddev_singleton_is_zero(self):
        assert stddev([4.2]) == 0.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q, method="linear"))
            )

    def test_p0_is_min_p100_is_max(self):
        data = [4.0, 8.0, 15.0]
        assert percentile(data, 0) == 4.0
        assert percentile(data, 100) == 15.0

    def test_singleton(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummaries:
    def test_latency_summary_fields(self):
        summary = LatencySummary.from_values([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean_ms == 25.0
        assert summary.max_ms == 40.0
        assert summary.p50_ms == 25.0

    def test_latency_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            LatencySummary.from_values([])

    def test_memory_summary(self):
        summary = MemorySummary.from_values([100.0, 150.0])
        assert summary.peak_mb == 150.0
        assert summary.mean_mb == 125.0

    def test_speedup_report_compare(self):
        before_lat = LatencySummary.from_values([200.0, 200.0])
        after_lat = LatencySummary.from_values([100.0, 100.0])
        before_mem = MemorySummary.from_values([150.0])
        after_mem = MemorySummary.from_values([100.0])
        report = SpeedupReport.compare(
            before_lat, after_lat, before_lat, after_lat, before_mem, after_mem
        )
        assert report.init_speedup == 2.0
        assert report.e2e_speedup == 2.0
        assert report.memory_reduction == 1.5


class TestCostModel:
    def test_pricing_defaults_are_lambda_like(self):
        assert DEFAULT_PRICING.per_gb_second == pytest.approx(0.0000166667)
        assert DEFAULT_PRICING.per_million_requests == pytest.approx(0.20)
        assert DEFAULT_PRICING.cold_start_surcharge == 0.0

    def test_pricing_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            PricingModel(per_gb_second=-1.0)
        with pytest.raises(ValueError):
            PricingModel(per_million_requests=-0.2)
        with pytest.raises(ValueError):
            PricingModel(cold_start_surcharge=-0.01)

    def test_cost_summary_decomposes(self):
        pricing = PricingModel(
            per_gb_second=0.01, per_million_requests=1000.0, cold_start_surcharge=0.5
        )
        cost = CostSummary.from_usage(
            gb_seconds=100.0, requests=2000, container_boots=4, pricing=pricing
        )
        assert cost.compute_cost == pytest.approx(1.0)
        assert cost.request_cost == pytest.approx(2.0)
        assert cost.cold_start_cost == pytest.approx(2.0)
        assert cost.total_cost == pytest.approx(5.0)
        assert cost.per_1k_requests == pytest.approx(2.5)

    def test_zero_requests_yield_zero_normalized_cost(self):
        cost = CostSummary.from_usage(gb_seconds=0.0, requests=0, container_boots=0)
        assert cost.total_cost == 0.0
        assert cost.per_1k_requests == 0.0

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=-1.0, requests=0, container_boots=0)
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=0.0, requests=-1, container_boots=0)
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=0.0, requests=0, container_boots=-1)

    def test_default_pricing_used_when_omitted(self):
        cost = CostSummary.from_usage(gb_seconds=1000.0, requests=1000, container_boots=0)
        assert cost.compute_cost == pytest.approx(1000.0 * DEFAULT_PRICING.per_gb_second)
        assert cost.request_cost == pytest.approx(0.0002)


class TestWindowedMetrics:
    def make_accumulator(self, window_s=60.0, pricing=None):
        from repro.metrics import WindowAccumulator

        return WindowAccumulator(window_s=window_s, pricing=pricing)

    def test_window_bucketing_by_arrival_time(self):
        acc = self.make_accumulator(window_s=60.0)
        for at in (0.0, 59.9, 60.0, 125.0):
            acc.observe_arrival(at)
        summary = acc.finalize()
        assert [w.index for w in summary.windows] == [0, 1, 2]
        assert [w.arrivals for w in summary.windows] == [2, 1, 1]
        assert summary.arrivals == 4

    def test_completion_attributes_to_arrival_window(self):
        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(59.0)
        # Long service: the request finishes minutes later, but its
        # metrics belong to the window it arrived in.
        acc.observe_completion(59.0, cold=True, queue_ms=500.0)
        summary = acc.finalize()
        assert len(summary.windows) == 1
        window = summary.windows[0]
        assert window.completed == 1
        assert window.cold_starts == 1
        assert window.cold_start_rate == 1.0

    def test_shed_rate(self):
        acc = self.make_accumulator()
        for _ in range(4):
            acc.observe_arrival(1.0)
        acc.observe_shed(1.0)
        summary = acc.finalize()
        assert summary.windows[0].shed_rate == pytest.approx(0.25)
        assert summary.shed == 1

    def test_queue_percentile_estimate_within_half_octave(self):
        acc = self.make_accumulator()
        for value in [10.0] * 95 + [1000.0] * 5:
            acc.observe_arrival(0.0)
            acc.observe_completion(0.0, cold=False, queue_ms=value)
        window = acc.finalize().windows[0]
        # p95 sits at the 10 ms mass; the log-histogram estimate must be
        # within one half-octave bucket (factor sqrt(2)) of the truth.
        assert 10.0 / 1.5 <= window.queue_p95_ms <= 10.0 * 1.5
        assert window.queue_mean_ms == pytest.approx(0.95 * 10.0 + 0.05 * 1000.0)

    def test_gb_seconds_spread_across_windows(self):
        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(0.0)
        # One 1024-MB container provisioned from 30 s to 90 s: half its
        # GB-seconds land in window 0, half in window 1.
        acc.observe_provision(30.0, 90.0, 1024.0)
        summary = acc.finalize()
        by_index = {w.index: w for w in summary.windows}
        assert by_index[0].gb_seconds == pytest.approx(30.0)
        assert by_index[1].gb_seconds == pytest.approx(30.0)
        assert summary.gb_seconds == pytest.approx(60.0)
        assert by_index[0].boots == 1
        assert by_index[1].boots == 0

    def test_cost_uses_pricing_model(self):
        from repro.metrics import PricingModel

        pricing = PricingModel(
            per_gb_second=0.01, per_million_requests=0.0, cold_start_surcharge=0.5
        )
        acc = self.make_accumulator(window_s=60.0, pricing=pricing)
        acc.observe_arrival(0.0)
        acc.observe_completion(0.0, cold=True, queue_ms=1.0)
        acc.observe_provision(0.0, 10.0, 1024.0)
        summary = acc.finalize()
        assert summary.cost.total_cost == pytest.approx(10.0 * 0.01 + 0.5)

    def test_series_and_window_at(self):
        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(10.0)
        acc.observe_arrival(70.0)
        acc.observe_arrival(70.0)
        summary = acc.finalize()
        assert summary.series("arrivals") == [1, 2]
        assert summary.window_at(75.0).arrivals == 2
        assert summary.window_at(500.0) is None

    def test_window_at_indexed_lookup_pins_behavior(self):
        # window_at is an O(1) indexed lookup (not a scan); every
        # timestamp inside a window hits that window, misses — before,
        # between (sparse windows), and after — return None, and the
        # lazily built index never perturbs dataclass equality.
        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(10.0)
        acc.observe_arrival(190.0)  # window 3 only: windows 1-2 are absent
        summary = acc.finalize()
        assert summary.window_at(0.0).index == 0
        assert summary.window_at(59.999).index == 0
        assert summary.window_at(60.0) is None  # sparse gap
        assert summary.window_at(150.0) is None
        assert summary.window_at(180.0).arrivals == 1
        assert summary.window_at(-10.0) is None
        assert summary.window_at(1e9) is None
        # Repeated lookups (the cached-index path) agree with the first.
        assert summary.window_at(10.0) is summary.window_at(20.0)
        # The cache is invisible to equality with a fresh, unqueried twin.
        twin = self.make_accumulator(window_s=60.0)
        twin.observe_arrival(10.0)
        twin.observe_arrival(190.0)
        assert summary == twin.finalize()

    def test_merge_of_disjoint_sources_is_lossless(self):
        from repro.metrics import WindowedSummary

        def fill(acc, source, queue_ms):
            acc.observe_arrival(10.0)
            acc.observe_completion(10.0, cold=source == "a", queue_ms=queue_ms,
                                   source=source)
            acc.observe_provision(0.0, 90.0, 1024.0, source=source)

        together = self.make_accumulator(window_s=60.0)
        fill(together, "a", 3.5)
        fill(together, "b", 7.25)
        part_a = self.make_accumulator(window_s=60.0)
        fill(part_a, "a", 3.5)
        part_b = self.make_accumulator(window_s=60.0)
        fill(part_b, "b", 7.25)

        merged = WindowedSummary.merge([part_a.finalize(), part_b.finalize()])
        assert merged == together.finalize()
        window = merged.windows[0]
        assert dict(window.queue_sum_ms_by_source) == {"a": 3.5, "b": 7.25}
        assert window.completed == 2
        assert window.cold_starts == 1
        assert sum(window.queue_histogram) == 2

    def test_merge_validation(self):
        from repro.metrics import PricingModel, WindowedSummary

        with pytest.raises(ValueError):
            WindowedSummary.merge([])
        base = self.make_accumulator(window_s=60.0).finalize()
        other_window = self.make_accumulator(window_s=30.0).finalize()
        with pytest.raises(ValueError):
            WindowedSummary.merge([base, other_window])
        other_pricing = self.make_accumulator(
            window_s=60.0, pricing=PricingModel(per_gb_second=42.0)
        ).finalize()
        with pytest.raises(ValueError):
            WindowedSummary.merge([base, other_pricing])

    def test_merge_of_single_summary_is_identity(self):
        from repro.metrics import WindowedSummary

        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(5.0)
        acc.observe_completion(5.0, cold=False, queue_ms=2.0, source="x")
        summary = acc.finalize()
        assert WindowedSummary.merge([summary]) == summary

    def test_validation(self):
        from repro.metrics import WindowAccumulator

        with pytest.raises(ValueError):
            WindowAccumulator(window_s=0.0)
        acc = self.make_accumulator()
        with pytest.raises(ValueError):
            acc.observe_completion(0.0, cold=False, queue_ms=-1.0)
        with pytest.raises(ValueError):
            acc.observe_provision(10.0, 5.0, 128.0)

    def test_empty_accumulator_finalizes_cleanly(self):
        summary = self.make_accumulator().finalize()
        assert summary.windows == ()
        assert summary.arrivals == 0
        assert summary.cold_start_rate == 0.0
        assert summary.cost.total_cost == 0.0

    def test_histogram_quantile_edges(self):
        from repro.metrics.windows import _LatencyHistogram

        hist = _LatencyHistogram()
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(0.0)
        assert hist.quantile(0.5) == pytest.approx(0.1)  # floor bucket
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        # A huge value clamps into the last bucket instead of overflowing.
        hist.observe(1e12)
        assert hist.quantile(1.0) > 1e6

    def test_quantile_q0_is_first_nonempty_bucket(self):
        # Regression: q=0 once returned bucket 0's floor value even when
        # the smallest observation lived octaves higher — rank 0 was
        # "satisfied" by the empty leading buckets.
        from repro.metrics.windows import _LatencyHistogram

        hist = _LatencyHistogram()
        hist.observe(100.0)
        hist.observe(5000.0)
        minimum = hist.quantile(0.0)
        assert minimum > 10.0  # far above the 0.1 ms floor bucket
        assert 100.0 / 1.5 <= minimum <= 100.0 * 1.5  # half-octave accurate

    def test_quantile_q0_equals_q1_for_single_observation(self):
        from repro.metrics.windows import _LatencyHistogram

        hist = _LatencyHistogram()
        hist.observe(250.0)
        assert hist.quantile(0.0) == hist.quantile(1.0)
        assert 250.0 / 1.5 <= hist.quantile(0.0) <= 250.0 * 1.5

    def test_quantile_q1_is_last_nonempty_bucket(self):
        from repro.metrics.windows import _LatencyHistogram

        hist = _LatencyHistogram()
        hist.observe(1.0)
        hist.observe(80.0)
        maximum = hist.quantile(1.0)
        assert 80.0 / 1.5 <= maximum <= 80.0 * 1.5

    def test_quantile_q0_on_floor_bucket_stays_at_floor(self):
        from repro.metrics.windows import _LatencyHistogram

        hist = _LatencyHistogram()
        hist.observe(0.05)  # below the 0.1 ms floor: bucket 0
        assert hist.quantile(0.0) == pytest.approx(0.1)


class TestUndefinedWindowSentinel:
    """Windows with arrivals but zero completions have no completion
    population: their rate/quantile fields report :data:`UNDEFINED_RATE`
    instead of a misleading 0.0 ("all warm, served instantly")."""

    def make_accumulator(self, window_s=60.0):
        from repro.metrics import WindowAccumulator

        return WindowAccumulator(window_s=window_s)

    def test_all_shed_window_reports_sentinel(self):
        from repro.metrics import UNDEFINED_RATE

        acc = self.make_accumulator()
        for _ in range(3):
            acc.observe_arrival(5.0)
            acc.observe_shed(5.0)
        window = acc.finalize().windows[0]
        assert window.arrivals == 3
        assert window.completed == 0
        assert window.cold_start_rate == UNDEFINED_RATE
        assert window.queue_mean_ms == UNDEFINED_RATE
        assert window.queue_p95_ms == UNDEFINED_RATE
        # The counts that *do* have a population stay meaningful.
        assert window.shed_rate == 1.0

    def test_still_queued_at_flush_reports_sentinel(self):
        from repro.metrics import UNDEFINED_RATE

        acc = self.make_accumulator()
        acc.observe_arrival(10.0)  # arrived, never completed (mid-run flush)
        window = acc.finalize().windows[0]
        assert window.cold_start_rate == UNDEFINED_RATE
        assert window.queue_p95_ms == UNDEFINED_RATE

    def test_idle_provision_tail_window_stays_zero(self):
        # A window with *no* arrivals (pure keep-alive tail) is genuinely
        # idle, not undefined: 0.0 is the honest value there.
        acc = self.make_accumulator(window_s=60.0)
        acc.observe_arrival(0.0)
        acc.observe_completion(0.0, cold=False, queue_ms=1.0)
        acc.observe_provision(0.0, 90.0, 1024.0)  # tail into window 1
        by_index = {w.index: w for w in acc.finalize().windows}
        assert by_index[1].arrivals == 0
        assert by_index[1].cold_start_rate == 0.0
        assert by_index[1].queue_mean_ms == 0.0
        assert by_index[1].queue_p95_ms == 0.0

    def test_sentinel_is_negative_and_json_equality_safe(self):
        import json

        from repro.metrics import UNDEFINED_RATE

        # The documented "no data" test is ``value < 0`` — and unlike
        # NaN the sentinel survives JSON and compares equal to itself
        # (summary-equality determinism checks depend on that).
        assert UNDEFINED_RATE < 0
        assert json.loads(json.dumps(UNDEFINED_RATE)) == UNDEFINED_RATE

    def test_summary_totals_unaffected_by_sentinel(self):
        acc = self.make_accumulator()
        acc.observe_arrival(5.0)
        acc.observe_shed(5.0)  # window 0: undefined
        acc.observe_arrival(65.0)
        acc.observe_completion(65.0, cold=True, queue_ms=2.0)  # window 1
        summary = acc.finalize()
        assert summary.windows[0].cold_start_rate < 0
        assert summary.windows[1].cold_start_rate == 1.0
        # Run-level totals aggregate raw counters, never the sentinel.
        assert summary.cold_start_rate == 1.0
        assert summary.completed == 1

    def test_merge_heals_sentinel_when_other_shard_completes(self):
        from repro.metrics import WindowedSummary

        shed_only = self.make_accumulator()
        shed_only.observe_arrival(5.0)
        shed_only.observe_shed(5.0)
        served = self.make_accumulator()
        served.observe_arrival(6.0)
        served.observe_completion(6.0, cold=True, queue_ms=4.0)
        merged = WindowedSummary.merge(
            [shed_only.finalize(), served.finalize()]
        )
        window = merged.windows[0]
        # Counters merge first, rates are recomputed from the merged
        # population — so the sentinel heals once completions exist...
        assert window.completed == 1
        assert window.cold_start_rate == 1.0
        assert window.queue_mean_ms == pytest.approx(4.0)

    def test_merge_of_two_undefined_shards_stays_undefined(self):
        from repro.metrics import UNDEFINED_RATE, WindowedSummary

        parts = []
        for _ in range(2):
            acc = self.make_accumulator()
            acc.observe_arrival(5.0)
            acc.observe_shed(5.0)
            parts.append(acc.finalize())
        window = WindowedSummary.merge(parts).windows[0]
        # ...and stays undefined when no shard completed anything.
        assert window.arrivals == 2
        assert window.cold_start_rate == UNDEFINED_RATE
        assert window.queue_p95_ms == UNDEFINED_RATE


class TestQoSWindowAccounting:
    def make_accumulator(self, window_s=60.0):
        from repro.metrics import WindowAccumulator

        return WindowAccumulator(window_s=window_s)

    def test_untagged_replay_has_no_qos_series(self):
        acc = self.make_accumulator()
        acc.observe_arrival(1.0)
        acc.observe_completion(1.0, cold=False, queue_ms=2.0, source="a")
        summary = acc.finalize()
        assert summary.qos == ()
        assert summary.utility == 0.0
        assert summary.windows[0].qos == ()

    def test_completion_violation_and_drop_tally_per_class(self):
        acc = self.make_accumulator()
        acc.observe_arrival(1.0)
        acc.observe_completion(1.0, cold=False, queue_ms=2.0, source="a",
                               qos="critical", violated=False, utility=4.0)
        acc.observe_arrival(2.0)
        acc.observe_completion(2.0, cold=False, queue_ms=900.0, source="a",
                               qos="critical", violated=True, utility=-2.0)
        acc.observe_arrival(3.0)
        acc.observe_shed(3.0, source="a", qos="batch", penalty=0.05)
        summary = acc.finalize()
        by_class = {entry.qos_class: entry for entry in summary.qos}
        critical = by_class["critical"]
        assert (critical.completed, critical.violations, critical.dropped) == (2, 1, 0)
        assert critical.violation_rate == pytest.approx(0.5)
        assert critical.utility == pytest.approx(4.0 - 2.0)
        batch = by_class["batch"]
        assert (batch.completed, batch.violations, batch.dropped) == (0, 0, 1)
        assert batch.utility == pytest.approx(-0.05)
        assert summary.utility == pytest.approx(2.0 - 0.05)

    def test_qos_classes_sorted_in_window_and_summary(self):
        acc = self.make_accumulator()
        for name in ("standard", "batch", "critical"):
            acc.observe_arrival(1.0)
            acc.observe_completion(1.0, cold=False, queue_ms=1.0, source="a",
                                   qos=name, utility=1.0)
        summary = acc.finalize()
        names = [entry.qos_class for entry in summary.qos]
        assert names == sorted(names) == ["batch", "critical", "standard"]
        window_names = [entry.qos_class for entry in summary.windows[0].qos]
        assert window_names == names

    def test_merge_recombines_per_class_series_losslessly(self):
        from repro.metrics import WindowedSummary

        def fill(acc, source, utility):
            acc.observe_arrival(10.0)
            acc.observe_completion(10.0, cold=False, queue_ms=3.0,
                                   source=source, qos="critical",
                                   utility=utility)
            acc.observe_arrival(70.0)
            acc.observe_shed(70.0, source=source, qos="batch", penalty=0.05)

        together = self.make_accumulator()
        fill(together, "a", 4.0)
        fill(together, "b", 3.5)
        part_a = self.make_accumulator()
        fill(part_a, "a", 4.0)
        part_b = self.make_accumulator()
        fill(part_b, "b", 3.5)

        merged = WindowedSummary.merge([part_a.finalize(), part_b.finalize()])
        assert merged == together.finalize()
        window = merged.windows[0]
        by_class = {entry.qos_class: entry for entry in window.qos}
        assert dict(by_class["critical"].utility_by_source) == {"a": 4.0, "b": 3.5}
        assert merged.utility == pytest.approx(4.0 + 3.5 - 2 * 0.05)

    def test_merge_handles_class_present_in_one_shard_only(self):
        from repro.metrics import WindowedSummary

        part_a = self.make_accumulator()
        part_a.observe_arrival(1.0)
        part_a.observe_completion(1.0, cold=False, queue_ms=1.0, source="a",
                                  qos="critical", utility=4.0)
        part_b = self.make_accumulator()
        part_b.observe_arrival(2.0)
        part_b.observe_shed(2.0, source="b", qos="batch", penalty=0.05)

        merged = WindowedSummary.merge([part_a.finalize(), part_b.finalize()])
        by_class = {entry.qos_class: entry for entry in merged.qos}
        assert by_class["critical"].completed == 1
        assert by_class["batch"].dropped == 1
        assert merged.utility == pytest.approx(4.0 - 0.05)
