"""Tests for the statistics helpers behind the evaluation tables."""

import pytest

from repro.metrics import (
    DEFAULT_PRICING,
    CostSummary,
    LatencySummary,
    MemorySummary,
    PricingModel,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)
from repro.metrics.stats import stddev


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_speedup(self):
        assert speedup(200.0, 100.0) == 2.0

    def test_speedup_rejects_zero_after(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_stddev_singleton_is_zero(self):
        assert stddev([4.2]) == 0.0


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q, method="linear"))
            )

    def test_p0_is_min_p100_is_max(self):
        data = [4.0, 8.0, 15.0]
        assert percentile(data, 0) == 4.0
        assert percentile(data, 100) == 15.0

    def test_singleton(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummaries:
    def test_latency_summary_fields(self):
        summary = LatencySummary.from_values([10.0, 20.0, 30.0, 40.0])
        assert summary.count == 4
        assert summary.mean_ms == 25.0
        assert summary.max_ms == 40.0
        assert summary.p50_ms == 25.0

    def test_latency_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            LatencySummary.from_values([])

    def test_memory_summary(self):
        summary = MemorySummary.from_values([100.0, 150.0])
        assert summary.peak_mb == 150.0
        assert summary.mean_mb == 125.0

    def test_speedup_report_compare(self):
        before_lat = LatencySummary.from_values([200.0, 200.0])
        after_lat = LatencySummary.from_values([100.0, 100.0])
        before_mem = MemorySummary.from_values([150.0])
        after_mem = MemorySummary.from_values([100.0])
        report = SpeedupReport.compare(
            before_lat, after_lat, before_lat, after_lat, before_mem, after_mem
        )
        assert report.init_speedup == 2.0
        assert report.e2e_speedup == 2.0
        assert report.memory_reduction == 1.5


class TestCostModel:
    def test_pricing_defaults_are_lambda_like(self):
        assert DEFAULT_PRICING.per_gb_second == pytest.approx(0.0000166667)
        assert DEFAULT_PRICING.per_million_requests == pytest.approx(0.20)
        assert DEFAULT_PRICING.cold_start_surcharge == 0.0

    def test_pricing_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            PricingModel(per_gb_second=-1.0)
        with pytest.raises(ValueError):
            PricingModel(per_million_requests=-0.2)
        with pytest.raises(ValueError):
            PricingModel(cold_start_surcharge=-0.01)

    def test_cost_summary_decomposes(self):
        pricing = PricingModel(
            per_gb_second=0.01, per_million_requests=1000.0, cold_start_surcharge=0.5
        )
        cost = CostSummary.from_usage(
            gb_seconds=100.0, requests=2000, container_boots=4, pricing=pricing
        )
        assert cost.compute_cost == pytest.approx(1.0)
        assert cost.request_cost == pytest.approx(2.0)
        assert cost.cold_start_cost == pytest.approx(2.0)
        assert cost.total_cost == pytest.approx(5.0)
        assert cost.per_1k_requests == pytest.approx(2.5)

    def test_zero_requests_yield_zero_normalized_cost(self):
        cost = CostSummary.from_usage(gb_seconds=0.0, requests=0, container_boots=0)
        assert cost.total_cost == 0.0
        assert cost.per_1k_requests == 0.0

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=-1.0, requests=0, container_boots=0)
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=0.0, requests=-1, container_boots=0)
        with pytest.raises(ValueError):
            CostSummary.from_usage(gb_seconds=0.0, requests=0, container_boots=-1)

    def test_default_pricing_used_when_omitted(self):
        cost = CostSummary.from_usage(gb_seconds=1000.0, requests=1000, container_boots=0)
        assert cost.compute_cost == pytest.approx(1000.0 * DEFAULT_PRICING.per_gb_second)
        assert cost.request_cost == pytest.approx(0.0002)
