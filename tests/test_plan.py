"""Tests for the deferral plan currency."""

import pytest

from repro.plan import DeferralPlan


def test_empty_plan():
    plan = DeferralPlan.empty("app")
    assert plan.is_empty
    assert plan.all_deferred == frozenset()


def test_all_deferred_union():
    plan = DeferralPlan(
        app="a",
        deferred_handler_imports=frozenset({"libx"}),
        deferred_library_edges=frozenset({"libx.extra"}),
    )
    assert plan.all_deferred == {"libx", "libx.extra"}
    assert not plan.is_empty


def test_invalid_module_name_rejected():
    with pytest.raises(ValueError):
        DeferralPlan(app="a", deferred_handler_imports=frozenset({"not-valid!"}))


def test_empty_string_module_rejected():
    with pytest.raises(ValueError):
        DeferralPlan(app="a", deferred_library_edges=frozenset({""}))


def test_merge_same_app():
    one = DeferralPlan(app="a", deferred_handler_imports=frozenset({"x"}))
    two = DeferralPlan(app="a", deferred_library_edges=frozenset({"y.z"}))
    merged = one.merged_with(two)
    assert merged.deferred_handler_imports == {"x"}
    assert merged.deferred_library_edges == {"y.z"}


def test_merge_different_apps_rejected():
    with pytest.raises(ValueError):
        DeferralPlan.empty("a").merged_with(DeferralPlan.empty("b"))
