"""Streaming execution path: run_stream / submit_stream equivalence.

The acceptance bar for streaming replay is *record equivalence*: draining
an arrival stream incrementally through ``run_stream`` must produce
exactly the invocation records the materialized ``submit()``-then-
``run()`` path produces — same heap, same tie-breaking, same jitter
draws — while retaining none of them.
"""

import pytest

from repro.common.errors import DeploymentError, WorkloadError
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.gateway import Gateway
from repro.faas.region import (
    FederatedGateway,
    LeastLoadedPolicy,
    RegionFederation,
    RegionTopology,
)
from repro.faas.replaydeploy import (
    deploy_trace,
    expose_trace,
    trace_app_config,
)
from repro.faas.sim import SimPlatform, SimPlatformConfig
from repro.metrics import PricingModel, WindowAccumulator
from repro.workloads.replay import (
    HashAffinity,
    as_paths,
    assign_regions,
    compile_trace,
)
from repro.workloads.trace import TraceGenerator

#: Jittered platform: equivalence must hold with latency noise on, since
#: jitter draws depend on the order service starts happen in.
PLATFORM = SimPlatformConfig(record_traces=False, jitter_sigma=0.05)


def small_trace(windows=2, seed=21):
    return TraceGenerator(
        app_count=3,
        duration_hours=windows * 12.0,
        window_hours=12.0,
        mean_requests_per_window=150.0,
        seed=seed,
    ).generate()


def cluster_pair(trace, **fleet_kwargs):
    def build():
        platform = ClusterPlatform(
            config=PLATFORM,
            fleet=FleetConfig(max_containers=3, keep_alive_s=60.0, **fleet_kwargs),
            seed=13,
        )
        deploy_trace(platform, trace)
        gateway = Gateway(platform)
        expose_trace(gateway, trace)
        return platform, gateway

    return build(), build()


class TestClusterStreamEquivalence:
    def test_streamed_records_equal_materialized_records(self):
        trace = small_trace()
        events = list(compile_trace(trace, seed=3, scale=0.3))
        (batch_platform, batch_gateway), (stream_platform, stream_gateway) = (
            cluster_pair(trace)
        )
        for at, path in as_paths(events):
            batch_gateway.submit(path, at)
        batch_records = batch_platform.run()

        streamed = []
        summary = stream_gateway.submit_stream(
            as_paths(iter(events)),
            WindowAccumulator(window_s=3600.0),
            on_record=streamed.append,
        )
        key = lambda r: (r.timestamp, r.app, r.entry, r.container_id)
        assert sorted(streamed, key=key) == sorted(batch_records, key=key)
        assert summary.completed == len(batch_records)
        assert summary.arrivals == len(events)

    def test_streaming_retains_no_per_request_state(self):
        trace = small_trace()
        platform = ClusterPlatform(config=PLATFORM, seed=1)
        deploy_trace(platform, trace)
        platform.run_stream(
            compile_trace(trace, seed=2, scale=0.2), WindowAccumulator(3600.0)
        )
        for app in platform.app_names():
            assert platform.records(app) == []
            assert platform.retirements(app) == []
        # Post-streaming, the platform still works in batch mode.
        app = trace.apps[0]
        record = platform.invoke(
            app.name, app.handlers[0], at=platform.clock.now() + 1.0
        )
        assert record.app == app.name

    def test_summary_totals_match_fleet_counters(self):
        trace = small_trace()
        platform = ClusterPlatform(config=PLATFORM, seed=4)
        deploy_trace(platform, trace)
        summary = platform.run_stream(
            compile_trace(trace, seed=5, scale=0.3), WindowAccumulator(3600.0)
        )
        spawned = sum(
            platform._fleet(app).spawned for app in platform.app_names()
        )
        cold = sum(
            platform._fleet(app).cold_starts for app in platform.app_names()
        )
        assert summary.cold_starts == cold
        assert sum(window.boots for window in summary.windows) == spawned

    def test_gb_seconds_match_batch_fleet_stats(self):
        trace = small_trace(windows=1)
        events = list(compile_trace(trace, seed=6, scale=0.3))
        (batch_platform, batch_gateway), (stream_platform, _) = cluster_pair(trace)
        for at, path in as_paths(events):
            batch_gateway.submit(path, at)
        batch_platform.run()
        batch_gb = sum(
            batch_platform.fleet_stats(app).gb_seconds
            for app in batch_platform.app_names()
        )
        summary = stream_platform.run_stream(
            ((at, app, entry) for at, app, entry in events),
            WindowAccumulator(window_s=3600.0),
        )
        assert summary.gb_seconds == pytest.approx(batch_gb, rel=1e-9)

    def test_shedding_streams_to_the_accumulator(self):
        trace = small_trace()
        platform = ClusterPlatform(config=PLATFORM, seed=7)
        deploy_trace(
            platform,
            trace,
            fleet=FleetConfig(max_containers=1, keep_alive_s=60.0, queue_capacity=0),
        )
        summary = platform.run_stream(
            compile_trace(trace, seed=8, scale=0.5), WindowAccumulator(3600.0)
        )
        rejected = sum(
            platform._fleet(app).rejected for app in platform.app_names()
        )
        assert rejected > 0
        assert summary.shed == rejected
        assert summary.arrivals == summary.completed + summary.shed
        assert any(window.shed_rate > 0 for window in summary.windows)

    def test_concurrent_streams_are_rejected(self):
        trace = small_trace(windows=1)
        platform = ClusterPlatform(config=PLATFORM, seed=2)
        deploy_trace(platform, trace)
        accumulator = WindowAccumulator(3600.0)

        def reentrant():
            yield 0.0, trace.apps[0].name, trace.apps[0].handlers[0]
            platform.run_stream(iter(()), WindowAccumulator(3600.0))

        with pytest.raises(WorkloadError):
            platform.run_stream(reentrant(), accumulator)
        # The guard resets, so a fresh stream still runs.
        platform.run_stream(iter(()), WindowAccumulator(3600.0))

    def test_gateway_stream_requires_streaming_backend(self):
        platform = SimPlatform()
        gateway = Gateway(platform)
        with pytest.raises(DeploymentError):
            gateway.submit_stream(iter(()), WindowAccumulator(3600.0))

    def test_gateway_stream_rejects_unknown_path(self):
        trace = small_trace(windows=1)
        platform = ClusterPlatform(config=PLATFORM, seed=2)
        deploy_trace(platform, trace)
        gateway = Gateway(platform)
        with pytest.raises(DeploymentError):
            gateway.submit_stream(
                iter([(0.0, "/ghost/entry")]), WindowAccumulator(3600.0)
            )

    def test_gateway_stream_counts_hits(self):
        trace = small_trace(windows=1)
        platform = ClusterPlatform(config=PLATFORM, seed=2)
        deploy_trace(platform, trace)
        gateway = Gateway(platform)
        expose_trace(gateway, trace)
        events = list(compile_trace(trace, seed=9, scale=0.1))
        gateway.submit_stream(as_paths(events), WindowAccumulator(3600.0))
        assert sum(gateway.hit_counts().values()) == len(events)


class TestFederationStreamEquivalence:
    def build_federation(self, trace):
        topology = RegionTopology.fully_connected(["us", "eu"], default_ms=40.0)
        federation = RegionFederation(
            topology,
            policy=LeastLoadedPolicy(),
            platform=PLATFORM,
            fleet=FleetConfig(max_containers=2, keep_alive_s=60.0),
            seed=17,
        )
        deploy_trace(federation, trace)
        gateway = FederatedGateway(platform=federation)
        expose_trace(gateway, trace)
        return federation, gateway

    def test_streamed_records_equal_materialized_records(self):
        trace = small_trace()
        assigner = HashAffinity(["us", "eu"])
        tagged = list(
            assign_regions(compile_trace(trace, seed=3, scale=0.3), assigner)
        )

        batch_federation, batch_gateway = self.build_federation(trace)
        for at, path, origin in as_paths(tagged):
            batch_gateway.submit(path, at, origin=origin)
        batch_records = batch_federation.run()

        stream_federation, stream_gateway = self.build_federation(trace)
        streamed = []
        summary = stream_gateway.submit_stream(
            as_paths(iter(tagged)),
            WindowAccumulator(window_s=3600.0),
            on_record=streamed.append,
        )
        key = lambda r: (r.timestamp, r.app, r.entry, r.container_id)
        assert sorted(streamed, key=key) == sorted(batch_records, key=key)
        assert summary.completed == len(batch_records)
        # Routing decisions are identical too, without retaining them.
        assert stream_federation.served_counts() == batch_federation.served_counts()
        assert stream_federation.assignments == []
        assert len(batch_federation.assignments) == len(tagged)

    def test_untagged_stream_defaults_to_first_region(self):
        trace = small_trace(windows=1)
        federation, gateway = self.build_federation(trace)
        events = compile_trace(trace, seed=5, scale=0.1)
        summary = gateway.submit_stream(as_paths(events), WindowAccumulator(3600.0))
        assert summary.completed > 0


class TestTraceDeployment:
    def test_trace_app_config_shape(self):
        trace = small_trace(windows=1)
        config = trace_app_config(trace.apps[0], exec_ms=3.0)
        assert config.name == trace.apps[0].name
        assert tuple(entry.name for entry in config.entries) == trace.apps[0].handlers
        assert all(entry.handler_self_ms == 3.0 for entry in config.entries)
        assert config.handler_imports == ()

    def test_deploy_trace_deploys_every_app(self):
        trace = small_trace(windows=1)
        platform = ClusterPlatform(config=PLATFORM)
        names = deploy_trace(platform, trace)
        assert names == platform.app_names() == sorted(a.name for a in trace.apps)

    def test_pricing_flows_into_windows(self):
        trace = small_trace(windows=1)
        platform = ClusterPlatform(config=PLATFORM, seed=3)
        deploy_trace(platform, trace)
        pricing = PricingModel(
            per_gb_second=0.0, per_million_requests=1000.0, cold_start_surcharge=0.0
        )
        summary = platform.run_stream(
            compile_trace(trace, seed=4, scale=0.1),
            WindowAccumulator(window_s=3600.0, pricing=pricing),
        )
        assert summary.cost.total_cost == pytest.approx(
            summary.completed * 1000.0 / 1_000_000.0
        )
