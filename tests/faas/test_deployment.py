"""Tests for workspace packaging helpers."""

import pytest

from repro.common.errors import DeploymentError
from repro.faas.deployment import (
    build_workspace,
    clone_workspace,
    read_handler,
    write_handler,
)


def test_build_workspace_writes_handler(tmp_path, session_ecosystem):
    ws = build_workspace(session_ecosystem, "x = 1\n", tmp_path / "ws", scale=0.01)
    assert (ws / "handler.py").read_text() == "x = 1\n"
    assert (ws / "libx" / "__init__.py").is_file()


def test_clone_workspace(tmp_path, session_ecosystem):
    source = build_workspace(session_ecosystem, "x = 1\n", tmp_path / "v1", scale=0.01)
    clone = clone_workspace(source, tmp_path / "v2")
    assert (clone / "handler.py").read_text() == "x = 1\n"
    # Mutating the clone leaves the original intact.
    write_handler(clone, "x = 2\n")
    assert read_handler(source) == "x = 1\n"
    assert read_handler(clone) == "x = 2\n"


def test_clone_missing_source(tmp_path):
    with pytest.raises(DeploymentError):
        clone_workspace(tmp_path / "ghost", tmp_path / "v2")


def test_clone_existing_destination(tmp_path, session_ecosystem):
    source = build_workspace(session_ecosystem, "", tmp_path / "v1", scale=0.01)
    (tmp_path / "v2").mkdir()
    with pytest.raises(DeploymentError):
        clone_workspace(source, tmp_path / "v2")


def test_read_handler_missing(tmp_path):
    tmp_path.joinpath("empty").mkdir()
    with pytest.raises(DeploymentError):
        read_handler(tmp_path / "empty")


def test_write_handler_drops_stale_bytecode(tmp_path, session_ecosystem):
    import py_compile

    ws = build_workspace(session_ecosystem, "x = 1\n", tmp_path / "ws", scale=0.01)
    py_compile.compile(str(ws / "handler.py"))
    cache = ws / "__pycache__"
    assert list(cache.glob("handler.*.pyc"))
    write_handler(ws, "x = 2\n")
    assert not list(cache.glob("handler.*.pyc"))
