"""Tests for the multi-region cluster federation and routing policies."""

import pytest

from repro.common.errors import DeploymentError, SpecError, WorkloadError
from repro.common.rng import derive_seed
from repro.core.adaptive import WorkloadMonitor
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.region import (
    FederatedGateway,
    LeastLoadedPolicy,
    LocalityPolicy,
    RegionFederation,
    RegionSpec,
    RegionState,
    RegionTopology,
    RoundRobinPolicy,
    make_policy,
    replay_federated_workload,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.workloads.arrival import (
    merge_tagged_schedules,
    poisson_schedule,
    regional_poisson_schedules,
    tag_schedule,
)
from repro.workloads.popularity import zipf_mix


@pytest.fixture()
def config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=200.0),
        ),
    )


@pytest.fixture()
def platform_config() -> SimPlatformConfig:
    return SimPlatformConfig(
        cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
    )


def make_federation(
    platform_config,
    policy,
    regions=("us", "eu", "ap"),
    latency_ms=80.0,
    seed=0,
    **fleet_kwargs,
) -> RegionFederation:
    return RegionFederation(
        RegionTopology.fully_connected(regions, default_ms=latency_ms),
        policy=policy,
        platform=platform_config,
        fleet=FleetConfig(**fleet_kwargs),
        seed=seed,
    )


class TestRegionTopology:
    def test_duplicate_region_names_rejected(self):
        with pytest.raises(SpecError):
            RegionTopology(["us", "us"])

    def test_empty_topology_rejected(self):
        with pytest.raises(SpecError):
            RegionTopology([])

    def test_empty_region_name_rejected(self):
        with pytest.raises(SpecError):
            RegionSpec("")

    def test_negative_latency_rejected(self):
        with pytest.raises(SpecError):
            RegionTopology(["us", "eu"], latency_ms={("us", "eu"): -1.0})

    def test_unknown_region_in_matrix_rejected(self):
        with pytest.raises(SpecError):
            RegionTopology(["us"], latency_ms={("us", "mars"): 10.0})

    def test_latency_lookup_symmetric_fallback(self):
        topo = RegionTopology(
            ["us", "eu"], latency_ms={("us", "eu"): 80.0}, default_ms=200.0
        )
        assert topo.latency_ms("us", "eu") == 80.0
        assert topo.latency_ms("eu", "us") == 80.0  # reversed pair
        assert topo.latency_ms("us", "us") == 0.0  # self, no entry

    def test_asymmetric_entries_win_over_reverse(self):
        topo = RegionTopology(
            ["us", "eu"],
            latency_ms={("us", "eu"): 80.0, ("eu", "us"): 95.0},
        )
        assert topo.latency_ms("us", "eu") == 80.0
        assert topo.latency_ms("eu", "us") == 95.0

    def test_default_fills_missing_pairs(self):
        topo = RegionTopology.fully_connected(["us", "eu", "ap"], default_ms=120.0)
        assert topo.latency_ms("us", "ap") == 120.0
        assert topo.latency_ms("ap", "ap") == 0.0

    def test_nearest_orders_by_latency_then_name(self):
        topo = RegionTopology(
            ["us", "eu", "ap"],
            latency_ms={("us", "eu"): 70.0, ("us", "ap") : 180.0},
        )
        assert topo.nearest("us") == ["us", "eu", "ap"]

    def test_per_region_overrides_reach_platforms(self, platform_config):
        slow = SimPlatformConfig(cold_platform_ms=500.0)
        topo = RegionTopology(
            [RegionSpec("us"), RegionSpec("eu", platform=slow)]
        )
        federation = RegionFederation(topo, platform=platform_config)
        assert federation.platform("us").config.cold_platform_ms == 100.0
        assert federation.platform("eu").config.cold_platform_ms == 500.0

    def test_unknown_region_lookup_rejected(self, platform_config):
        federation = make_federation(platform_config, RoundRobinPolicy())
        with pytest.raises(SpecError):
            federation.platform("mars")


class TestPolicies:
    @staticmethod
    def states(*triples):
        """Build states from (name, load, accepts) with latency = position."""
        return [
            RegionState(name=name, load=load, accepts=accepts, latency_ms=10.0 * i)
            for i, (name, load, accepts) in enumerate(triples)
        ]

    def test_round_robin_cycles(self):
        policy = RoundRobinPolicy()
        states = self.states(("us", 0, True), ("eu", 0, True), ("ap", 0, True))
        assert [policy.choose("us", states) for _ in range(4)] == [
            "us", "eu", "ap", "us",
        ]

    def test_round_robin_skips_shedding_region(self):
        policy = RoundRobinPolicy()
        states = self.states(("us", 0, True), ("eu", 0, False), ("ap", 0, True))
        assert [policy.choose("us", states) for _ in range(3)] == [
            "us", "ap", "ap",
        ]

    def test_least_loaded_prefers_low_load_then_latency(self):
        policy = LeastLoadedPolicy()
        states = self.states(("us", 5, True), ("eu", 2, True), ("ap", 2, True))
        # eu and ap tie on load; eu is nearer (lower latency in `states`).
        assert policy.choose("us", states) == "eu"

    def test_least_loaded_never_picks_shedding_region_with_alternative(self):
        policy = LeastLoadedPolicy()
        states = self.states(("us", 0, False), ("eu", 9, True))
        assert policy.choose("us", states) == "eu"

    def test_locality_stays_home(self):
        policy = LocalityPolicy()
        states = self.states(("us", 50, True), ("eu", 0, True))
        assert policy.choose("us", states) == "us"

    def test_locality_spills_over_threshold_to_nearest_below_it(self):
        policy = LocalityPolicy(spillover_load=4)
        states = self.states(("us", 4, True), ("eu", 5, True), ("ap", 1, True))
        assert policy.choose("us", states) == "ap"

    def test_locality_stays_home_when_nowhere_is_below_threshold(self):
        policy = LocalityPolicy(spillover_load=2)
        states = self.states(("us", 3, True), ("eu", 7, True))
        assert policy.choose("us", states) == "us"

    def test_locality_failover_leaves_shedding_origin(self):
        policy = LocalityPolicy()
        states = self.states(("us", 0, False), ("eu", 3, True))
        assert policy.choose("us", states) == "eu"

    def test_strict_locality_stays_even_when_shedding(self):
        policy = LocalityPolicy(failover=False)
        states = self.states(("us", 0, False), ("eu", 0, True))
        assert policy.choose("us", states) == "us"

    def test_spillover_threshold_validation(self):
        with pytest.raises(SpecError):
            LocalityPolicy(spillover_load=0)

    def test_make_policy_registry(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        locality = make_policy("locality", spillover_load=6)
        assert isinstance(locality, LocalityPolicy)
        assert locality.spillover_load == 6
        with pytest.raises(SpecError):
            make_policy("random")


class TestClusterRoutingHooks:
    def test_load_counts_queued_and_in_flight(self, platform_config, config):
        platform = ClusterPlatform(
            config=platform_config, fleet=FleetConfig(max_containers=1)
        )
        platform.deploy(config)
        assert platform.load("app") == 0
        for _ in range(3):
            platform.submit("app", "main", at=0.0)
        platform.run(until=0.0)  # one being served, two queued
        assert platform.load("app") == 3
        platform.run()
        assert platform.load("app") == 0

    def test_accepts_tracks_shedding_boundary(self, platform_config, config):
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(max_containers=1, queue_capacity=2),
        )
        platform.deploy(config)
        # Empty fleet: one bootable container + capacity-2 queue.
        assert platform.accepts("app", at=0.0)
        for _ in range(3):
            platform.submit("app", "main", at=0.0)
        platform.run(until=0.0)
        assert not platform.accepts("app", at=0.0)  # next arrival would shed

    def test_unbounded_queue_always_accepts(self, platform_config, config):
        platform = ClusterPlatform(config=platform_config)
        platform.deploy(config)
        for _ in range(50):
            platform.submit("app", "main", at=0.0)
        platform.run(until=0.0)
        assert platform.accepts("app", at=0.0)


class TestFederationTraffic:
    def test_forwarded_request_arrives_after_network_latency(
        self, platform_config, config
    ):
        # Locality with failover=False forced off-origin via undeployed origin
        # is convoluted; round-robin's second pick is deterministic instead.
        federation = make_federation(
            platform_config, RoundRobinPolicy(), latency_ms=250.0
        )
        federation.deploy(config)
        federation.submit("app", "main", at=1.0, origin="us")  # -> us (local)
        federation.submit("app", "main", at=1.0, origin="us")  # -> eu (+250 ms)
        records = federation.run()
        assert len(records) == 2
        by_region = {a.region: a for a in federation.assignments}
        assert by_region["us"].network_ms == 0.0
        assert by_region["eu"].network_ms == 250.0
        eu_record = federation.platform("eu").records("app")[0]
        assert eu_record.timestamp == pytest.approx(1.25)

    def test_run_returns_only_new_records_in_completion_order(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, RoundRobinPolicy())
        federation.deploy(config)
        federation.submit("app", "main", at=0.0, origin="us")
        first = federation.run()
        assert len(first) == 1
        federation.submit("app", "main", at=10.0, origin="us")
        second = federation.run()
        assert len(second) == 1
        assert second[0] not in first

    def test_origin_times_must_be_non_decreasing(self, platform_config, config):
        federation = make_federation(platform_config, RoundRobinPolicy())
        federation.deploy(config)
        federation.submit("app", "main", at=5.0, origin="us")
        with pytest.raises(WorkloadError):
            federation.submit("app", "main", at=4.0, origin="us")

    def test_unknown_origin_rejected(self, platform_config, config):
        federation = make_federation(platform_config, RoundRobinPolicy())
        federation.deploy(config)
        with pytest.raises(SpecError):
            federation.submit("app", "main", at=0.0, origin="mars")

    def test_undeployed_app_rejected(self, platform_config):
        federation = make_federation(platform_config, RoundRobinPolicy())
        with pytest.raises(DeploymentError):
            federation.submit("app", "main", at=0.0)

    def test_partial_deployment_routes_to_hosting_regions_only(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config, regions=("eu",))
        chosen = federation.submit("app", "main", at=0.0, origin="us")
        assert chosen == "eu"
        federation.run()
        assert federation.platform("eu").records("app")

    def test_least_loaded_fails_over_from_saturated_region(
        self, platform_config, config
    ):
        federation = make_federation(
            platform_config,
            LeastLoadedPolicy(),
            regions=("us", "eu"),
            max_containers=1,
            queue_capacity=0,
        )
        federation.deploy(config)
        # Four simultaneous arrivals at the us gateway: us serves one
        # (boot slot), then sheds, so the rest fail over to eu - which
        # serves one and sheds too; the fourth finds nobody accepting.
        for _ in range(4):
            federation.submit("app", "main", at=0.0, origin="us")
        federation.run()
        counts = federation.served_counts("app")
        assert counts["us"] >= 1 and counts["eu"] >= 1
        stats = federation.region_stats("app")
        assert sum(s.completed for s in stats.values()) >= 2

    def test_locality_spillover_offloads_hot_origin(
        self, platform_config, config
    ):
        federation = make_federation(
            platform_config,
            LocalityPolicy(spillover_load=2),
            regions=("us", "eu"),
            max_containers=1,
        )
        federation.deploy(config)
        for _ in range(5):
            federation.submit("app", "main", at=0.0, origin="us")
        federation.run()
        counts = federation.served_counts("app")
        assert counts["us"] >= 2  # home-served until the threshold
        assert counts["eu"] >= 1  # spillover engaged


class TestDeterminism:
    @staticmethod
    def _run(config, platform_config, policy_factory):
        federation = make_federation(
            platform_config,
            policy_factory(),
            seed=42,
            max_containers=6,
            keep_alive_s=20.0,
        )
        federation.deploy(config)
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = regional_poisson_schedules(
            mix, {"us": 6.0, "eu": 2.0, "ap": 1.0}, duration_s=300.0, seed=9
        )
        for at, entry, region in schedule:
            federation.submit("app", entry, at=at, origin=region)
        records = federation.run()
        return records, federation.assignments, federation.region_stats("app")

    @pytest.mark.parametrize(
        "policy_factory",
        [RoundRobinPolicy, LeastLoadedPolicy, LocalityPolicy],
        ids=["round-robin", "least-loaded", "locality"],
    )
    def test_identical_runs_bit_identical(
        self, config, platform_config, policy_factory
    ):
        one = self._run(config, platform_config, policy_factory)
        two = self._run(config, platform_config, policy_factory)
        assert one == two

    def test_region_seeds_are_derived_per_region(self, platform_config, config):
        federation = make_federation(platform_config, RoundRobinPolicy(), seed=7)
        assert federation.platform("us").seed == derive_seed(7, "region", "us")
        assert federation.platform("us").seed != federation.platform("eu").seed


class TestResults:
    def test_region_stats_cover_only_serving_regions(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config)
        federation.submit("app", "main", at=0.0, origin="eu")
        federation.run()
        stats = federation.region_stats("app")
        assert set(stats) == {"eu"}
        assert stats["eu"].completed == 1

    def test_routing_summary_aggregates_assignments(
        self, platform_config, config
    ):
        federation = make_federation(
            platform_config, RoundRobinPolicy(), latency_ms=100.0
        )
        federation.deploy(config)
        for i in range(3):
            federation.submit("app", "main", at=float(i), origin="us")
        summary = federation.routing_summary()
        assert summary.count == 3
        assert summary.local == 1  # round-robin: us, eu, ap
        assert summary.forwarded == 2
        assert summary.network_ms.max_ms == 100.0


class TestFederatedGateway:
    def test_tagged_schedule_replays_through_urls(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config)
        monitor = WorkloadMonitor(window_s=50.0, epsilon=0.5)
        gateway = FederatedGateway(platform=federation, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = merge_tagged_schedules(
            [
                ("us", poisson_schedule(mix, 4.0, 200.0, seed=5)),
                ("eu", poisson_schedule(mix, 1.0, 200.0, seed=6)),
            ]
        )
        records = replay_federated_workload(federation, gateway, schedule, "app")
        assert len(records) == len(schedule)
        assert sum(gateway.hit_counts().values()) == len(schedule)
        assert len(monitor.decisions) == 3
        # Strict per-origin service: locality never forwarded anything.
        assert federation.routing_summary().local_fraction == 1.0

    def test_untagged_items_default_to_first_region(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config)
        gateway = FederatedGateway(platform=federation)
        gateway.expose("app", ("main",))
        gateway.submit_schedule("app", [(0.0, "main"), (1.0, "main", "eu")])
        federation.run()
        counts = federation.served_counts("app")
        assert counts == {"us": 1, "eu": 1, "ap": 0}

    def test_unknown_path_rejected(self, platform_config, config):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config)
        gateway = FederatedGateway(platform=federation)
        with pytest.raises(DeploymentError):
            gateway.submit("/ghost/main", at=0.0)

    def test_synchronous_request_rejected_with_clear_error(
        self, platform_config, config
    ):
        federation = make_federation(platform_config, LocalityPolicy())
        federation.deploy(config)
        gateway = FederatedGateway(platform=federation)
        gateway.expose("app", ("main",))
        with pytest.raises(DeploymentError, match="synchronous"):
            gateway.request("/app/main")


class TestTaggedSchedules:
    def test_tag_schedule_attaches_region(self):
        assert tag_schedule([(0.0, "a"), (1.0, "b")], "us") == [
            (0.0, "a", "us"),
            (1.0, "b", "us"),
        ]

    def test_merge_tagged_schedules_global_time_order(self):
        merged = merge_tagged_schedules(
            [
                ("us", [(0.0, "a"), (2.0, "b")]),
                ("eu", [(1.0, "c")]),
            ]
        )
        assert merged == [(0.0, "a", "us"), (1.0, "c", "eu"), (2.0, "b", "us")]

    def test_merge_breaks_ties_by_stream_position(self):
        merged = merge_tagged_schedules(
            [("eu", [(1.0, "x")]), ("us", [(1.0, "y")])]
        )
        assert merged == [(1.0, "x", "eu"), (1.0, "y", "us")]

    def test_regional_poisson_rates_are_independent_per_region(self):
        mix = zipf_mix(["main"], seed=1)
        both = regional_poisson_schedules(
            mix, {"us": 2.0, "eu": 1.0}, duration_s=500.0, seed=4
        )
        us_only = regional_poisson_schedules(
            mix, {"us": 2.0}, duration_s=500.0, seed=4
        )
        # Dropping a region never perturbs the other's arrivals.
        assert [item for item in both if item[2] == "us"] == us_only
        times = [at for at, _, _ in both]
        assert times == sorted(times)
