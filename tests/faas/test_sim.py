"""Tests for the virtual-time FaaS simulator."""

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import DeploymentError, SpecError
from repro.faas.sim import (
    EntryBehavior,
    SimAppConfig,
    SimPlatform,
    SimPlatformConfig,
    replay_workload,
)
from repro.plan import DeferralPlan


@pytest.fixture()
def config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=2.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=2.0),
        ),
        keep_alive_s=600.0,
    )


@pytest.fixture()
def platform() -> SimPlatform:
    return SimPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=5.0, runtime_init_ms=30.0, warm_platform_ms=1.0
        )
    )


class TestConfigValidation:
    def test_needs_entries(self, small_ecosystem):
        with pytest.raises(SpecError):
            SimAppConfig(
                name="a", ecosystem=small_ecosystem, handler_imports=(), entries=()
            )

    def test_duplicate_entries_rejected(self, small_ecosystem):
        with pytest.raises(SpecError):
            SimAppConfig(
                name="a",
                ecosystem=small_ecosystem,
                handler_imports=(),
                entries=(EntryBehavior("x"), EntryBehavior("x")),
            )


class TestDeployment:
    def test_duplicate_deploy_rejected(self, platform, config):
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.deploy(config)

    def test_unknown_app_rejected(self, platform):
        with pytest.raises(DeploymentError):
            platform.invoke("ghost", "main")

    def test_unknown_entry_rejected(self, platform, config):
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.invoke("app", "ghost")

    def test_redeploy_wrong_plan_app(self, platform, config):
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.redeploy("app", DeferralPlan.empty("other"))


class TestColdAndWarm:
    def test_first_invocation_is_cold(self, platform, config):
        platform.deploy(config)
        record = platform.invoke("app", "main")
        assert record.cold
        # init = closure(libx = 100 ms) + runtime init 30 ms.
        assert record.init_ms == pytest.approx(130.0)
        assert record.e2e_ms == pytest.approx(5.0 + 130.0 + record.exec_ms)

    def test_sequential_second_call_is_warm(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")
        record = platform.invoke("app", "main")
        assert not record.cold
        assert record.init_ms == 0.0

    def test_exec_cost_matches_call_graph(self, platform, config):
        platform.deploy(config)
        record = platform.invoke("app", "main")
        # handler 2.0 + use_core 1.0 + core.run 1.0 + fast.work 2.0
        assert record.exec_ms == pytest.approx(6.0)

    def test_keep_alive_expiry_forces_cold(self, config):
        clock = VirtualClock()
        platform = SimPlatform(clock=clock)
        platform.deploy(config)
        platform.invoke("app", "main")
        clock.advance(601.0)
        record = platform.invoke("app", "main")
        assert record.cold

    def test_memory_accounting(self, platform, config):
        platform.deploy(config)
        record = platform.invoke("app", "main")
        assert record.memory_mb == pytest.approx(38.0 + 10_000.0 / 1024.0)

    def test_reset_pool_forces_cold(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")
        platform.reset_pool("app")
        assert platform.invoke("app", "main").cold


class TestBurst:
    def test_burst_contends_for_containers(self, platform, config):
        platform.deploy(config)
        records = platform.invoke_burst("app", ["main"] * 10)
        assert sum(record.cold for record in records) == 10

    def test_burst_reuses_one_warm_container(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")  # leaves one warm, idle container
        records = platform.invoke_burst("app", ["main"] * 10)
        assert sum(record.cold for record in records) == 9

    def test_past_arrival_rejected(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")
        with pytest.raises(DeploymentError):
            platform.invoke("app", "main", at=-1.0)


class TestDeferral:
    def test_plan_shrinks_cold_start(self, platform, config):
        platform.deploy(config)
        cold_before = platform.invoke("app", "main").init_ms
        platform.redeploy(
            "app",
            DeferralPlan(app="app", deferred_library_edges=frozenset({"libx.extra"})),
        )
        cold_after = platform.invoke("app", "main").init_ms
        assert cold_before - cold_after == pytest.approx(65.0)

    def test_redeploy_kills_warm_pool(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")
        platform.redeploy("app", DeferralPlan.empty("app"))
        assert platform.invoke("app", "main").cold

    def test_lazy_load_charged_to_first_use(self, platform, config):
        platform.deploy(
            config,
            plan=DeferralPlan(
                app="app", deferred_library_edges=frozenset({"libx.extra"})
            ),
        )
        platform.invoke("app", "main")  # cold; extra not loaded
        first = platform.invoke("app", "heavy")  # warm; must lazy-load extra
        second = platform.invoke("app", "heavy")
        assert first.exec_ms - second.exec_ms == pytest.approx(65.0)

    def test_lazy_load_grows_memory(self, platform, config):
        platform.deploy(
            config,
            plan=DeferralPlan(
                app="app", deferred_library_edges=frozenset({"libx.extra"})
            ),
        )
        lean = platform.invoke("app", "main").memory_mb
        grown = platform.invoke("app", "heavy").memory_mb
        assert grown - lean == pytest.approx(6500.0 / 1024.0)

    def test_deferred_handler_import_skips_whole_library(self, small_ecosystem):
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx", "liby"),
            entries=(EntryBehavior("main", calls=("libx:ping",)),),
        )
        platform = SimPlatform()
        platform.deploy(
            config,
            plan=DeferralPlan(
                app="app", deferred_handler_imports=frozenset({"liby"})
            ),
        )
        record = platform.invoke("app", "main")
        # liby (8 + 12 ms) never loads; only libx's 100 ms plus runtime.
        assert record.init_ms == pytest.approx(100.0 + 35.0)


class TestTraces:
    def test_traces_recorded(self, platform, config):
        platform.deploy(config)
        platform.invoke("app", "main")
        traces = platform.traces("app")
        assert len(traces) == 1
        assert traces[0].cold
        assert len(traces[0].init_segments) == 5

    def test_trace_recording_can_be_disabled(self, config):
        platform = SimPlatform(config=SimPlatformConfig(record_traces=False))
        platform.deploy(config)
        platform.invoke("app", "main")
        assert platform.traces("app") == []

    def test_call_segments_scaled(self, small_ecosystem):
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(EntryBehavior("main", calls=("libx:ping",)),),
            cost_scale=0.5,
        )
        platform = SimPlatform()
        platform.deploy(config)
        platform.invoke("app", "main")
        segment = platform.traces("app")[0].call_segments[0]
        assert segment.self_ms == pytest.approx(0.25)  # ping 0.5 * 0.5


class TestJitter:
    def test_jitter_produces_variance(self, config):
        platform = SimPlatform(config=SimPlatformConfig(jitter_sigma=0.1))
        platform.deploy(config)
        inits = {platform.invoke_burst("app", ["main"] * 5)[i].init_ms for i in range(5)}
        assert len(inits) > 1

    def test_jitter_deterministic_across_platforms(self, config):
        def run():
            platform = SimPlatform(config=SimPlatformConfig(jitter_sigma=0.1))
            platform.deploy(config)
            return [r.init_ms for r in platform.invoke_burst("app", ["main"] * 5)]

        assert run() == run()


def test_replay_workload(platform, config):
    platform.deploy(config)
    records = replay_workload(
        platform, "app", [(0.0, "main"), (1.0, "main"), (700.0, "main")]
    )
    assert [record.cold for record in records] == [True, False, True]
