"""Tests for repro.faas (package file keeps duplicate basenames importable)."""
