"""Tests for invocation records and statistics."""

import pytest

from repro.faas.events import InvocationRecord, InvocationStats, entry_counts


def make_record(**overrides):
    base = dict(
        app="a",
        entry="handle",
        timestamp=0.0,
        cold=True,
        init_ms=100.0,
        exec_ms=20.0,
        e2e_ms=125.0,
        memory_mb=64.0,
        container_id="a-c1",
    )
    base.update(overrides)
    return InvocationRecord(**base)


class TestInvocationRecord:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_record(init_ms=-1.0)

    def test_warm_with_init_rejected(self):
        with pytest.raises(ValueError):
            make_record(cold=False, init_ms=5.0)

    def test_warm_record_ok(self):
        record = make_record(cold=False, init_ms=0.0)
        assert not record.cold


class TestInvocationStats:
    def test_requires_records(self):
        with pytest.raises(ValueError):
            InvocationStats.from_records([])

    def test_requires_cold_start(self):
        warm = make_record(cold=False, init_ms=0.0)
        with pytest.raises(ValueError):
            InvocationStats.from_records([warm])

    def test_init_summary_uses_cold_only(self):
        records = [
            make_record(init_ms=100.0, e2e_ms=130.0),
            make_record(cold=False, init_ms=0.0, e2e_ms=25.0),
            make_record(init_ms=200.0, e2e_ms=230.0),
        ]
        stats = InvocationStats.from_records(records)
        assert stats.cold_starts == 2
        assert stats.init.mean_ms == 150.0
        assert stats.e2e.count == 3

    def test_init_ratio(self):
        records = [make_record(init_ms=80.0, e2e_ms=100.0)]
        stats = InvocationStats.from_records(records)
        assert stats.init_ratio == pytest.approx(0.8)

    def test_memory_summary(self):
        records = [make_record(memory_mb=50.0), make_record(memory_mb=70.0)]
        stats = InvocationStats.from_records(records)
        assert stats.memory.peak_mb == 70.0


def test_entry_counts():
    records = [
        make_record(entry="a"),
        make_record(entry="a"),
        make_record(entry="b"),
    ]
    assert entry_counts(records) == {"a": 2, "b": 1}
