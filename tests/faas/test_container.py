"""Tests for import-isolated containers."""

import sys
import textwrap

import pytest

from repro.common.errors import DeploymentError
from repro.faas.container import ModuleSandbox, RealContainer
from repro.faas.deployment import build_workspace


@pytest.fixture(scope="module")
def workspace(tmp_path_factory, session_ecosystem):
    ws = tmp_path_factory.mktemp("containerws")
    handler = textwrap.dedent(
        """
        import libx


        def main(event=None):
            return libx.ping()
        """
    )
    build_workspace(session_ecosystem, handler, ws, scale=0.01)
    return ws


class TestModuleSandbox:
    def test_mount_puts_workspace_first(self, workspace):
        ModuleSandbox.mount(workspace)
        try:
            assert sys.path[0] == str(workspace.resolve())
        finally:
            ModuleSandbox.unmount(workspace)

    def test_purge_removes_workspace_modules(self, workspace):
        ModuleSandbox.mount(workspace)
        try:
            import importlib

            importlib.import_module("libx")
            assert "libx" in sys.modules
            removed = ModuleSandbox.purge()
            assert removed >= 5
            assert "libx" not in sys.modules
            assert "libx.core" not in sys.modules
        finally:
            ModuleSandbox.unmount(workspace)

    def test_purge_leaves_stdlib_alone(self, workspace):
        ModuleSandbox.mount(workspace)
        try:
            import json  # noqa: F401 - ensure a stdlib module is loaded

            ModuleSandbox.purge()
            assert "json" in sys.modules
        finally:
            ModuleSandbox.unmount(workspace)


class TestRealContainer:
    def test_cold_start_measures_init(self, workspace):
        container = RealContainer("c1", workspace, "handler", base_memory_mb=38.0)
        init_ms = container.cold_start()
        assert init_ms > 0.0
        assert container.memory_mb() > 38.0
        ModuleSandbox.unmount(workspace)

    def test_repeated_cold_starts_reimport(self, workspace):
        container_a = RealContainer("c1", workspace, "handler", 38.0)
        container_a.cold_start()
        first_registry = container_a.runtime
        container_b = RealContainer("c2", workspace, "handler", 38.0)
        container_b.cold_start()
        # The registry module was purged and re-imported: fresh object.
        assert container_b.runtime is not first_registry
        ModuleSandbox.unmount(workspace)

    def test_invoke_without_cold_start_rejected(self, workspace):
        container = RealContainer("c1", workspace, "handler", 38.0)
        with pytest.raises(DeploymentError):
            container.invoke("main")

    def test_missing_entry_rejected(self, workspace):
        container = RealContainer("c1", workspace, "handler", 38.0)
        container.cold_start()
        with pytest.raises(DeploymentError):
            container.invoke("ghost")
        ModuleSandbox.unmount(workspace)

    def test_bad_handler_module(self, workspace):
        container = RealContainer("c1", workspace, "no_such_handler", 38.0)
        with pytest.raises(DeploymentError):
            container.cold_start()
        ModuleSandbox.unmount(workspace)
