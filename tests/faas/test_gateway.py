"""Tests for the request gateway."""

import pytest

from repro.common.errors import DeploymentError
from repro.core.adaptive import WorkloadMonitor
from repro.faas.gateway import Gateway, Route
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform


@pytest.fixture()
def platform(small_ecosystem):
    platform = SimPlatform()
    platform.deploy(
        SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(
                EntryBehavior("main", calls=("libx:use_core",)),
                EntryBehavior("heavy", calls=("libx:use_extra",)),
            ),
        )
    )
    return platform


class TestRouting:
    def test_route_path_validation(self):
        with pytest.raises(DeploymentError):
            Route(path="no-slash", app="a", entry="e")

    def test_duplicate_route_rejected(self, platform):
        gateway = Gateway(platform)
        gateway.add_route("/app/main", "app", "main")
        with pytest.raises(DeploymentError):
            gateway.add_route("/app/main", "app", "main")

    def test_expose_creates_conventional_urls(self, platform):
        gateway = Gateway(platform)
        routes = gateway.expose("app", ("main", "heavy"))
        assert [route.path for route in routes] == ["/app/main", "/app/heavy"]

    def test_unknown_path_rejected(self, platform):
        gateway = Gateway(platform)
        with pytest.raises(DeploymentError):
            gateway.request("/nope")

    def test_request_invokes_platform(self, platform):
        gateway = Gateway(platform)
        gateway.expose("app", ("main",))
        record, decisions = gateway.request("/app/main")
        assert record.app == "app"
        assert record.entry == "main"
        assert record.cold
        assert decisions == []

    def test_hit_counts(self, platform):
        gateway = Gateway(platform)
        gateway.expose("app", ("main", "heavy"))
        gateway.request("/app/main")
        gateway.request("/app/main")
        gateway.request("/app/heavy")
        assert gateway.hit_counts() == {"/app/main": 2, "/app/heavy": 1}


class TestMonitorIntegration:
    def test_monitor_observes_entries(self, platform):
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        gateway.request("/app/main", at=0.0)
        gateway.request("/app/main", at=10.0)
        # Crossing the window boundary closes window 0.
        _, decisions = gateway.request("/app/heavy", at=150.0)
        assert len(decisions) == 1
        assert decisions[0].probabilities == {"main": 1.0}

    def test_shift_triggers_through_gateway(self, platform):
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        for t in range(0, 90, 10):
            gateway.request("/app/main", at=float(t))
        for t in range(100, 190, 10):
            gateway.request("/app/heavy", at=float(t))
        _, decisions = gateway.request("/app/heavy", at=250.0)
        assert any(decision.triggered for decision in decisions)
