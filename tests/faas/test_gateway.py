"""Tests for the request gateway."""

import pytest

from repro.common.errors import DeploymentError
from repro.core.adaptive import WorkloadMonitor
from repro.faas.gateway import Gateway, Route
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform


@pytest.fixture()
def platform(small_ecosystem):
    platform = SimPlatform()
    platform.deploy(
        SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(
                EntryBehavior("main", calls=("libx:use_core",)),
                EntryBehavior("heavy", calls=("libx:use_extra",)),
            ),
        )
    )
    return platform


class TestRouting:
    def test_route_path_validation(self):
        with pytest.raises(DeploymentError):
            Route(path="no-slash", app="a", entry="e")

    def test_duplicate_route_rejected(self, platform):
        gateway = Gateway(platform)
        gateway.add_route("/app/main", "app", "main")
        with pytest.raises(DeploymentError):
            gateway.add_route("/app/main", "app", "main")

    def test_expose_creates_conventional_urls(self, platform):
        gateway = Gateway(platform)
        routes = gateway.expose("app", ("main", "heavy"))
        assert [route.path for route in routes] == ["/app/main", "/app/heavy"]

    def test_unknown_path_rejected(self, platform):
        gateway = Gateway(platform)
        with pytest.raises(DeploymentError):
            gateway.request("/nope")

    def test_request_invokes_platform(self, platform):
        gateway = Gateway(platform)
        gateway.expose("app", ("main",))
        record, decisions = gateway.request("/app/main")
        assert record.app == "app"
        assert record.entry == "main"
        assert record.cold
        assert decisions == []

    def test_hit_counts(self, platform):
        gateway = Gateway(platform)
        gateway.expose("app", ("main", "heavy"))
        gateway.request("/app/main")
        gateway.request("/app/main")
        gateway.request("/app/heavy")
        assert gateway.hit_counts() == {"/app/main": 2, "/app/heavy": 1}


class TestMonitorIntegration:
    def test_monitor_observes_entries(self, platform):
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        gateway.request("/app/main", at=0.0)
        gateway.request("/app/main", at=10.0)
        # Crossing the window boundary closes window 0.
        _, decisions = gateway.request("/app/heavy", at=150.0)
        assert len(decisions) == 1
        assert decisions[0].probabilities == {"main": 1.0}

    def test_shift_triggers_through_gateway(self, platform):
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        for t in range(0, 90, 10):
            gateway.request("/app/main", at=float(t))
        for t in range(100, 190, 10):
            gateway.request("/app/heavy", at=float(t))
        _, decisions = gateway.request("/app/heavy", at=250.0)
        assert any(decision.triggered for decision in decisions)

    def test_long_gap_rolls_over_multiple_windows(self, platform):
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main",))
        gateway.request("/app/main", at=0.0)
        # One request after a 4.5-window silence closes four windows at
        # once: the busy first window plus three empty ones.
        _, decisions = gateway.request("/app/main", at=450.0)
        assert [decision.window_index for decision in decisions] == [0, 1, 2, 3]
        assert decisions[0].probabilities == {"main": 1.0}
        assert all(not decision.probabilities for decision in decisions[1:])


class TestPayloadForwarding:
    class _RecordingPlatform:
        """Stub invoke() platform capturing the payload keyword."""

        def __init__(self):
            self.calls = []

        def invoke(self, name, entry, payload=None):
            from repro.faas.events import InvocationRecord

            self.calls.append((name, entry, payload))
            return InvocationRecord(
                app=name,
                entry=entry,
                timestamp=0.0,
                cold=True,
                init_ms=1.0,
                exec_ms=1.0,
                e2e_ms=2.0,
                memory_mb=1.0,
                container_id="c1",
            )

    def test_payload_reaches_platform(self):
        platform = self._RecordingPlatform()
        gateway = Gateway(platform)
        gateway.add_route("/app/main", "app", "main")
        gateway.request("/app/main", payload={"k": 1})
        assert platform.calls == [("app", "main", {"k": 1})]


class TestDeferredSubmission:
    def test_submit_requires_event_queue_backend(self, platform):
        gateway = Gateway(platform)
        gateway.expose("app", ("main",))
        with pytest.raises(DeploymentError):
            gateway.submit("/app/main", at=0.0)

    def test_submit_unknown_path_rejected(self, platform):
        gateway = Gateway(platform)
        with pytest.raises(DeploymentError):
            gateway.submit("/nope", at=0.0)

    def test_submit_schedule_counts_hits_and_feeds_monitor(self, small_ecosystem):
        from repro.faas.cluster import ClusterPlatform

        cluster = ClusterPlatform()
        cluster.deploy(
            SimAppConfig(
                name="app",
                ecosystem=small_ecosystem,
                handler_imports=("libx",),
                entries=(EntryBehavior("main", calls=("libx:use_core",)),),
            )
        )
        monitor = WorkloadMonitor(window_s=50.0, epsilon=0.5)
        gateway = Gateway(cluster, monitor=monitor)
        gateway.expose("app", ("main",))
        schedule = [(0.0, "main"), (10.0, "main"), (120.0, "main")]
        decisions = gateway.submit_schedule("app", schedule)
        assert gateway.hit_counts() == {"/app/main": 3}
        assert [decision.window_index for decision in decisions] == [0, 1]
        records = cluster.run()
        assert len(records) == 3
