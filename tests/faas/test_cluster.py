"""Tests for the cluster-scale concurrent FaaS simulator."""

import pytest

from repro.common.errors import DeploymentError, SpecError, WorkloadError
from repro.core.adaptive import WorkloadMonitor
from repro.faas.cluster import (
    ClusterPlatform,
    FleetConfig,
    FleetStats,
    replay_cluster_workload,
)
from repro.faas.gateway import Gateway
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.plan import DeferralPlan
from repro.workloads.arrival import poisson_schedule
from repro.workloads.popularity import zipf_mix


@pytest.fixture()
def config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=200.0),
        ),
    )


@pytest.fixture()
def platform_config() -> SimPlatformConfig:
    return SimPlatformConfig(
        cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
    )


def make_platform(platform_config, **fleet_kwargs) -> ClusterPlatform:
    return ClusterPlatform(
        config=platform_config, fleet=FleetConfig(**fleet_kwargs)
    )


class TestFleetConfigValidation:
    def test_rejects_zero_containers(self):
        with pytest.raises(SpecError):
            FleetConfig(max_containers=0)

    def test_rejects_zero_concurrency(self):
        with pytest.raises(SpecError):
            FleetConfig(max_concurrency=0)

    def test_rejects_negative_keep_alive(self):
        with pytest.raises(SpecError):
            FleetConfig(keep_alive_s=-1.0)

    def test_rejects_negative_queue_capacity(self):
        with pytest.raises(SpecError):
            FleetConfig(queue_capacity=-1)


class TestDeployment:
    def test_duplicate_deploy_rejected(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.deploy(config)

    def test_unknown_app_rejected(self, platform_config):
        platform = make_platform(platform_config)
        with pytest.raises(DeploymentError):
            platform.submit("ghost", "main")

    def test_unknown_entry_rejected(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.submit("app", "ghost")

    def test_redeploy_wrong_plan_app(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        with pytest.raises(DeploymentError):
            platform.redeploy("app", DeferralPlan.empty("other"))

    def test_redeploy_with_inflight_requests_rejected(
        self, platform_config, config
    ):
        platform = make_platform(platform_config)
        platform.deploy(config)
        platform.submit("app", "main", at=0.0)
        platform.run(until=0.0)  # arrival processed, invocation in flight
        with pytest.raises(DeploymentError):
            platform.redeploy("app", DeferralPlan.empty("app"))


class TestScaleFromZero:
    def test_first_request_is_cold_and_queued_through_boot(
        self, platform_config, config
    ):
        platform = make_platform(platform_config)
        platform.deploy(config)
        record = platform.invoke("app", "main", at=0.0)
        assert record.cold
        assert record.init_ms > 0
        # The request waited through provisioning + init before service.
        boot_ms = platform_config.cold_platform_ms + record.init_ms
        assert record.queue_ms == pytest.approx(boot_ms)
        assert record.e2e_ms == pytest.approx(
            record.queue_ms + platform_config.warm_platform_ms + record.exec_ms
        )

    def test_concurrent_burst_scales_out(self, platform_config, config):
        platform = make_platform(platform_config, max_containers=16)
        platform.deploy(config)
        for _ in range(10):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        assert len(records) == 10
        assert sum(record.cold for record in records) == 10
        assert len({record.container_id for record in records}) == 10

    def test_max_containers_caps_fleet_and_queues_overflow(
        self, platform_config, config
    ):
        platform = make_platform(platform_config, max_containers=4)
        platform.deploy(config)
        for _ in range(8):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        assert len({record.container_id for record in records}) == 4
        assert sum(record.cold for record in records) == 4
        stats = platform.fleet_stats("app")
        assert stats.peak_containers == 4
        # The second wave of four waited for the first wave to finish.
        waits = sorted(record.queue_ms for record in records)
        assert waits[4] > waits[3]

    def test_warm_reuse_after_completion(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        second = platform.invoke("app", "main", at=10.0)
        assert first.cold and not second.cold
        assert second.container_id == first.container_id
        assert second.init_ms == 0.0
        assert second.queue_ms == 0.0


class TestConcurrencyPacking:
    def test_requests_pack_onto_one_container(self, platform_config, config):
        platform = make_platform(platform_config, max_concurrency=4)
        platform.deploy(config)
        for _ in range(4):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        assert len({record.container_id for record in records}) == 1
        assert sum(record.cold for record in records) == 1

    def test_overflow_beyond_concurrency_spawns(self, platform_config, config):
        platform = make_platform(platform_config, max_concurrency=2)
        platform.deploy(config)
        for _ in range(5):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        assert len({record.container_id for record in records}) == 3


class TestKeepAliveExpiry:
    def test_idle_expiry_forces_cold_start(self, platform_config, config):
        platform = make_platform(platform_config, keep_alive_s=5.0)
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        late = platform.invoke("app", "main", at=100.0)
        assert first.cold and late.cold
        assert late.container_id != first.container_id

    def test_reuse_within_keep_alive(self, platform_config, config):
        platform = make_platform(platform_config, keep_alive_s=1000.0)
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        later = platform.invoke("app", "main", at=900.0)
        assert not later.cold
        assert later.container_id == first.container_id

    def test_container_seconds_reflect_expiry(self, platform_config, config):
        platform = make_platform(platform_config, keep_alive_s=5.0)
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        platform.invoke("app", "main", at=100.0)
        stats = platform.fleet_stats("app")
        # First container lived boot + service + 5 s of keep-alive, then
        # retired; the second is still alive at the stats snapshot.
        first_lifetime = first.e2e_ms / 1000.0 + 5.0
        assert stats.container_seconds > first_lifetime
        assert stats.containers_spawned == 2


class TestQueueCapacity:
    def test_overflow_is_shed_and_counted(self, platform_config, config):
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(max_containers=1, queue_capacity=2),
        )
        platform.deploy(config)
        for _ in range(6):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        stats = platform.fleet_stats("app")
        # All six arrive while the only container boots: one rides the
        # booting slot, two wait in the queue, three are shed.
        assert stats.rejected == 3
        assert len(records) + stats.rejected == 6
        assert stats.arrivals == 6

    def test_zero_capacity_still_serves_bootable_requests(
        self, platform_config, config
    ):
        """capacity=0 throttles beyond fleet capacity; it is not reject-all."""
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(max_containers=2, queue_capacity=0),
        )
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        assert first.cold  # scale-from-zero served it
        warm = platform.invoke("app", "main", at=10.0)
        assert not warm.cold

    def test_sync_invoke_raises_when_shed(self, platform_config, config):
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(max_containers=1, queue_capacity=0),
        )
        platform.deploy(config)
        platform.submit("app", "main", at=0.0)
        with pytest.raises(WorkloadError):
            platform.invoke("app", "main", at=0.0)


class TestOrderingAndErrors:
    def test_past_arrival_rejected(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        platform.submit("app", "main", at=100.0)
        with pytest.raises(DeploymentError):
            platform.submit("app", "main", at=50.0)

    def test_fleet_stats_require_records(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        with pytest.raises(WorkloadError):
            platform.fleet_stats("app")

    def test_records_per_app(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        platform.invoke("app", "main", at=0.0)
        assert len(platform.records("app")) == 1
        platform.clear_history("app")
        assert platform.records("app") == []


class TestPlanIntegration:
    def test_deferral_plan_shortens_cold_boot(self, platform_config, config):
        plan = DeferralPlan(
            app="app", deferred_library_edges=frozenset({"libx.extra"})
        )
        baseline = make_platform(platform_config)
        baseline.deploy(config)
        optimized = make_platform(platform_config)
        optimized.deploy(config, plan=plan)
        cold_before = baseline.invoke("app", "main", at=0.0)
        cold_after = optimized.invoke("app", "main", at=0.0)
        assert cold_after.init_ms < cold_before.init_ms
        # 'main' never touches libx.extra, so no first-use penalty either.
        assert cold_after.exec_ms == pytest.approx(cold_before.exec_ms)

    def test_redeploy_applies_plan_to_next_containers(
        self, platform_config, config
    ):
        platform = make_platform(platform_config, keep_alive_s=5.0)
        platform.deploy(config)
        before = platform.invoke("app", "main", at=0.0)
        plan = DeferralPlan(
            app="app", deferred_library_edges=frozenset({"libx.extra"})
        )
        platform.run()  # drain so nothing is in flight
        platform.redeploy("app", plan)
        after = platform.invoke("app", "main", at=100.0)
        assert after.cold
        assert after.init_ms < before.init_ms


class TestGatewayIntegration:
    def test_sync_request_through_gateway(self, platform_config, config):
        platform = make_platform(platform_config)
        platform.deploy(config)
        gateway = Gateway(platform)
        gateway.expose("app", ("main", "heavy"))
        record, decisions = gateway.request("/app/main", at=0.0)
        assert record.cold
        assert decisions == []

    def test_replay_workload_through_gateway(self, platform_config, config):
        platform = make_platform(platform_config, max_containers=16)
        platform.deploy(config)
        monitor = WorkloadMonitor(window_s=50.0, epsilon=0.5)
        gateway = Gateway(platform, monitor=monitor)
        gateway.expose("app", ("main", "heavy"))
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = poisson_schedule(mix, rate_per_s=4.0, duration_s=200.0, seed=5)
        records = replay_cluster_workload(platform, gateway, schedule, "app")
        assert len(records) == len(schedule)
        assert sum(gateway.hit_counts().values()) == len(schedule)
        # Arrival observation closed the expected number of windows.
        assert len(monitor.decisions) == 3


class TestDeterminism:
    @staticmethod
    def _run(config, jitter_sigma: float) -> tuple[list, FleetStats]:
        platform = ClusterPlatform(
            config=SimPlatformConfig(
                cold_platform_ms=100.0,
                runtime_init_ms=30.0,
                warm_platform_ms=1.0,
                jitter_sigma=jitter_sigma,
            ),
            fleet=FleetConfig(max_containers=12, keep_alive_s=20.0),
            seed=42,
        )
        platform.deploy(config)
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = poisson_schedule(mix, rate_per_s=25.0, duration_s=400.0, seed=9)
        for at, entry in schedule:
            platform.submit("app", entry, at=at)
        records = platform.run()
        return records, platform.fleet_stats("app")

    def test_ten_thousand_invocations_bit_identical(self, config):
        """Acceptance: >= 10k invocations, >= 8 containers, reproducible."""
        records_one, stats_one = self._run(config, jitter_sigma=0.05)
        records_two, stats_two = self._run(config, jitter_sigma=0.05)
        assert len(records_one) >= 10_000
        assert stats_one.peak_containers >= 8
        assert stats_one.cold_starts > stats_one.peak_containers  # expiry churn
        assert records_one == records_two  # frozen dataclasses: exact floats
        assert stats_one == stats_two

    def test_jitter_free_runs_also_identical(self, config):
        records_one, _ = self._run(config, jitter_sigma=0.0)
        records_two, _ = self._run(config, jitter_sigma=0.0)
        assert records_one == records_two


class TestFleetStats:
    def test_stats_shape(self, platform_config, config):
        platform = make_platform(platform_config, max_containers=8)
        platform.deploy(config)
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = poisson_schedule(mix, rate_per_s=5.0, duration_s=100.0, seed=2)
        for at, entry in schedule:
            platform.submit("app", entry, at=at)
        platform.run()
        stats = platform.fleet_stats("app")
        assert stats.completed == len(schedule)
        assert stats.arrivals == len(schedule)
        assert 0.0 < stats.cold_start_rate <= 1.0
        assert stats.offered_load.per_second == pytest.approx(5.0, rel=0.5)
        assert stats.queueing.count == stats.completed
        assert stats.container_seconds > 0.0
        assert stats.peak_containers <= 8
