"""Tests for the pluggable autoscaler policy subsystem."""

import math

import pytest

from repro.common.errors import SpecError, WorkloadError
from repro.faas.autoscale import (
    SCALING_POLICY_NAMES,
    FleetView,
    PanicWindow,
    PerRequest,
    ScalingPolicy,
    TargetUtilization,
    make_scaling_policy,
)
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.region import (
    LeastLoadedPolicy,
    RegionFederation,
    RegionSpec,
    RegionTopology,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.metrics import PricingModel


@pytest.fixture()
def config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
        ),
    )


@pytest.fixture()
def platform_config() -> SimPlatformConfig:
    return SimPlatformConfig(
        cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
    )


def make_platform(platform_config, policy, **fleet_kwargs) -> ClusterPlatform:
    return ClusterPlatform(
        config=platform_config,
        fleet=FleetConfig(policy=policy, **fleet_kwargs),
    )


def view(**overrides) -> FleetView:
    base = dict(
        now=0.0,
        queued=0,
        in_flight=0,
        live_containers=0,
        booting_containers=0,
        booting_slots=0,
        ready_slots=0,
        max_containers=8,
        max_concurrency=1,
        keep_alive_s=60.0,
    )
    base.update(overrides)
    return FleetView(**base)


class TestPolicyValidation:
    def test_target_must_be_in_unit_interval(self):
        with pytest.raises(SpecError):
            TargetUtilization(target=0.0)
        with pytest.raises(SpecError):
            TargetUtilization(target=1.5)
        with pytest.raises(SpecError):
            TargetUtilization(target=-0.3)

    def test_target_of_one_is_allowed(self):
        assert TargetUtilization(target=1.0).target == 1.0

    def test_negative_grace_rejected(self):
        with pytest.raises(SpecError):
            TargetUtilization(scale_to_zero_grace_s=-1.0)

    def test_non_positive_windows_rejected(self):
        with pytest.raises(SpecError):
            PanicWindow(panic_window_s=0.0)
        with pytest.raises(SpecError):
            PanicWindow(stable_window_s=-5.0)

    def test_panic_window_must_fit_in_stable_window(self):
        with pytest.raises(SpecError):
            PanicWindow(panic_window_s=120.0, stable_window_s=60.0)

    def test_panic_threshold_must_exceed_one(self):
        with pytest.raises(SpecError):
            PanicWindow(panic_threshold=1.0)

    def test_fleet_config_rejects_non_policy(self):
        with pytest.raises(SpecError):
            FleetConfig(policy="per-request")

    def test_fleet_config_default_policy_is_per_request(self):
        assert FleetConfig().policy == PerRequest()


class TestFactory:
    def test_every_registered_name_builds(self):
        for name in SCALING_POLICY_NAMES:
            policy = make_scaling_policy(name)
            assert isinstance(policy, ScalingPolicy)
            assert policy.name == name

    def test_parameters_flow_through(self):
        policy = make_scaling_policy(
            "panic-window", target=0.5, panic_window_s=3.0, panic_threshold=4.0
        )
        assert policy == PanicWindow(
            target=0.5, panic_window_s=3.0, panic_threshold=4.0
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecError):
            make_scaling_policy("reactive")


class TestScaleOutDecisions:
    def test_per_request_covers_the_queue(self):
        policy = PerRequest()
        assert policy.scale_out(None, view(queued=3)) == 3
        assert policy.scale_out(None, view(queued=3, booting_slots=2)) == 1
        assert policy.scale_out(None, view(queued=2, booting_slots=2)) == 0

    def test_per_request_rounds_up_by_concurrency(self):
        policy = PerRequest()
        assert policy.scale_out(None, view(queued=5, max_concurrency=4)) == 2

    def test_target_utilization_adds_headroom(self):
        policy = TargetUtilization(target=0.5)
        # 4 in flight at target 0.5 wants 8 slots; 4 live containers -> 4 more.
        decided = policy.scale_out(
            None, view(in_flight=4, live_containers=4)
        )
        assert decided == 4

    def test_target_utilization_always_covers_backlog(self):
        policy = TargetUtilization(target=1.0)
        # Six queued need six slots; one live container holds one of them.
        assert policy.scale_out(None, view(queued=6, live_containers=1)) == 5

    def test_panic_needs_a_baseline_to_contrast_against(self):
        policy = PanicWindow(stable_window_s=60.0, panic_window_s=6.0)
        state = policy.new_state()
        # A scale-from-zero pair is NOT a burst: with no quiet history
        # both windows see the same rate, so the ratio stays 1.
        for at in (0.0, 0.5):
            policy.observe_arrival(state, at)
            policy.scale_out(state, view(now=at, queued=1))
        assert not state.panicking(0.5)
        assert state.episodes == []
        # Sparse baseline traffic, then a genuine burst against it.
        for at in (10.0, 20.0, 30.0, 40.0, 50.0):
            policy.observe_arrival(state, at)
            policy.scale_out(state, view(now=at, queued=1))
        assert not state.panicking(50.0)
        last = 0.0
        for i in range(6):
            last = 60.0 + 0.1 * i
            policy.observe_arrival(state, last)
            policy.scale_out(state, view(now=last, queued=1))
        assert state.panicking(last)
        assert state.episodes
        # The episode opened at the first trigger and was extended while
        # the burst persisted: the deadline tracks the latest trigger.
        assert state.episodes[-1][1] == pytest.approx(
            last + policy.stable_window_s
        )

    def test_steady_traffic_never_panics(self):
        policy = PanicWindow(stable_window_s=60.0, panic_window_s=6.0)
        state = policy.new_state()
        # One arrival every 2 s: both windows always estimate the same
        # rate (history-normalized), so the burst factor stays 1 from
        # the very first arrival — including during startup.
        for i in range(120):
            now = 2.0 * i
            policy.observe_arrival(state, now)
            policy.scale_out(state, view(now=now, queued=1))
        assert state.episodes == []
        assert not state.panicking(0.0)


class TestSingleRequestEquivalence:
    def test_all_policies_identical_for_one_isolated_request(
        self, config, platform_config
    ):
        policies = (
            PerRequest(),
            TargetUtilization(target=0.6, scale_to_zero_grace_s=30.0),
            PanicWindow(target=0.6),
        )
        records = []
        for policy in policies:
            platform = ClusterPlatform(
                config=SimPlatformConfig(
                    cold_platform_ms=100.0,
                    runtime_init_ms=30.0,
                    warm_platform_ms=1.0,
                    jitter_sigma=0.05,
                ),
                fleet=FleetConfig(policy=policy),
                seed=42,
            )
            platform.deploy(config)
            records.append(platform.invoke("app", "main", at=0.0))
            assert platform.fleet_stats("app").containers_spawned == 1
        assert records[0] == records[1] == records[2]


class TestScaleDownBehaviour:
    def test_scale_to_zero_grace_extends_only_last_container(
        self, config, platform_config
    ):
        policy = TargetUtilization(target=1.0, scale_to_zero_grace_s=100.0)
        platform = make_platform(
            platform_config, policy, max_containers=8, keep_alive_s=10.0
        )
        platform.deploy(config)
        for _ in range(4):
            platform.submit("app", "main", at=0.0)
        platform.run()
        # Past keep-alive every container but the graced last one is gone.
        assert platform.live_containers("app", at=30.0) == 1
        # Past keep-alive + grace the fleet reaches zero.
        assert platform.live_containers("app", at=130.0) == 0

    def test_panic_suspends_keep_alive_expiry(self, config, platform_config):
        policy = PanicWindow(
            target=1.0, stable_window_s=60.0, panic_window_s=6.0
        )
        platform = make_platform(
            platform_config, policy, max_containers=16, keep_alive_s=5.0
        )
        platform.deploy(config)
        # Sparse baseline (every request cold: gaps exceed keep-alive),
        # then a burst the detector can contrast against it.
        for at in (0.0, 10.0, 20.0, 30.0, 40.0, 50.0):
            platform.submit("app", "main", at=at)
        for i in range(8):
            platform.submit("app", "main", at=60.0 + 0.001 * i)
        platform.run()
        state = platform.scaling_state("app")
        assert state.episodes  # the burst (not the baseline) panicked
        assert state.episodes[0][0] >= 60.0
        until = state.panic_until
        # Keep-alive (5 s) elapsed long ago, but scale-down is suspended:
        # the burst's containers all survive to the panic deadline.
        assert platform.live_containers("app", at=until - 1.0) == 8
        # After the panic deadline the fleet drains normally.
        assert platform.live_containers("app", at=until + 1.0) == 0
        probe = platform.invoke("app", "main", at=until - 1.0)
        assert not probe.cold

    def test_per_request_expiry_is_plain_keep_alive(self, config, platform_config):
        platform = make_platform(
            platform_config, PerRequest(), keep_alive_s=5.0
        )
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        platform.run()  # drain the completion so the container goes idle
        finished = first.timestamp + first.e2e_ms / 1000.0
        assert platform.live_containers("app", at=finished + 4.9) == 1
        assert platform.live_containers("app", at=finished + 5.1) == 0


class TestSheddingInteraction:
    """Bounded-queue shedding under each policy: a shed request must not
    trigger scale-out (and never feeds the policy's traffic estimate)."""

    @pytest.mark.parametrize(
        "policy",
        [PerRequest(), TargetUtilization(target=0.7), PanicWindow(target=0.7)],
        ids=lambda p: p.name,
    )
    def test_shed_request_boots_no_container(
        self, config, platform_config, policy
    ):
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(
                max_containers=2, queue_capacity=0, policy=policy
            ),
        )
        platform.deploy(config)
        for _ in range(6):
            platform.submit("app", "main", at=0.0)
        records = platform.run()
        stats = platform.fleet_stats("app")
        # Two bookable slots: four of six arrivals are shed, and the shed
        # ones bring no containers with them.
        assert stats.rejected == 4
        assert len(records) == 2
        assert stats.containers_spawned == 2

    def test_shed_requests_invisible_to_panic_estimate(
        self, config, platform_config
    ):
        policy = PanicWindow(target=1.0)
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(
                max_containers=2, queue_capacity=0, policy=policy
            ),
        )
        platform.deploy(config)
        for i in range(10):
            platform.submit("app", "main", at=0.001 * i)
        platform.run()
        stats = platform.fleet_stats("app")
        state = platform.scaling_state("app")
        admitted = stats.arrivals - stats.rejected
        assert stats.rejected == 8
        assert len(state.arrivals) == admitted

    def test_sync_invoke_still_raises_when_shed(self, config, platform_config):
        platform = ClusterPlatform(
            config=platform_config,
            fleet=FleetConfig(
                max_containers=1,
                queue_capacity=0,
                policy=TargetUtilization(target=0.5),
            ),
        )
        platform.deploy(config)
        platform.submit("app", "main", at=0.0)
        with pytest.raises(WorkloadError):
            platform.invoke("app", "main", at=0.0)


class TestFederationInteraction:
    """Shedding + autoscaler policies compose with cross-region failover."""

    @pytest.mark.parametrize(
        "policy",
        [PerRequest(), TargetUtilization(target=0.7), PanicWindow(target=0.7)],
        ids=lambda p: p.name,
    )
    def test_failover_routes_around_shedding_fleet(self, config, policy):
        federation = RegionFederation(
            RegionTopology.fully_connected(("us", "eu"), default_ms=50.0),
            policy=LeastLoadedPolicy(),
            platform=SimPlatformConfig(
                cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
            ),
            fleet=FleetConfig(
                max_containers=1, queue_capacity=0, policy=policy
            ),
        )
        federation.deploy(config)
        for i in range(4):
            federation.submit("app", "main", at=0.001 * i, origin="us")
        federation.run()
        served = federation.served_counts("app")
        # Two bookable slots across the topology: the router uses both
        # regions, the overflow is shed, and — the invariant under test —
        # the shed requests boot no containers anywhere.
        assert sum(served.values()) == 4
        assert min(served.values()) >= 1
        stats = federation.region_stats("app")
        assert sum(s.rejected for s in stats.values()) == 2
        assert sum(s.completed for s in stats.values()) == 2
        for region in ("us", "eu"):
            assert (
                federation.platform(region).fleet_stats("app").containers_spawned
                == 1
            )

    def test_per_region_scaling_policy_override(self, config):
        topology = RegionTopology(
            (
                RegionSpec(
                    "bursty",
                    fleet=FleetConfig(
                        max_containers=16,
                        keep_alive_s=5.0,
                        policy=PanicWindow(target=1.0),
                    ),
                ),
                RegionSpec("steady"),
            ),
            default_ms=50.0,
        )
        federation = RegionFederation(
            topology,
            policy=LeastLoadedPolicy(),
            platform=SimPlatformConfig(
                cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
            ),
            fleet=FleetConfig(max_containers=16, keep_alive_s=5.0),
        )
        federation.deploy(config)
        bursty = federation.platform("bursty")
        steady = federation.platform("steady")
        assert isinstance(
            bursty._fleet("app").policy, PanicWindow
        )
        assert steady._fleet("app").policy == PerRequest()


class TestCostView:
    def test_fleet_stats_price_gb_seconds(self, config, platform_config):
        platform = make_platform(platform_config, PerRequest(), keep_alive_s=10.0)
        platform.deploy(config)
        platform.invoke("app", "main", at=0.0)
        pricing = PricingModel(
            per_gb_second=0.001,
            per_million_requests=100.0,
            cold_start_surcharge=0.5,
        )
        stats = platform.fleet_stats("app", pricing=pricing)
        assert stats.gb_seconds > 0.0
        assert stats.cost.compute_cost == pytest.approx(stats.gb_seconds * 0.001)
        assert stats.cost.request_cost == pytest.approx(1 * 100.0 / 1e6)
        assert stats.cost.cold_start_cost == pytest.approx(0.5)
        assert stats.cost.total_cost == pytest.approx(
            stats.cost.compute_cost
            + stats.cost.request_cost
            + stats.cost.cold_start_cost
        )
        assert stats.cost.per_1k_requests == pytest.approx(
            stats.cost.total_cost * 1000.0
        )

    def test_gb_seconds_weigh_lifetime_by_memory(self, config, platform_config):
        platform = make_platform(platform_config, PerRequest(), keep_alive_s=10.0)
        platform.deploy(config)
        record = platform.invoke("app", "main", at=0.0)
        stats = platform.fleet_stats("app")
        assert stats.gb_seconds == pytest.approx(
            stats.container_seconds * record.memory_mb / 1024.0
        )

    def test_default_pricing_used_when_unspecified(self, config, platform_config):
        platform = make_platform(platform_config, PerRequest())
        platform.deploy(config)
        platform.invoke("app", "main", at=0.0)
        stats = platform.fleet_stats("app")
        assert stats.cost.total_cost > 0.0

    def test_retirements_record_lazy_reaps(self, config, platform_config):
        platform = make_platform(platform_config, PerRequest(), keep_alive_s=5.0)
        platform.deploy(config)
        first = platform.invoke("app", "main", at=0.0)
        assert platform.retirements("app") == []
        platform.invoke("app", "main", at=100.0)
        retired = platform.retirements("app")
        assert len(retired) == 1
        container_id, at = retired[0]
        assert container_id == first.container_id
        finished = first.timestamp + first.e2e_ms / 1000.0
        assert at == pytest.approx(finished + 5.0)


class TestFleetView:
    def test_demand_sums_queue_and_in_flight(self):
        assert view(queued=3, in_flight=2).demand == 5

    def test_view_is_immutable(self):
        with pytest.raises(Exception):
            view().queued = 7

    def test_base_idle_expiry_is_keep_alive(self):
        assert ScalingPolicy().idle_expiry(None, 10.0, 60.0, True) == 70.0

    def test_panic_idle_expiry_defers_to_panic_deadline(self):
        policy = PanicWindow()
        state = policy.new_state()
        state.panic_until = 500.0
        assert policy.idle_expiry(state, 10.0, 60.0, False) == 500.0
        assert policy.idle_expiry(state, 490.0, 60.0, False) == 550.0
        assert not math.isinf(state.panic_until)
