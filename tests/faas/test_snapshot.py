"""Checkpoint/resume: snapshot round-trips are bit-identical.

The contract of :mod:`repro.faas.snapshot` is that a replay interrupted
at an arbitrary point and resumed *in a fresh process* from the last
window-boundary checkpoint finishes with exactly the
:class:`WindowedSummary` an uninterrupted run produces — fleet state,
event-heap frontier, jitter RNGs, policy state, and accumulator all
survive JSON serialization losslessly.
"""

from __future__ import annotations

import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

import repro.faas.snapshot as snapshot
from repro.common.errors import CheckpointError, DeploymentError, WorkloadError
from repro.faas.autoscale import PanicWindow, PerRequest, TargetUtilization
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.forecast import HoltWintersForecaster, Predictive
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.faas.snapshot import (
    accumulator_state,
    load_checkpoint,
    platform_state,
    restore_accumulator,
    restore_platform,
    run_stream_checkpointed,
    write_checkpoint,
)
from repro.metrics import PricingModel, WindowAccumulator
from repro.workloads.replay import compile_trace
from repro.workloads.trace import TraceGenerator

TRACE = dict(
    app_count=4,
    duration_hours=24.0,
    window_hours=6.0,
    mean_requests_per_window=300.0,
    seed=5,
)
PLATFORM = SimPlatformConfig(record_traces=False, jitter_sigma=0.05)
#: A stateful policy on purpose: the panic history and episode state
#: must survive the checkpoint too.
FLEET = FleetConfig(
    max_containers=3,
    keep_alive_s=60.0,
    policy=PanicWindow(target=0.6, stable_window_s=600.0, panic_window_s=60.0),
)
SCALE = 0.5


#: Forecaster state is the newest serialization surface: a seasonal
#: model mid-fit (one-hour windows, 6-window season over the trace's
#: diurnal day) plus the prewarm ratio/hold bookkeeping must all
#: survive the checkpoint.
PREDICTIVE_FLEET = FleetConfig(
    max_containers=3,
    keep_alive_s=60.0,
    policy=Predictive(
        base=TargetUtilization(target=0.6),
        forecaster=HoltWintersForecaster(season_windows=6),
        window_s=3600.0,
        prewarm_lead_s=600.0,
    ),
)


def build_platform(fleet=FLEET):
    trace = TraceGenerator(**TRACE).generate()
    platform = ClusterPlatform(config=PLATFORM, fleet=fleet, seed=13)
    deploy_trace(platform, trace)
    return platform, compile_trace(trace, seed=3, scale=SCALE)


class _Interrupt(Exception):
    pass


def interrupt_after(stream, count):
    for index, event in enumerate(stream):
        if index >= count:
            raise _Interrupt()
        yield event


def _resume_in_fresh_process(path: str):
    """Module-level so a worker process can run it: rebuild and resume."""
    platform, stream = build_platform()
    summary = run_stream_checkpointed(
        platform, stream, WindowAccumulator(3600.0), path
    )
    return summary


def _resume_predictive_in_fresh_process(path: str):
    platform, stream = build_platform(PREDICTIVE_FLEET)
    return run_stream_checkpointed(
        platform, stream, WindowAccumulator(3600.0), path
    )


@pytest.fixture()
def reference():
    platform, stream = build_platform()
    return platform.run_stream(stream, WindowAccumulator(3600.0))


class TestCheckpointResume:
    def test_uninterrupted_checkpointed_run_equals_run_stream(
        self, tmp_path, reference
    ):
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        summary = run_stream_checkpointed(
            platform, stream, WindowAccumulator(3600.0), path
        )
        assert summary == reference
        assert not path.exists()  # consumed checkpoints are cleaned up

    @pytest.mark.parametrize("crash_after", [1, 500, 2000, 7000])
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, reference, crash_after
    ):
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform()
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, crash_after),
                WindowAccumulator(3600.0),
                path,
            )
        # The interrupted platform is left out of streaming mode.
        assert platform._stream is None
        platform, stream = build_platform()
        resumed = run_stream_checkpointed(
            platform, stream, WindowAccumulator(3600.0), path
        )
        assert resumed == reference

    @pytest.mark.slow
    def test_resume_in_fresh_process_matches(self, tmp_path, reference):
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform()
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 3000),
                WindowAccumulator(3600.0),
                path,
            )
        assert path.exists()
        with ProcessPoolExecutor(max_workers=1) as pool:
            resumed = pool.submit(_resume_in_fresh_process, str(path)).result()
        assert resumed == reference

    def test_keep_retains_final_checkpoint(self, tmp_path):
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        run_stream_checkpointed(
            platform, stream, WindowAccumulator(3600.0), path, keep=True
        )
        data = load_checkpoint(path)
        assert data["consumed"] > 0
        assert data["apps"] == sorted(platform.app_names())

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"format": 999}))
        with pytest.raises(WorkloadError):
            load_checkpoint(path)

    def test_resume_with_different_apps_rejected(self, tmp_path):
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 4000),
                WindowAccumulator(3600.0),
                path,
            )
        other = ClusterPlatform(config=PLATFORM, fleet=FLEET, seed=13)
        deploy_trace(
            other,
            TraceGenerator(**{**TRACE, "app_count": 2}).generate(),
        )
        with pytest.raises(DeploymentError):
            run_stream_checkpointed(
                other, iter(()), WindowAccumulator(3600.0), path
            )

    def test_resume_with_different_fingerprint_rejected(self, tmp_path, reference):
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform()
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 4000),
                WindowAccumulator(3600.0),
                path,
                fingerprint={"seed": 3, "scale": SCALE},
            )
        # Different replay parameters: refuse to blend two workloads.
        platform, stream = build_platform()
        with pytest.raises(WorkloadError):
            run_stream_checkpointed(
                platform,
                stream,
                WindowAccumulator(3600.0),
                path,
                fingerprint={"seed": 99, "scale": SCALE},
            )
        # The matching fingerprint still resumes bit-identically.
        platform, stream = build_platform()
        resumed = run_stream_checkpointed(
            platform,
            stream,
            WindowAccumulator(3600.0),
            path,
            fingerprint={"seed": 3, "scale": SCALE},
        )
        assert resumed == reference

    def test_bad_checkpoint_period_rejected(self, tmp_path):
        platform, _ = build_platform()
        with pytest.raises(WorkloadError):
            run_stream_checkpointed(
                platform,
                iter(()),
                WindowAccumulator(3600.0),
                tmp_path / "ckpt.json",
                every_s=0.0,
            )


class TestPredictiveCheckpoint:
    """The forecaster fit (plus window counters) is the new surface."""

    @pytest.fixture()
    def predictive_reference(self):
        platform, stream = build_platform(PREDICTIVE_FLEET)
        return platform.run_stream(stream, WindowAccumulator(3600.0))

    @pytest.mark.parametrize("crash_after", [600, 1200, 1900])
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, predictive_reference, crash_after
    ):
        # ~2400 arrivals over 24 diurnal hours: 1200 lands mid-trace,
        # between the two daily peaks, with the Holt-Winters fit (and
        # the fleet's half-filled window counter) mid-flight.
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform(PREDICTIVE_FLEET)
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, crash_after),
                WindowAccumulator(3600.0),
                path,
            )
        platform, stream = build_platform(PREDICTIVE_FLEET)
        resumed = run_stream_checkpointed(
            platform, stream, WindowAccumulator(3600.0), path
        )
        # The whole windowed series, bit for bit — not just the totals.
        assert resumed.windows == predictive_reference.windows
        assert resumed == predictive_reference

    @pytest.mark.slow
    def test_resume_in_fresh_process_matches(
        self, tmp_path, predictive_reference
    ):
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform(PREDICTIVE_FLEET)
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 1200),
                WindowAccumulator(3600.0),
                path,
            )
        assert path.exists()
        with ProcessPoolExecutor(max_workers=1) as pool:
            resumed = pool.submit(
                _resume_predictive_in_fresh_process, str(path)
            ).result()
        assert resumed.windows == predictive_reference.windows
        assert resumed == predictive_reference

    def test_platform_state_round_trips_with_forecaster_state(self, tmp_path):
        path = tmp_path / "ckpt.json"
        platform, stream = build_platform(PREDICTIVE_FLEET)
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 1500),
                WindowAccumulator(3600.0),
                path,
            )
        data = load_checkpoint(path)
        # The window counters made it into the fleet snapshot...
        fleet_state = next(iter(data["platform"]["fleets"].values()))
        assert fleet_state["window_index"] is not None
        assert fleet_state["policy_state"]["forecaster"]["n"] > 0
        # ...and restoring + re-serializing reproduces the exact state.
        fresh, _ = build_platform(PREDICTIVE_FLEET)
        restore_platform(fresh, data["platform"])
        assert platform_state(fresh) == data["platform"]


class TestStateSerialization:
    def test_platform_state_round_trips_mid_stream(self, tmp_path):
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 5000),
                WindowAccumulator(3600.0),
                path,
            )
        data = load_checkpoint(path)
        fresh, _ = build_platform()
        restore_platform(fresh, data["platform"])
        # Serializing the restored platform reproduces the same state.
        assert platform_state(fresh) == data["platform"]

    def test_accumulator_state_round_trips(self):
        accumulator = WindowAccumulator(60.0)
        accumulator.observe_arrival(10.0)
        accumulator.observe_completion(10.0, cold=True, queue_ms=4.5, source="a")
        accumulator.observe_completion(65.0, cold=False, queue_ms=0.25, source="b")
        accumulator.observe_shed(70.0)
        accumulator.observe_provision(0.0, 130.0, 512.0, source="a")
        state = accumulator_state(accumulator)
        fresh = WindowAccumulator(60.0)
        restore_accumulator(fresh, state)
        assert fresh.finalize() == accumulator.finalize()

    def test_accumulator_restore_rejects_config_mismatch(self):
        accumulator = WindowAccumulator(60.0)
        state = accumulator_state(accumulator)
        with pytest.raises(WorkloadError):
            restore_accumulator(WindowAccumulator(30.0), state)
        priced = WindowAccumulator(60.0, pricing=PricingModel(per_gb_second=9.0))
        with pytest.raises(WorkloadError):
            restore_accumulator(priced, state)

    def test_accumulator_mismatch_names_path_and_both_values(self):
        # Every CheckpointError names the offending file (when known) and
        # shows expected-vs-found, so a failed resume is diagnosable from
        # the message alone.
        state = accumulator_state(WindowAccumulator(60.0))
        with pytest.raises(CheckpointError) as err:
            restore_accumulator(
                WindowAccumulator(30.0), state, path="runs/replay.ckpt"
            )
        message = str(err.value)
        assert "runs/replay.ckpt" in message
        assert "60.0" in message and "30.0" in message

    def test_snapshot_rejects_batch_history(self):
        platform, _ = build_platform()
        app = platform.app_names()[0]
        fleet = platform._fleet(app)
        record = platform.invoke(app, fleet.config.entries[0].name, at=1.0)
        assert record.app == app
        with pytest.raises(WorkloadError):
            platform_state(platform)

    def test_snapshot_rejects_unconsumed_sync_results(self):
        platform, _ = build_platform()
        app = platform.app_names()[0]
        fleet = platform._fleet(app)
        platform.submit(app, fleet.config.entries[0].name, at=1.0)
        platform.run()
        platform.clear_history(app)
        # run() cleared _finished/_dropped and history was cleared: fine.
        platform_state(platform)

    def test_restore_rejects_unknown_apps(self):
        platform, _ = build_platform()
        state = platform_state(platform)
        other = ClusterPlatform(config=PLATFORM, fleet=FLEET, seed=13)
        with pytest.raises(DeploymentError):
            restore_platform(other, state)

    def test_panic_state_survives_export(self):
        policy = PanicWindow(stable_window_s=60.0, panic_window_s=6.0)
        state = policy.new_state()
        for at in (0.0, 0.1, 0.2, 50.0, 50.01, 50.02, 50.03):
            policy.observe_arrival(state, at)
        state.panic_until = 110.0
        state.panic_peak = 4
        state.episodes.append([50.0, 110.0])
        restored = policy.restore_state(policy.export_state(state))
        assert list(restored.arrivals) == list(state.arrivals)
        assert restored.started_at == state.started_at
        assert restored.panic_until == state.panic_until
        assert restored.panic_peak == state.panic_peak
        assert restored.episodes == state.episodes

    def test_fresh_panic_state_exports_to_json(self):
        policy = PanicWindow()
        state = policy.new_state()
        payload = json.dumps(policy.export_state(state))  # -inf made JSON-safe
        restored = policy.restore_state(json.loads(payload))
        assert restored.panic_until == -math.inf

    def test_stateless_policy_export_is_none(self):
        policy = PerRequest()
        assert policy.export_state(policy.new_state()) is None
        assert policy.restore_state(None) is None

    def test_write_checkpoint_is_atomic(self, tmp_path):
        platform, _ = build_platform()
        accumulator = WindowAccumulator(3600.0)
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, platform, accumulator, consumed=0)
        assert load_checkpoint(path)["consumed"] == 0
        assert list(tmp_path.glob("*.tmp")) == []


class TestDurability:
    """The atomic-write guarantees: no scratch leaks, fsync before rename.

    A checkpoint is only worth keeping if it is *durable* (fsynced before
    the rename publishes it) and the scratch machinery never leaves
    wreckage behind when serialization itself explodes — the two bugs
    these tests pin closed.
    """

    def test_failed_serialization_leaks_no_scratch(self, tmp_path, monkeypatch):
        """json.dumps raising must not leave a ``.tmp`` next to the path."""
        platform, _ = build_platform()
        path = tmp_path / "ckpt.json"

        def explode(payload):
            raise ValueError("unserializable")

        monkeypatch.setattr(snapshot.json, "dumps", explode)
        with pytest.raises(ValueError):
            write_checkpoint(path, platform, WindowAccumulator(3600.0), 0)
        assert list(tmp_path.iterdir()) == []  # no checkpoint, no scratch

    def test_scratch_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        """Durability ordering: data hits disk before the rename publishes."""
        platform, _ = build_platform()
        path = tmp_path / "ckpt.json"
        calls: list[str] = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            snapshot.os,
            "fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            snapshot.os,
            "replace",
            lambda src, dst: (calls.append("replace"), real_replace(src, dst))[1],
        )
        write_checkpoint(path, platform, WindowAccumulator(3600.0), 0)
        assert calls == ["fsync", "replace"]

    def test_scratch_name_is_per_process_unique(self, tmp_path, monkeypatch):
        """Concurrent shard workers must never collide on a scratch name."""
        platform, _ = build_platform()
        path = tmp_path / "ckpt.json"
        seen: list[str] = []
        real_replace = os.replace
        monkeypatch.setattr(
            snapshot.os,
            "replace",
            lambda src, dst: (seen.append(str(src)), real_replace(src, dst))[1],
        )
        write_checkpoint(path, platform, WindowAccumulator(3600.0), 0)
        assert seen == [str(tmp_path / f"ckpt.json.{os.getpid()}.tmp")]

    def test_truncated_checkpoint_fails_loudly(self, tmp_path):
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        with pytest.raises(_Interrupt):
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, 4000),
                WindowAccumulator(3600.0),
                path,
            )
        path.write_text(path.read_text()[:40])  # simulate a torn write
        platform, stream = build_platform()
        with pytest.raises(CheckpointError, match="corrupted"):
            run_stream_checkpointed(
                platform, stream, WindowAccumulator(3600.0), path
            )

    def test_non_object_checkpoint_fails_loudly(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="JSON object"):
            load_checkpoint(path)

    def test_stale_scratch_blocks_resume(self, tmp_path):
        """A crashed writer's leftover ``.tmp`` must stop the next run."""
        platform, stream = build_platform()
        path = tmp_path / "ckpt.json"
        (tmp_path / "ckpt.json.99999.tmp").write_text('{"format"')
        with pytest.raises(CheckpointError, match="crashed mid-write"):
            run_stream_checkpointed(
                platform, stream, WindowAccumulator(3600.0), path
            )
