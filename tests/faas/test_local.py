"""Tests for the really-executing local platform."""

import textwrap

import pytest

from repro.common.clock import VirtualClock
from repro.common.errors import DeploymentError
from repro.faas.deployment import build_workspace
from repro.faas.local import FunctionDeployment, LocalPlatform


HANDLER = textwrap.dedent(
    """
    import libx


    def main(event=None):
        return libx.use_core()


    def heavy(event=None):
        return libx.use_extra()
    """
)


@pytest.fixture(scope="module")
def deployment(tmp_path_factory, session_ecosystem):
    workspace = tmp_path_factory.mktemp("localapp")
    build_workspace(session_ecosystem, HANDLER, workspace, scale=0.02)
    return FunctionDeployment(
        name="localapp", workspace=workspace, entries=("main", "heavy")
    )


class TestDeployment:
    def test_missing_workspace_rejected(self, tmp_path):
        platform = LocalPlatform()
        bad = FunctionDeployment(
            name="x", workspace=tmp_path / "ghost", entries=("main",)
        )
        with pytest.raises(DeploymentError):
            platform.deploy(bad)

    def test_no_entries_rejected(self, tmp_path):
        with pytest.raises(DeploymentError):
            FunctionDeployment(name="x", workspace=tmp_path, entries=())

    def test_duplicate_deploy_rejected(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        with pytest.raises(DeploymentError):
            platform.deploy(deployment)


class TestInvocation:
    def test_cold_then_warm(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        first = platform.invoke("localapp", "main")
        second = platform.invoke("localapp", "main")
        assert first.cold and not second.cold
        assert first.init_ms > 0.0
        assert second.init_ms == 0.0

    def test_handler_result_flows_through(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        record = platform.invoke("localapp", "main")
        assert record.exec_ms >= 0.0
        registry = platform.runtime_registry("localapp")
        assert registry.call_counts().get("libx.core:run") == 1

    def test_unknown_entry(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        with pytest.raises(DeploymentError):
            platform.invoke("localapp", "ghost")

    def test_force_cold(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        platform.invoke("localapp", "main")
        platform.force_cold("localapp")
        assert platform.invoke("localapp", "main").cold

    def test_memory_tracks_loaded_modules(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        record = platform.invoke("localapp", "main")
        # base 38 MB + 10 000 kB of synthetic modules.
        assert record.memory_mb == pytest.approx(38.0 + 10_000.0 / 1024.0, rel=0.01)

    def test_keep_alive_with_virtual_clock(self, deployment):
        clock = VirtualClock()
        platform = LocalPlatform(clock=clock)
        platform.deploy(deployment)
        platform.invoke("localapp", "main")
        clock.advance(601.0)
        assert platform.invoke("localapp", "main").cold

    def test_records_accumulate(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        platform.invoke("localapp", "main")
        platform.invoke("localapp", "heavy")
        assert len(platform.records("localapp")) == 2
        platform.clear_history("localapp")
        assert platform.records("localapp") == []

    def test_redeploy_resets_pool_and_keeps_history(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        platform.invoke("localapp", "main")
        platform.redeploy(deployment)
        assert len(platform.records("localapp")) == 1
        assert platform.invoke("localapp", "main").cold
