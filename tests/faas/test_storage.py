"""Tests for the emulated cloud storage."""

import threading

import pytest

from repro.common.errors import StorageError
from repro.faas.storage import CloudStorage


def test_put_get_roundtrip():
    storage = CloudStorage()
    storage.put("k", {"a": 1})
    assert storage.get("k") == {"a": 1}


def test_get_missing_raises():
    with pytest.raises(StorageError):
        CloudStorage().get("missing")


def test_empty_key_rejected():
    with pytest.raises(StorageError):
        CloudStorage().put("", 1)


def test_prefix_listing_sorted():
    storage = CloudStorage()
    storage.put("profiles/app/002", 2)
    storage.put("profiles/app/001", 1)
    storage.put("other/x", 3)
    assert storage.list_keys("profiles/app/") == [
        "profiles/app/001",
        "profiles/app/002",
    ]


def test_delete():
    storage = CloudStorage()
    storage.put("k", 1)
    storage.delete("k")
    assert not storage.exists("k")
    with pytest.raises(StorageError):
        storage.delete("k")


def test_operation_counters():
    storage = CloudStorage()
    storage.put("a", 1)
    storage.put("b", 2)
    storage.get("a")
    assert storage.put_count == 2
    assert storage.get_count == 1


def test_len():
    storage = CloudStorage()
    storage.put("a", 1)
    assert len(storage) == 1


def test_concurrent_writers_do_not_lose_objects():
    storage = CloudStorage()

    def write(start: int) -> None:
        for index in range(start, start + 100):
            storage.put(f"key/{index}", index)

    threads = [threading.Thread(target=write, args=(i * 100,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(storage) == 400
