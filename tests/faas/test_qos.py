"""QoS classes end to end: spec validation, trace tagging, deadline
accounting in the cluster loop, and optimizer-driven offload routing.

The wire format everywhere is the class *name*; each consumer resolves it
against its configured registry.  These tests pin

* the :class:`~repro.metrics.qos.QoSClass` spec and ``--qos-mix`` parser,
* :func:`~repro.workloads.replay.assign_qos` determinism and per-app
  independence (the property the sharded engine's exactness rests on),
* the cluster's completion-time deadline evaluation and shed penalties,
* :class:`~repro.faas.region.ProbabilisticOffloadPolicy`'s greedy-exact
  LP re-solve and the federation's :data:`~repro.faas.region.DROP`
  accounting,
* the edge/cloud two-tier topology builder, and
* the bit-identical-default guarantee: a single default class changes no
  non-QoS metric.
"""

import math

import pytest

from repro.common.errors import SpecError
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.gateway import Gateway
from repro.faas.region import (
    DROP,
    ProbabilisticOffloadPolicy,
    RegionFederation,
    RegionSpec,
    RegionState,
    RegionTopology,
    RoutingPolicy,
    make_policy,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.metrics import (
    DEFAULT_QOS_CLASS,
    QOS_PRESETS,
    QoSClass,
    WindowAccumulator,
    parse_qos_mix,
    qos_registry,
)
from repro.workloads.replay import assign_qos, as_paths, compile_trace
from repro.workloads.trace import TraceGenerator


class TestQoSClassSpec:
    def test_defaults_are_benign(self):
        cls = QoSClass(name="x")
        assert cls.utility == 1.0
        assert cls.deadline_ms == math.inf
        assert cls.deadline_penalty == 0.0
        assert cls.drop_penalty == 0.0

    def test_completion_value_semantics(self):
        cls = QoSClass(name="x", utility=4.0, deadline_ms=100.0,
                       deadline_penalty=2.0)
        assert cls.completion_value(99.0) == (False, 4.0)
        assert cls.completion_value(100.0) == (False, 4.0)  # inclusive
        assert cls.completion_value(100.1) == (True, -2.0)

    def test_default_class_never_violates(self):
        assert DEFAULT_QOS_CLASS.completion_value(1e12) == (False, 1.0)

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "x", "deadline_ms": 0.0},
        {"name": "x", "deadline_ms": -5.0},
        {"name": "x", "deadline_penalty": -1.0},
        {"name": "x", "drop_penalty": -0.5},
        {"name": "x", "arrival_weight": 0.0},
        {"name": "x", "arrival_weight": -2.0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SpecError):
            QoSClass(**kwargs)

    def test_registry_rejects_duplicates_and_non_classes(self):
        with pytest.raises(SpecError):
            qos_registry([QoSClass("a"), QoSClass("a")])
        with pytest.raises(SpecError):
            qos_registry(["a"])
        with pytest.raises(SpecError):
            qos_registry([])


class TestParseQosMix:
    def test_parses_presets_with_weights(self):
        mix = parse_qos_mix("critical=1,standard=5,batch=4")
        assert [cls.name for cls in mix] == ["critical", "standard", "batch"]
        assert [cls.arrival_weight for cls in mix] == [1.0, 5.0, 4.0]
        # Non-weight preset fields survive the override.
        assert mix[0].deadline_ms == QOS_PRESETS["critical"].deadline_ms

    def test_bare_name_keeps_preset_weight(self):
        (only,) = parse_qos_mix("critical")
        assert only.arrival_weight == QOS_PRESETS["critical"].arrival_weight

    @pytest.mark.parametrize("text", ["gold=1", "critical=fast", "", ",,",
                                      "critical=1,critical=2"])
    def test_malformed_mixes_rejected(self, text):
        with pytest.raises(SpecError):
            parse_qos_mix(text)


TRACE = TraceGenerator(
    app_count=6, duration_hours=24.0, window_hours=12.0,
    mean_requests_per_window=120.0, seed=5,
).generate()
MIX = parse_qos_mix("critical=1,standard=5,batch=4")


class TestAssignQoS:
    def compiled(self):
        return compile_trace(TRACE, seed=3, scale=0.3)

    def test_appends_class_name_preserving_prefix(self):
        plain = list(self.compiled())
        tagged = list(assign_qos(self.compiled(), MIX, seed=11))
        assert [item[:3] for item in tagged] == plain
        names = {item[3] for item in tagged}
        assert names <= {"critical", "standard", "batch"}
        assert len(names) > 1  # the mix actually mixes

    def test_deterministic_under_seed(self):
        first = list(assign_qos(self.compiled(), MIX, seed=11))
        second = list(assign_qos(self.compiled(), MIX, seed=11))
        assert first == second
        other = list(assign_qos(self.compiled(), MIX, seed=12))
        assert first != other

    def test_tagging_is_per_app_independent(self):
        # The shard-exactness keystone: each app's class draws depend only
        # on that app's own arrival order, so filtering other apps out of
        # the stream never changes an app's tags.
        full = [
            item for item in assign_qos(self.compiled(), MIX, seed=11)
            if item[1] == TRACE.apps[0].name
        ]
        alone = [
            item for item in assign_qos(
                (i for i in self.compiled() if i[1] == TRACE.apps[0].name),
                MIX, seed=11,
            )
        ]
        assert full == alone

    def test_weights_shape_the_mix(self):
        tagged = list(assign_qos(self.compiled(), MIX, seed=11))
        counts = {name: 0 for name in ("critical", "standard", "batch")}
        for item in tagged:
            counts[item[3]] += 1
        # weights 1:5:4 over ~hundreds of draws — order must hold.
        assert counts["standard"] > counts["batch"] > counts["critical"]

    def test_rejects_empty_class_list(self):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            list(assign_qos(self.compiled(), (), seed=1))


def qos_app(name="app") -> SimAppConfig:
    from tests.conftest import make_small_library
    from repro.synthlib.spec import Ecosystem

    eco = Ecosystem([make_small_library()])
    eco.validate()
    return SimAppConfig(
        name=name,
        ecosystem=eco,
        handler_imports=("libx",),
        entries=(EntryBehavior("main", handler_self_ms=50.0),),
    )


def qos_platform(qos, **fleet_kwargs) -> ClusterPlatform:
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0,
            jitter_sigma=0.0,
        ),
        fleet=FleetConfig(**fleet_kwargs),
        qos=qos,
    )
    platform.deploy(qos_app())
    return platform


class TestClusterDeadlineAccounting:
    TIGHT = QoSClass(name="tight", utility=4.0, deadline_ms=60.0,
                     deadline_penalty=2.0, drop_penalty=3.0)
    LOOSE = QoSClass(name="loose", utility=0.5, drop_penalty=0.05)

    def test_unknown_class_rejected_at_submit(self):
        platform = qos_platform((self.TIGHT,))
        with pytest.raises(SpecError):
            platform.submit("app", "main", at=0.0, qos="ghost")

    def test_cold_start_blows_tight_deadline_warm_meets_it(self):
        # Cold path: ~230 ms init + 50 ms handler >> 60 ms deadline.
        # Warm path: ~51 ms e2e <= 60 ms.  Requests are spaced so the
        # second hits the warm container.
        platform = qos_platform((self.TIGHT, self.LOOSE))
        summary = platform.run_stream(
            [(0.0, "app", "main", "tight"), (10.0, "app", "main", "tight")],
            WindowAccumulator(window_s=60.0),
        )
        (tight,) = [entry for entry in summary.qos if entry.qos_class == "tight"]
        assert tight.completed == 2
        assert tight.violations == 1
        assert tight.utility == pytest.approx(4.0 - 2.0)
        assert summary.utility == pytest.approx(2.0)

    def test_wire_ms_counts_toward_the_deadline(self):
        # The deadline is end-to-end: forwarding wire time spent before a
        # region's cluster sees the request counts against it.  A
        # single-region topology with an explicit self-latency makes every
        # delivery pay 30 ms of wire; the warm request's ~51 ms service
        # then lands past the 60 ms deadline, where a zero-wire federation
        # meets it.
        def violations(self_latency_ms):
            topology = RegionTopology(
                ["us"], latency_ms={("us", "us"): self_latency_ms}
            )
            federation = RegionFederation(
                topology,
                platform=SimPlatformConfig(
                    cold_platform_ms=100.0, runtime_init_ms=30.0,
                    warm_platform_ms=1.0, jitter_sigma=0.0,
                ),
                fleet=FleetConfig(max_containers=2),
                qos=(self.TIGHT,),
            )
            federation.deploy(qos_app())
            summary = federation.run_stream(
                [
                    (0.0, "app", "main", "us", "tight"),
                    (10.0, "app", "main", "us", "tight"),
                ],
                WindowAccumulator(window_s=60.0),
            )
            (tight,) = summary.qos
            return tight.violations

        assert violations(0.0) == 1  # only the cold first request is late
        assert violations(30.0) == 2  # wire time pushes the warm one over

    def test_shed_charges_the_drop_penalty(self):
        platform = qos_platform(
            (self.TIGHT, self.LOOSE), max_containers=1, queue_capacity=0
        )
        summary = platform.run_stream(
            [
                (0.0, "app", "main", "loose"),
                (0.001, "app", "main", "loose"),  # container busy -> shed
            ],
            WindowAccumulator(window_s=60.0),
        )
        (loose,) = [entry for entry in summary.qos if entry.qos_class == "loose"]
        assert loose.completed == 1
        assert loose.dropped == 1
        assert loose.utility == pytest.approx(0.5 - 0.05)
        assert summary.shed == 1

    def test_untagged_arrivals_keep_qos_series_empty(self):
        platform = qos_platform((self.TIGHT,))
        summary = platform.run_stream(
            [(0.0, "app", "main"), (10.0, "app", "main")],
            WindowAccumulator(window_s=60.0),
        )
        assert summary.qos == ()
        assert summary.utility == 0.0


def states(*triples):
    """Shorthand: (name, accepts, latency_ms[, capacity]) -> RegionState."""
    return [
        RegionState(
            name=name,
            load=0,
            accepts=accepts,
            latency_ms=latency,
            capacity=rest[0] if rest else math.inf,
        )
        for name, accepts, latency, *rest in triples
    ]


class TestProbabilisticOffloadPolicy:
    def test_constructor_validation(self):
        with pytest.raises(SpecError):
            ProbabilisticOffloadPolicy(update_interval_s=0.0)
        with pytest.raises(SpecError):
            ProbabilisticOffloadPolicy(arrival_alpha=0.0)
        with pytest.raises(SpecError):
            ProbabilisticOffloadPolicy(service_ms_estimate=-1.0)
        with pytest.raises(SpecError):
            ProbabilisticOffloadPolicy(deadline_slack=1.5)

    def test_healthy_local_region_is_kept(self):
        policy = ProbabilisticOffloadPolicy(qos_classes=MIX, seed=1)
        regions = states(("us", True, 0.0), ("eu", True, 80.0))
        for i in range(50):
            assert policy.choose("us", regions, at=float(i), qos="standard") == "us"

    def test_saturated_local_offloads_within_deadline_budget(self):
        # Local rejects; offloading earns utility minus a small wire
        # discount, which beats both a certain deadline violation and the
        # drop penalty -> the whole class shifts to the offload arm.
        policy = ProbabilisticOffloadPolicy(qos_classes=MIX, seed=1)
        regions = states(("us", False, 0.0, 0.0), ("eu", True, 80.0))
        for i in range(50):
            assert policy.choose("us", regions, at=float(i), qos="critical") == "eu"

    def test_drop_wins_when_cheaper_than_violation(self):
        # No offload target exists; completing late costs 5, dropping
        # costs 0.1 -> the LP sends the class to the drop arm.
        cheap_drop = QoSClass(name="cheap", utility=1.0, deadline_ms=100.0,
                              deadline_penalty=5.0, drop_penalty=0.1)
        policy = ProbabilisticOffloadPolicy(qos_classes=(cheap_drop,), seed=1)
        regions = states(("us", False, 0.0, 0.0))
        for i in range(20):
            assert policy.choose("us", regions, at=float(i), qos="cheap") == DROP

    def test_allow_drop_false_never_drops(self):
        cheap_drop = QoSClass(name="cheap", utility=1.0, deadline_ms=100.0,
                              deadline_penalty=5.0, drop_penalty=0.1)
        policy = ProbabilisticOffloadPolicy(
            qos_classes=(cheap_drop,), seed=1, allow_drop=False
        )
        regions = states(("us", False, 0.0, 0.0))
        for i in range(20):
            assert policy.choose("us", regions, at=float(i), qos="cheap") == "us"

    def test_unregistered_class_falls_back_to_default(self):
        policy = ProbabilisticOffloadPolicy(seed=1)  # default registry
        regions = states(("us", True, 0.0))
        assert policy.choose("us", regions, at=0.0, qos="exotic") == "us"
        assert policy.choose("us", regions, at=0.0, qos=None) == "us"

    def test_interval_close_folds_rates_as_ewma(self):
        policy = ProbabilisticOffloadPolicy(
            qos_classes=(DEFAULT_QOS_CLASS,), seed=1,
            update_interval_s=10.0, arrival_alpha=0.5,
        )
        regions = states(("us", True, 0.0))
        for i in range(20):  # 20 arrivals over [0, 10) -> 2 req/s
            policy.choose("us", regions, at=i * 0.5, qos="standard")
        policy.choose("us", regions, at=10.0, qos="standard")  # closes interval
        assert policy._rates["standard"] == pytest.approx(2.0)
        # Second interval has just the one arrival (0.1 req/s): EWMA halves.
        policy.choose("us", regions, at=20.0, qos="standard")
        assert policy._rates["standard"] == pytest.approx(0.5 * 0.1 + 0.5 * 2.0)

    def test_fractional_fill_splits_the_marginal_class(self):
        # Learned rate 2 req/s against capacity for 1 req/s -> p_local 0.5,
        # the remainder taking the offload arm.
        policy = ProbabilisticOffloadPolicy(
            qos_classes=(DEFAULT_QOS_CLASS,), seed=1,
            update_interval_s=10.0, service_ms_estimate=1000.0,
        )
        warm = states(("us", True, 0.0), ("eu", True, 20.0))
        for i in range(20):
            policy.choose("us", warm, at=i * 0.5, qos="standard")
        tight = states(("us", True, 0.0, 1.0), ("eu", True, 20.0))
        policy.choose("us", tight, at=10.0, qos="standard")  # triggers re-solve
        p_local, p_offload, p_drop = policy._mix["us"]["standard"]
        assert p_local == pytest.approx(0.5)
        assert p_offload == pytest.approx(0.5)
        assert p_drop == 0.0

    def test_choices_are_deterministic_under_seed(self):
        def run(seed):
            policy = ProbabilisticOffloadPolicy(
                qos_classes=(DEFAULT_QOS_CLASS,), seed=seed,
                update_interval_s=10.0, service_ms_estimate=1000.0,
            )
            out = []
            for i in range(40):
                regions = states(("us", True, 0.0, 0.5), ("eu", True, 20.0))
                out.append(policy.choose("us", regions, at=i * 0.5,
                                         qos="standard"))
            return out

        assert run(7) == run(7)

    def test_make_policy_builds_probabilistic(self):
        policy = make_policy("probabilistic", qos_classes=MIX, seed=3)
        assert isinstance(policy, ProbabilisticOffloadPolicy)
        assert set(policy._registry) == {"critical", "standard", "batch"}


class AlwaysDrop(RoutingPolicy):
    """Test double: a policy that discards everything."""

    name = "always-drop"

    def choose(self, origin, states, at=0.0, qos=None):
        return DROP


class TestFederationDropAccounting:
    def make_federation(self, policy, qos=MIX):
        topology = RegionTopology.fully_connected(["us", "eu"], default_ms=40.0)
        federation = RegionFederation(
            topology,
            policy=policy,
            platform=SimPlatformConfig(
                cold_platform_ms=100.0, runtime_init_ms=30.0,
                warm_platform_ms=1.0, jitter_sigma=0.0,
            ),
            fleet=FleetConfig(max_containers=2),
            qos=qos,
        )
        federation.deploy(qos_app())
        return federation

    def test_submit_returns_drop_and_counts_it(self):
        federation = self.make_federation(AlwaysDrop())
        assert federation.submit("app", "main", at=0.0, qos="batch") == DROP
        assert federation.dropped_counts("app") == {"app": 1}
        assert federation.assignments == []  # nothing was routed

    def test_unknown_qos_rejected(self):
        federation = self.make_federation(AlwaysDrop())
        with pytest.raises(SpecError):
            federation.submit("app", "main", at=0.0, qos="ghost")

    def test_streaming_drop_charges_the_class_penalty(self):
        federation = self.make_federation(AlwaysDrop())
        summary = federation.run_stream(
            [
                (0.0, "app", "main", "us", "critical"),
                (1.0, "app", "main", "us", "batch"),
            ],
            WindowAccumulator(window_s=60.0),
        )
        assert summary.shed == 2
        by_class = {entry.qos_class: entry for entry in summary.qos}
        assert by_class["critical"].dropped == 1
        assert by_class["critical"].utility == pytest.approx(-4.0)
        assert by_class["batch"].utility == pytest.approx(-0.05)
        assert summary.utility == pytest.approx(-4.05)

    def test_probabilistic_end_to_end_serves_and_accounts(self):
        federation = self.make_federation(
            ProbabilisticOffloadPolicy(qos_classes=MIX, seed=3)
        )
        stream = assign_qos(compile_trace(TRACE, seed=3, scale=0.1), MIX, seed=9)
        # Trace apps are not deployed here; use the fixture app's stream.
        arrivals = [
            (at, "app", "main", "us", qos)
            for at, _, _, qos in list(stream)[:60]
        ]
        summary = federation.run_stream(arrivals, WindowAccumulator(window_s=3600.0))
        assert summary.completed + summary.shed == summary.arrivals == 60
        assert summary.qos  # per-class series present


class TestEdgeCloudTopology:
    def test_tiers_and_latencies(self):
        topology = RegionTopology.edge_cloud(
            edge=["berlin", "lyon"], cloud=["eu-central"], uplink_ms=40.0,
        )
        assert topology.spec("berlin").tier == "edge"
        assert topology.spec("eu-central").tier == "cloud"
        assert topology.latency_ms("berlin", "eu-central") == 40.0
        assert topology.latency_ms("berlin", "lyon") == 80.0  # via the cloud
        assert topology.latency_ms("berlin", "berlin") == 0.0

    def test_explicit_inter_edge_latency(self):
        topology = RegionTopology.edge_cloud(
            edge=["a", "b"], cloud=["c"], uplink_ms=40.0, inter_edge_ms=15.0,
        )
        assert topology.latency_ms("a", "b") == 15.0

    def test_cloud_mesh_latency(self):
        topology = RegionTopology.edge_cloud(
            edge=["a"], cloud=["c1", "c2"], inter_cloud_ms=10.0,
        )
        assert topology.latency_ms("c1", "c2") == 10.0

    def test_specs_are_retagged_not_trusted(self):
        spec = RegionSpec("site", tier="cloud")
        topology = RegionTopology.edge_cloud(edge=[spec], cloud=["c"])
        assert topology.spec("site").tier == "edge"

    def test_both_tiers_required(self):
        with pytest.raises(SpecError):
            RegionTopology.edge_cloud(edge=[], cloud=["c"])
        with pytest.raises(SpecError):
            RegionTopology.edge_cloud(edge=["e"], cloud=[])

    def test_rejects_unknown_tier_on_spec(self):
        with pytest.raises(SpecError):
            RegionSpec("x", tier="orbital")


class TestDefaultClassEquivalence:
    def test_single_default_class_changes_no_base_metric(self):
        def replay(tagged):
            platform = ClusterPlatform(
                config=SimPlatformConfig(record_traces=False),
                fleet=FleetConfig(max_containers=3),
                seed=13,
                qos=(DEFAULT_QOS_CLASS,) if tagged else None,
            )
            from repro.faas.replaydeploy import deploy_trace, expose_trace

            deploy_trace(platform, TRACE)
            gateway = Gateway(platform)
            expose_trace(gateway, TRACE)
            stream = compile_trace(TRACE, seed=3, scale=0.3)
            if tagged:
                stream = assign_qos(stream, (DEFAULT_QOS_CLASS,), seed=11)
            return gateway.submit_stream(
                as_paths(stream), WindowAccumulator(window_s=3600.0)
            )

        plain = replay(tagged=False)
        tagged = replay(tagged=True)
        assert tagged.arrivals == plain.arrivals
        assert tagged.completed == plain.completed
        assert tagged.shed == plain.shed
        assert tagged.cold_starts == plain.cold_starts
        assert tagged.gb_seconds == plain.gb_seconds  # bit-identical floats
        assert tagged.cost == plain.cost
        for got, want in zip(tagged.windows, plain.windows):
            assert got.queue_histogram == want.queue_histogram
            assert got.queue_sum_ms_by_source == want.queue_sum_ms_by_source
            assert got.gb_seconds_by_source == want.gb_seconds_by_source
        # The only difference: the per-class series now exists, earning
        # the default class's unit utility per completion.
        assert plain.qos == ()
        (standard,) = tagged.qos
        assert standard.qos_class == "standard"
        assert standard.completed == tagged.completed
        assert standard.violations == 0
        assert tagged.utility == pytest.approx(float(tagged.completed))
