"""Unit layer for :mod:`repro.faas.forecast` and the observe_window hook.

Covers the pieces the benchmark's headline claim stands on: parameter
validation fails loudly, the cluster feeds observation windows exactly
(admitted arrivals only, empty gap windows included), the
:class:`Predictive` policy degrades to its base while history is cold,
pre-warms/holds once warm, and round-trips its learned state through
``export_state``/``restore_state``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.common.errors import SpecError
from repro.faas.autoscale import (
    FleetView,
    PerRequest,
    TargetUtilization,
    WindowObservation,
    make_scaling_policy,
)
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.forecast import (
    FORECASTER_NAMES,
    EWMAForecaster,
    HoltWintersForecaster,
    Predictive,
    make_forecaster,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig


@pytest.fixture(scope="module")
def app_config():
    from repro.synthlib.spec import Ecosystem
    from tests.conftest import make_dependent_library, make_small_library

    ecosystem = Ecosystem([make_small_library(), make_dependent_library()])
    ecosystem.validate()
    return SimAppConfig(
        name="app",
        ecosystem=ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
        ),
    )


def _platform(app_config, policy, *, max_containers=4, keep_alive_s=30.0, seed=7):
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
        ),
        fleet=FleetConfig(
            max_containers=max_containers,
            keep_alive_s=keep_alive_s,
            policy=policy,
        ),
        seed=seed,
    )
    platform.deploy(app_config)
    return platform


def _view(now, *, queued=0, in_flight=0, live=0, max_containers=8):
    return FleetView(
        now=now,
        queued=queued,
        in_flight=in_flight,
        live_containers=live,
        booting_containers=0,
        booting_slots=0,
        ready_slots=max(0, live - in_flight),
        max_containers=max_containers,
        max_concurrency=1,
        keep_alive_s=30.0,
    )


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_ewma_alpha_range(self, alpha):
        with pytest.raises(SpecError):
            EWMAForecaster(alpha=alpha)

    def test_ewma_warmup_positive(self):
        with pytest.raises(SpecError):
            EWMAForecaster(warmup=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.2},
            {"beta": -0.1},
            {"beta": 1.1},
            {"gamma": -0.5},
            {"gamma": 2.0},
            {"season_windows": 1},
        ],
    )
    def test_holt_winters_parameter_ranges(self, kwargs):
        with pytest.raises(SpecError):
            HoltWintersForecaster(**kwargs)

    def test_forecast_horizon_must_be_positive(self):
        forecaster = EWMAForecaster(warmup=1)
        state = forecaster.new_state()
        forecaster.observe(state, 5.0)
        with pytest.raises(SpecError):
            forecaster.forecast(state, horizon=0)

    def test_predictive_window_positive(self):
        with pytest.raises(SpecError):
            Predictive(window_s=0.0)

    def test_predictive_lead_within_window(self):
        with pytest.raises(SpecError):
            Predictive(window_s=100.0, prewarm_lead_s=101.0)
        with pytest.raises(SpecError):
            Predictive(window_s=100.0, prewarm_lead_s=-1.0)

    def test_predictive_headroom_positive(self):
        with pytest.raises(SpecError):
            Predictive(headroom=0.0)

    def test_predictive_hold_floor_non_negative(self):
        with pytest.raises(SpecError):
            Predictive(hold_min_arrivals=-1.0)

    def test_predictive_rejects_predictive_base(self):
        with pytest.raises(SpecError):
            Predictive(base=Predictive())

    def test_predictive_rejects_non_policy_base(self):
        with pytest.raises(SpecError):
            Predictive(base=EWMAForecaster())

    def test_predictive_rejects_non_forecaster(self):
        with pytest.raises(SpecError):
            Predictive(forecaster=PerRequest())


class TestFactories:
    def test_make_forecaster_names(self):
        assert isinstance(make_forecaster("ewma"), EWMAForecaster)
        assert isinstance(make_forecaster("holt-winters"), HoltWintersForecaster)
        assert make_forecaster("holt-winters", season_windows=12).season_windows == 12

    def test_make_forecaster_rejects_unknown(self):
        with pytest.raises(SpecError):
            make_forecaster("arima")

    def test_season_windows_rejected_for_ewma(self):
        with pytest.raises(SpecError):
            make_forecaster("ewma", season_windows=24)

    def test_forecaster_names_registry(self):
        assert FORECASTER_NAMES == ("ewma", "holt-winters")

    def test_make_scaling_policy_builds_predictive(self):
        policy = make_scaling_policy(
            "predictive",
            target=0.5,
            forecaster="holt-winters",
            season_windows=12,
            forecast_window_s=1800.0,
            prewarm_lead_s=600.0,
            prewarm_headroom=1.5,
        )
        assert isinstance(policy, Predictive)
        assert isinstance(policy.base, TargetUtilization)
        assert policy.base.target == 0.5
        assert isinstance(policy.forecaster, HoltWintersForecaster)
        assert policy.forecaster.season_windows == 12
        assert policy.window_s == 1800.0
        assert policy.prewarm_lead_s == 600.0
        assert policy.headroom == 1.5

    def test_make_scaling_policy_predictive_defaults(self):
        policy = make_scaling_policy("predictive")
        assert isinstance(policy, Predictive)
        assert isinstance(policy.forecaster, EWMAForecaster)


class _Recorder(TargetUtilization):
    """A reactive policy that additionally records every closed window."""

    observed: list  # shared, assigned by the test

    def observation_window_s(self) -> float:
        return 50.0

    def observe_window(self, state, observation: WindowObservation) -> None:
        type(self).observed.append(observation)


class TestClusterWindowFeed:
    def test_windows_close_lazily_with_gap_windows(self, app_config):
        _Recorder.observed = []
        platform = _platform(app_config, _Recorder(target=0.7))
        # Window 0 gets two arrivals, window 1 one, windows 2-3 are an
        # idle gap, window 4 sees the closing arrival.
        for at in (0.0, 10.0, 60.0, 220.0):
            platform.submit("app", "main", at=at)
        platform.run()
        closed = [(obs.index, obs.arrivals) for obs in _Recorder.observed]
        assert closed == [(0, 2), (1, 1), (2, 0), (3, 0)]
        for obs in _Recorder.observed:
            assert obs.start_s == obs.index * 50.0
            assert obs.end_s == (obs.index + 1) * 50.0

    def test_reactive_policies_keep_no_window_state(self, app_config):
        platform = _platform(app_config, PerRequest())
        fleet = platform._fleet("app")
        assert fleet.obs_window_s is None
        for at in (0.0, 10.0, 120.0):
            platform.submit("app", "main", at=at)
        platform.run()
        assert fleet.window_index is None
        assert fleet.window_arrivals == 0

    def test_observation_feed_precedes_the_closing_arrival(self, app_config):
        # The arrival that closes a window must not be counted in it.
        _Recorder.observed = []
        platform = _platform(app_config, _Recorder(target=0.7))
        for at in (0.0, 49.9, 50.0):
            platform.submit("app", "main", at=at)
        platform.run()
        assert [(o.index, o.arrivals) for o in _Recorder.observed] == [(0, 2)]


class TestPredictivePolicy:
    def _warm_policy(self):
        policy = Predictive(
            base=TargetUtilization(target=0.7),
            forecaster=EWMAForecaster(alpha=0.5, warmup=1),
            window_s=100.0,
            headroom=1.0,
        )
        state = policy.new_state()
        state.open_peak = 2
        policy.observe_window(
            state, WindowObservation(index=0, start_s=0.0, end_s=100.0, arrivals=10)
        )
        return policy, state

    def test_cold_state_defers_to_base(self):
        policy = Predictive(base=TargetUtilization(target=0.7))
        state = policy.new_state()
        view = _view(5.0, queued=3)
        assert policy.scale_out(state, view) == TargetUtilization(
            target=0.7
        ).scale_out(None, view)
        assert state.hold_until == -math.inf

    def test_observe_window_learns_ratio_and_feeds_forecaster(self):
        policy, state = self._warm_policy()
        assert state.last_fed == 0
        assert state.ratio == 0.2  # peak 2 over 10 arrivals
        assert state.open_peak == 0  # reset for the next window
        assert policy.forecaster.forecast(state.fc) == 10.0

    def test_warm_forecast_prewarms_and_holds(self):
        policy, state = self._warm_policy()
        # In window 1, forecast 10 arrivals * ratio 0.2 = 2 containers.
        boot = policy.scale_out(state, _view(110.0, live=1))
        assert boot == 1  # 2 wanted, 1 live
        assert state.hold_until == 200.0  # held through window 1

    def test_prewarm_lead_targets_the_next_window(self):
        policy, state = self._warm_policy()
        lead = Predictive(
            base=policy.base,
            forecaster=policy.forecaster,
            window_s=100.0,
            prewarm_lead_s=10.0,
            headroom=1.0,
        )
        # Inside the lead (now=195 >= 200-10) the target is window 2.
        lead.scale_out(state, _view(195.0, live=2))
        assert state.hold_until == 300.0  # held through window 2

    def test_forecast_below_fleet_size_does_not_hold(self):
        policy, state = self._warm_policy()
        policy.scale_out(state, _view(110.0, live=5))
        assert state.hold_until == -math.inf  # 2 wanted < 5 live

    def test_hold_floor_gates_the_hold_but_not_the_prewarm(self):
        policy, state = self._warm_policy()
        floored = Predictive(
            base=policy.base,
            forecaster=policy.forecaster,
            window_s=100.0,
            headroom=1.0,
            hold_min_arrivals=20.0,  # forecast is 10: below the floor
        )
        boot = floored.scale_out(state, _view(110.0, live=1))
        assert boot == 1  # the pre-warm boot still happens...
        assert state.hold_until == -math.inf  # ...but the fleet isn't held

    def test_hold_floor_at_forecast_count_still_holds(self):
        policy, state = self._warm_policy()
        floored = Predictive(
            base=policy.base,
            forecaster=policy.forecaster,
            window_s=100.0,
            headroom=1.0,
            hold_min_arrivals=10.0,  # forecast is exactly 10: at the floor
        )
        floored.scale_out(state, _view(110.0, live=1))
        assert state.hold_until == 200.0

    def test_idle_expiry_extends_to_hold_but_keeps_the_floor(self):
        policy, state = self._warm_policy()
        policy.scale_out(state, _view(110.0, live=1))
        assert state.hold_until == 200.0
        # Keep-alive would retire at 150: the hold extends it.
        assert policy.idle_expiry(state, 120.0, 30.0, False) == 200.0
        # Past the hold, the keep-alive floor rules again.
        assert policy.idle_expiry(state, 300.0, 30.0, False) == 330.0

    def test_prewarm_respects_max_containers(self):
        policy = Predictive(
            base=TargetUtilization(target=0.7),
            forecaster=EWMAForecaster(alpha=1.0, warmup=1),
            window_s=100.0,
            headroom=1.0,
        )
        state = policy.new_state()
        state.open_peak = 50
        policy.observe_window(
            state, WindowObservation(index=0, start_s=0.0, end_s=100.0, arrivals=50)
        )
        view = _view(110.0, live=0, max_containers=4)
        assert policy.scale_out(state, view) <= 4

    def test_delegations_follow_the_base(self):
        grace = TargetUtilization(target=0.7, scale_to_zero_grace_s=30.0)
        assert Predictive(base=grace).uses_last_of_fleet()
        assert not Predictive(base=TargetUtilization()).uses_last_of_fleet()
        assert not Predictive().reactive_only()
        assert Predictive(window_s=42.0).observation_window_s() == 42.0


class TestPredictiveStateRoundTrip:
    def test_fresh_state_is_json_safe(self):
        policy = Predictive()
        payload = json.dumps(policy.export_state(policy.new_state()))
        restored = policy.restore_state(json.loads(payload))
        assert restored.hold_until == -math.inf
        assert restored.last_fed is None

    def test_learned_state_round_trips_exactly(self):
        policy = Predictive(
            base=TargetUtilization(target=0.6),
            forecaster=HoltWintersForecaster(season_windows=3),
            window_s=100.0,
        )
        state = policy.new_state()
        for index, arrivals in enumerate((7, 19, 3, 11, 23, 5)):
            state.open_peak = max(1, arrivals // 4)
            policy.observe_window(
                state,
                WindowObservation(
                    index=index,
                    start_s=index * 100.0,
                    end_s=(index + 1) * 100.0,
                    arrivals=arrivals,
                ),
            )
        state.hold_until = 700.0
        exported = policy.export_state(state)
        restored = policy.restore_state(json.loads(json.dumps(exported)))
        assert policy.export_state(restored) == exported
        # The restored state forecasts identically.
        assert policy.forecaster.forecast(restored.fc, 2) == policy.forecaster.forecast(
            state.fc, 2
        )


class TestPredictiveOnCluster:
    def test_cold_history_matches_base_policy_exactly(self, app_config):
        """Shorter than one window, the predictive path never engages."""
        base = TargetUtilization(target=0.6)
        runs = []
        for policy in (base, Predictive(base=base, window_s=3600.0)):
            platform = _platform(app_config, policy)
            for index in range(40):
                platform.submit("app", "main", at=0.7 * index)
            records = platform.run()
            runs.append((records, platform.fleet_stats("app")))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_prewarm_beats_reactive_base_on_sparse_periodic_traffic(
        self, app_config
    ):
        """Steady sparse arrivals outliving keep-alive: the reactive base
        pays a cold start per request; once warm, the predictive wrapper
        holds the fleet through forecast-busy windows instead."""
        base = TargetUtilization(target=0.7)
        cold_counts = {}
        for label, policy in (
            ("base", base),
            (
                "predictive",
                Predictive(
                    base=base,
                    forecaster=EWMAForecaster(),
                    window_s=600.0,
                    headroom=1.2,
                ),
            ),
        ):
            platform = _platform(app_config, policy, keep_alive_s=30.0)
            for index in range(73):  # every 100 s for two hours
                platform.submit("app", "main", at=100.0 * index)
            platform.run()
            cold_counts[label] = platform.fleet_stats("app").cold_starts
        assert cold_counts["predictive"] < cold_counts["base"]
