"""Documentation stays honest: README snippets run, CLI docs don't drift.

The docs CI job runs exactly this module, so a new subcommand that
isn't documented (or a documented one that no longer exists) fails the
build, as does any README/architecture doctest whose output drifted.
"""

import doctest
import re
from pathlib import Path

import pytest

from repro.cli import build_parser, main

ROOT = Path(__file__).resolve().parents[1]
README = ROOT / "README.md"
ARCHITECTURE = ROOT / "docs" / "architecture.md"


def cli_subcommands() -> set[str]:
    for action in build_parser()._actions:
        if action.dest == "command" and action.choices:
            return set(action.choices)
    raise AssertionError("slimstart parser has no subcommands")


class TestDocsExist:
    def test_readme_exists(self):
        assert README.is_file()

    def test_architecture_doc_exists(self):
        assert ARCHITECTURE.is_file()


class TestReadmeSnippetsRun:
    @pytest.mark.parametrize("path", [README, ARCHITECTURE], ids=["readme", "architecture"])
    def test_doctests_pass(self, path):
        result = doctest.testfile(str(path), module_relative=False)
        assert result.failed == 0

    def test_readme_actually_has_doctests(self):
        result = doctest.testfile(str(README), module_relative=False)
        assert result.attempted >= 2  # the snippets the README promises


#: A subcommand reference is either inline code (`` `slimstart cmd` ``)
#: or a command line inside a fenced block (``slimstart cmd ...``).
_DOC_PATTERN = r"(?m)(?:^|`)slimstart ([a-z][a-z0-9-]*)"


class TestCliDocsDrift:
    def test_every_subcommand_is_documented_in_readme(self):
        documented = set(re.findall(_DOC_PATTERN, README.read_text()))
        assert cli_subcommands() - documented == set()

    def test_readme_mentions_no_ghost_subcommands(self):
        documented = set(re.findall(_DOC_PATTERN, README.read_text()))
        assert documented - cli_subcommands() == set()

    def test_help_output_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in cli_subcommands():
            assert command in out, f"slimstart --help lost {command!r}"

    def test_readme_documents_tier1_command(self):
        assert "python -m pytest -x -q" in README.read_text()

    def test_module_docstring_covers_every_subcommand(self):
        import repro.cli

        for command in cli_subcommands():
            assert f"slimstart {command}" in repro.cli.__doc__, (
                f"repro.cli docstring lost ``slimstart {command}``"
            )
