"""Property-based tests for import-closure semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthlib.builder import ClusterPlan, build_library
from repro.synthlib.spec import Ecosystem, ModuleKey


@st.composite
def ecosystems(draw):
    cluster_count = draw(st.integers(min_value=1, max_value=3))
    shares = [0.9 / cluster_count] * cluster_count
    clusters = [
        ClusterPlan(
            f"c{i}",
            module_count=draw(st.integers(min_value=1, max_value=8)),
            init_share=shares[i],
            depth=draw(st.integers(min_value=3, max_value=5)),
        )
        for i in range(cluster_count)
    ]
    library = build_library(
        "proplib",
        total_init_cost_ms=float(draw(st.integers(10, 500))),
        total_memory_kb=1000.0,
        seed=draw(st.integers(0, 50)),
        clusters=clusters,
    )
    return Ecosystem([library])


@given(ecosystems())
@settings(max_examples=30, deadline=None)
def test_root_closure_is_whole_library(eco):
    library = eco.library("proplib")
    closure = eco.import_closure([ModuleKey("proplib", "")])
    assert len(closure) == library.module_count


@given(ecosystems(), st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_deferral_monotone(eco, index):
    """Deferring any module never grows the closure."""
    library = eco.library("proplib")
    names = library.module_names()
    target = names[index % len(names)]
    if not target:
        return
    full = eco.import_closure([ModuleKey("proplib", "")])
    deferred = eco.import_closure(
        [ModuleKey("proplib", "")],
        deferred=frozenset({ModuleKey("proplib", target)}),
    )
    assert set(deferred) <= set(full)
    assert eco.total_init_cost_ms(deferred) <= eco.total_init_cost_ms(full)


@given(ecosystems(), st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_lazy_then_forced_equals_eager(eco, index):
    """Cold closure + first-use load of the deferred module covers the
    same module set as eager loading (lazy loading loses nothing)."""
    library = eco.library("proplib")
    names = [n for n in library.module_names() if n]
    target = names[index % len(names)]
    key = ModuleKey("proplib", target)
    deferred = frozenset({key})
    cold = eco.import_closure([ModuleKey("proplib", "")], deferred=deferred)
    lazy = eco.import_closure([key], deferred=deferred, already_loaded=cold)
    eager = eco.import_closure([ModuleKey("proplib", "")])
    assert set(cold) | set(lazy) == set(eager)


@given(ecosystems())
@settings(max_examples=30, deadline=None)
def test_closure_has_no_duplicates(eco):
    closure = eco.import_closure([ModuleKey("proplib", "")])
    assert len(closure) == len(set(closure))


@given(ecosystems())
@settings(max_examples=30, deadline=None)
def test_every_module_preceded_by_ancestors(eco):
    closure = eco.import_closure([ModuleKey("proplib", "")])
    seen = set()
    for key in closure:
        for ancestor in key.ancestors():
            # Completion order: a package importing its children completes
            # after them, but every ancestor must appear somewhere.
            assert ancestor in set(closure)
        seen.add(key)
