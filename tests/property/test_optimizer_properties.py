"""Property-based tests: optimizer transformations preserve behaviour."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import optimize_source

_module_names = st.sampled_from(["json", "base64", "binascii"])


@st.composite
def handler_modules(draw):
    """Generate small handler modules with known behaviour."""
    libraries = draw(st.lists(_module_names, min_size=1, max_size=3, unique=True))
    function_count = draw(st.integers(min_value=1, max_value=3))
    lines = []
    for library in libraries:
        lines.append(f"import {library}")
    lines.append("")
    expressions = {
        "json": "json.dumps([1, 2])",
        "base64": "base64.b64encode(b'x').decode()",
        "binascii": "binascii.hexlify(b'y').decode()",
    }
    for index in range(function_count):
        used = draw(
            st.lists(st.sampled_from(libraries), min_size=0, max_size=2, unique=True)
        )
        lines.append("")
        lines.append(f"def fn{index}(event=None):")
        if not used:
            lines.append("    return 'static'")
        else:
            parts = " , ".join(expressions[library] for library in used)
            lines.append(f"    return ({parts},)")
    source = "\n".join(lines) + "\n"
    return source, libraries, function_count


def run_all(source: str, function_count: int):
    namespace: dict = {}
    exec(compile(source, "<gen>", "exec"), namespace)
    return [namespace[f"fn{i}"]() for i in range(function_count)]


@given(handler_modules(), st.data())
@settings(max_examples=50, deadline=None)
def test_optimized_module_behaves_identically(case, data):
    source, libraries, function_count = case
    targets = set(
        data.draw(
            st.lists(st.sampled_from(libraries), min_size=1, unique=True),
            label="targets",
        )
    )
    result = optimize_source(source, targets)
    assert run_all(result.source, function_count) == run_all(source, function_count)


@given(handler_modules(), st.data())
@settings(max_examples=30, deadline=None)
def test_optimization_is_stable(case, data):
    """Re-optimizing an optimized module changes nothing."""
    source, libraries, function_count = case
    targets = set(
        data.draw(st.lists(st.sampled_from(libraries), min_size=1, unique=True))
    )
    once = optimize_source(source, targets)
    twice = optimize_source(once.source, targets)
    assert not twice.changed


@given(handler_modules(), st.data())
@settings(max_examples=30, deadline=None)
def test_all_target_globals_removed(case, data):
    """After optimization no module-level import of a target remains."""
    import ast

    source, libraries, function_count = case
    targets = set(
        data.draw(st.lists(st.sampled_from(libraries), min_size=1, unique=True))
    )
    result = optimize_source(source, targets)
    tree = ast.parse(result.source)
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                assert alias.name.partition(".")[0] not in targets
