"""Property-based tests for the workload monitor's probability algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (
    invocation_probabilities,
    probability_shift,
    shifts_from_window_counts,
)

window_counts = st.dictionaries(
    keys=st.sampled_from([f"h{i}" for i in range(6)]),
    values=st.integers(min_value=0, max_value=1000),
    max_size=6,
)


@given(window_counts)
@settings(max_examples=80)
def test_probabilities_form_simplex(counts):
    probabilities = invocation_probabilities(counts)
    if sum(counts.values()) == 0:
        assert probabilities == {}
    else:
        assert abs(sum(probabilities.values()) - 1.0) < 1e-9
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())


@given(window_counts, window_counts)
@settings(max_examples=80)
def test_shift_symmetric_and_bounded(a, b):
    pa = invocation_probabilities(a)
    pb = invocation_probabilities(b)
    shift = probability_shift(pa, pb)
    assert shift == probability_shift(pb, pa)
    assert 0.0 <= shift <= 2.0 + 1e-9


@given(window_counts)
@settings(max_examples=50)
def test_shift_identity_is_zero(counts):
    p = invocation_probabilities(counts)
    assert probability_shift(p, p) == 0.0


@given(window_counts, window_counts, window_counts)
@settings(max_examples=50)
def test_shift_triangle_inequality(a, b, c):
    pa = invocation_probabilities(a)
    pb = invocation_probabilities(b)
    pc = invocation_probabilities(c)
    assert probability_shift(pa, pc) <= (
        probability_shift(pa, pb) + probability_shift(pb, pc) + 1e-9
    )


@given(st.lists(window_counts, min_size=1, max_size=8))
@settings(max_examples=50)
def test_series_length(windows):
    shifts = shifts_from_window_counts(windows)
    assert len(shifts) == len(windows) - 1
