"""Property-based tests for the window-count forecasters.

Three invariants hold for *any* observation history and parameters:

* **EWMA convexity** — the level is a convex combination of everything
  observed, so a warm forecast always lies within the min/max of the
  observed history (at every horizon: the forecast is flat).
* **Holt-Winters periodic fixpoint** — on an *exactly* periodic series
  the first-season initialization (level = season mean, trend = 0,
  seasonal index = deviation from the mean) is already the fixed point
  of the additive recurrences, so forecasts match the per-phase values
  from the first post-season window onward.
* **Determinism + round-trip stability** — identical observations
  produce identical forecasts, and a state serialized mid-history
  through ``export_state`` → JSON → ``restore_state`` continues the fit
  bit-identically (the property the checkpoint/resume layer stands on).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.forecast import EWMAForecaster, HoltWintersForecaster

_counts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_alphas = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
_smooth = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

_FORECASTERS = st.one_of(
    st.builds(
        EWMAForecaster,
        alpha=_alphas,
        warmup=st.integers(min_value=1, max_value=5),
    ),
    st.builds(
        HoltWintersForecaster,
        alpha=_alphas,
        beta=_smooth,
        gamma=_smooth,
        season_windows=st.integers(min_value=2, max_value=6),
    ),
)


def _feed(forecaster, counts):
    state = forecaster.new_state()
    for count in counts:
        forecaster.observe(state, count)
    return state


class TestEWMAConvexity:
    @given(
        alpha=_alphas,
        warmup=st.integers(min_value=1, max_value=5),
        counts=st.lists(_counts, min_size=1, max_size=40),
        horizon=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_forecast_within_observed_range(self, alpha, warmup, counts, horizon):
        forecaster = EWMAForecaster(alpha=alpha, warmup=warmup)
        state = _feed(forecaster, counts)
        forecast = forecaster.forecast(state, horizon)
        if len(counts) < warmup:
            assert forecast is None  # cold: no number to trust yet
        else:
            # Convex in exact arithmetic; ``a*x + (1-a)*x`` can overshoot
            # x by an ulp in floats, so allow roundoff-scale slack.
            slack = 1e-9 * max(1.0, abs(max(counts)))
            assert min(counts) - slack <= forecast <= max(counts) + slack

    @given(alpha=_alphas, counts=st.lists(_counts, min_size=3, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_forecast_is_flat_across_horizons(self, alpha, counts):
        forecaster = EWMAForecaster(alpha=alpha, warmup=1)
        state = _feed(forecaster, counts)
        assert forecaster.forecast(state, 1) == forecaster.forecast(state, 7)


class TestHoltWintersPeriodicConvergence:
    @given(
        pattern=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        repeats=st.integers(min_value=1, max_value=5),
        alpha=_alphas,
        beta=_smooth,
        gamma=_smooth,
    )
    @settings(max_examples=150, deadline=None)
    def test_exactly_periodic_series_forecasts_per_phase_values(
        self, pattern, repeats, alpha, beta, gamma
    ):
        m = len(pattern)
        forecaster = HoltWintersForecaster(
            alpha=alpha, beta=beta, gamma=gamma, season_windows=m
        )
        state = _feed(forecaster, pattern * repeats)
        # After >= 1 full season, each horizon's forecast is that
        # phase's value: the initialization is the recurrences' fixed
        # point on a periodic input (up to float-roundoff drift).
        for horizon in range(1, m + 1):
            phase = (m * repeats + horizon - 1) % m
            assert forecaster.forecast(state, horizon) == pytest.approx(
                pattern[phase], rel=1e-6, abs=1e-6
            )

    @given(
        pattern=st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        prefix=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_cold_until_one_full_season(self, pattern, prefix):
        m = len(pattern)
        forecaster = HoltWintersForecaster(season_windows=m)
        state = _feed(forecaster, pattern[: min(prefix, m - 1)])
        assert forecaster.forecast(state) is None


class TestDeterminismAndRoundTrip:
    @given(
        forecaster=_FORECASTERS,
        counts=st.lists(_counts, min_size=0, max_size=40),
        horizon=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_identical_histories_forecast_identically(
        self, forecaster, counts, horizon
    ):
        first = _feed(forecaster, counts)
        second = _feed(forecaster, counts)
        assert forecaster.forecast(first, horizon) == forecaster.forecast(
            second, horizon
        )
        assert forecaster.export_state(first) == forecaster.export_state(second)

    @given(
        forecaster=_FORECASTERS,
        counts=st.lists(_counts, min_size=1, max_size=40),
        split=st.integers(min_value=0, max_value=40),
        horizon=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_state_round_trips_through_json_mid_history(
        self, forecaster, counts, split, horizon
    ):
        split = min(split, len(counts))
        reference = _feed(forecaster, counts)
        # Serialize mid-history, continue on the restored state.
        state = _feed(forecaster, counts[:split])
        payload = json.dumps(forecaster.export_state(state))
        restored = forecaster.restore_state(json.loads(payload))
        for count in counts[split:]:
            forecaster.observe(restored, count)
        assert forecaster.export_state(restored) == forecaster.export_state(
            reference
        )
        assert forecaster.forecast(restored, horizon) == forecaster.forecast(
            reference, horizon
        )
