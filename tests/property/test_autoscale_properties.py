"""Property-based tests for autoscaler policy invariants.

Four invariants hold for *any* schedule and parameterization:

* **Cap safety** — no policy ever grows a fleet past ``max_containers``.
* **Panic suspends scale-down** — under :class:`PanicWindow`, no
  container retires strictly inside a panic episode.
* **Scale to zero** — under :class:`TargetUtilization`, an empty tail
  always drains the fleet to zero containers (keep-alive plus the
  scale-to-zero grace later).
* **Single-request equivalence** — for one isolated request all three
  policies produce the identical record and boot exactly one container,
  so the policy space only diverges once there is *concurrency* to
  manage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faas.autoscale import PanicWindow, PerRequest, TargetUtilization
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.workloads.arrival import bursty_schedule, poisson_schedule
from repro.workloads.popularity import zipf_mix

_seeds = st.integers(min_value=0, max_value=2**32 - 1)
_targets = st.floats(min_value=0.2, max_value=1.0, allow_nan=False)
_rates = st.floats(min_value=1.0, max_value=20.0, allow_nan=False)
_max_containers = st.integers(min_value=1, max_value=6)

_POLICIES = st.one_of(
    st.just(PerRequest()),
    _targets.map(lambda t: TargetUtilization(target=t)),
    _targets.map(lambda t: PanicWindow(target=t, stable_window_s=30.0)),
)


@pytest.fixture(scope="module")
def app_config():
    from repro.synthlib.spec import Ecosystem
    from tests.conftest import make_dependent_library, make_small_library

    ecosystem = Ecosystem([make_small_library(), make_dependent_library()])
    ecosystem.validate()
    return SimAppConfig(
        name="app",
        ecosystem=ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=200.0),
        ),
    )


def _platform(app_config, policy, max_containers, seed, keep_alive_s=10.0):
    platform = ClusterPlatform(
        config=SimPlatformConfig(
            cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
        ),
        fleet=FleetConfig(
            max_containers=max_containers,
            keep_alive_s=keep_alive_s,
            policy=policy,
        ),
        seed=seed,
    )
    platform.deploy(app_config)
    return platform


class TestCapSafety:
    @given(
        seed=_seeds, rate=_rates, policy=_POLICIES, max_containers=_max_containers
    )
    @settings(max_examples=25, deadline=None)
    def test_fleet_never_exceeds_max_containers(
        self, app_config, seed, rate, policy, max_containers
    ):
        platform = _platform(app_config, policy, max_containers, seed)
        mix = zipf_mix(["main", "heavy"], seed=3)
        for at, entry in poisson_schedule(mix, rate, duration_s=60.0, seed=seed):
            platform.submit("app", entry, at=at)
        platform.run()
        stats = platform.fleet_stats("app")
        assert stats.peak_containers <= max_containers
        assert len(platform._fleet("app").containers) <= max_containers


class TestPanicSuspendsScaleDown:
    @given(seed=_seeds, burst_rate=st.floats(min_value=8.0, max_value=30.0))
    @settings(max_examples=20, deadline=None)
    def test_no_retirement_inside_a_panic_episode(
        self, app_config, seed, burst_rate
    ):
        policy = PanicWindow(
            target=0.7, stable_window_s=40.0, panic_window_s=4.0
        )
        platform = _platform(app_config, policy, 16, seed, keep_alive_s=3.0)
        mix = zipf_mix(["main", "heavy"], seed=3)
        schedule = bursty_schedule(
            mix,
            base_rate_per_s=0.2,
            burst_rate_per_s=burst_rate,
            period_s=30.0,
            burst_fraction=0.2,
            duration_s=300.0,
            seed=seed,
        )
        for at, entry in schedule:
            platform.submit("app", entry, at=at)
        platform.run(until=400.0)
        state = platform.scaling_state("app")
        retired = platform.retirements("app")
        assert state.episodes  # the bursts did trigger panic
        for _, at in retired:
            for start, until in state.episodes:
                assert not start < at < until, (
                    f"container retired at {at} inside panic [{start}, {until}]"
                )


class TestScaleToZero:
    @given(
        seed=_seeds,
        rate=_rates,
        target=_targets,
        grace=st.floats(min_value=0.0, max_value=60.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_empty_tail_drains_fleet_to_zero(
        self, app_config, seed, rate, target, grace
    ):
        policy = TargetUtilization(target=target, scale_to_zero_grace_s=grace)
        platform = _platform(app_config, policy, 8, seed, keep_alive_s=10.0)
        mix = zipf_mix(["main", "heavy"], seed=3)
        for at, entry in poisson_schedule(mix, rate, duration_s=30.0, seed=seed):
            platform.submit("app", entry, at=at)
        platform.run()
        tail = platform.clock.now() + 10.0 + grace + 1.0
        platform.run(until=tail)
        assert platform.live_containers("app") == 0


class TestSingleRequestEquivalence:
    @given(
        seed=_seeds,
        at=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        jitter=st.sampled_from([0.0, 0.05]),
        target=_targets,
    )
    @settings(max_examples=25, deadline=None)
    def test_one_isolated_request_is_policy_invariant(
        self, app_config, seed, at, jitter, target
    ):
        records = []
        for policy in (
            PerRequest(),
            TargetUtilization(target=target, scale_to_zero_grace_s=17.0),
            PanicWindow(target=target),
        ):
            platform = ClusterPlatform(
                config=SimPlatformConfig(
                    cold_platform_ms=100.0,
                    runtime_init_ms=30.0,
                    warm_platform_ms=1.0,
                    jitter_sigma=jitter,
                ),
                fleet=FleetConfig(policy=policy),
                seed=seed,
            )
            platform.deploy(app_config)
            records.append(platform.invoke("app", "main", at=at))
            platform.run()
            assert platform.fleet_stats("app").containers_spawned == 1
        assert records[0] == records[1] == records[2]
