"""Property-based tests for the calling context tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cct import CallingContextTree
from repro.core.samples import Frame, Sample

_functions = st.sampled_from(["a", "b", "c", "d", "orchestrate", "work"])
_files = st.sampled_from(["/ws/libx/m.py", "/ws/liby/n.py", "/ws/handler.py"])


@st.composite
def samples(draw):
    depth = draw(st.integers(min_value=1, max_value=6))
    path = tuple(
        Frame(file=draw(_files), function=draw(_functions), line=draw(st.integers(1, 3)))
        for _ in range(depth)
    )
    weight = draw(st.floats(min_value=0.01, max_value=100.0, allow_nan=False))
    kind = draw(st.sampled_from(["runtime", "init"]))
    return Sample(path=path, weight=weight, kind=kind)


sample_lists = st.lists(samples(), min_size=0, max_size=40)


@given(sample_lists)
@settings(max_examples=60)
def test_total_weight_conserved(sample_list):
    """Escalated root totals equal the sum of inserted sample weights."""
    tree = CallingContextTree.from_samples(sample_list)
    runtime = sum(s.weight for s in sample_list if s.kind == "runtime")
    init = sum(s.weight for s in sample_list if s.kind == "init")
    assert abs(tree.total_runtime() - runtime) < 1e-6 * max(1.0, runtime)
    assert abs(tree.total_init() - init) < 1e-6 * max(1.0, init)


def _assert_trees_close(left: dict, right: dict) -> None:
    """Structural equality with float tolerance on node weights.

    Merging sums each subtree's weights before folding them in, while
    combined construction adds samples one at a time — float addition is
    not associative, so the two orders legitimately differ in the last
    bits.  Shape and frame identity must still match exactly.
    """
    assert left["frame"] == right["frame"]
    assert left["runtime"] == pytest.approx(right["runtime"], rel=1e-9, abs=1e-9)
    assert left["init"] == pytest.approx(right["init"], rel=1e-9, abs=1e-9)
    assert len(left["children"]) == len(right["children"])
    for child_left, child_right in zip(left["children"], right["children"]):
        _assert_trees_close(child_left, child_right)


@given(sample_lists, sample_lists)
@settings(max_examples=40)
def test_merge_is_equivalent_to_combined_construction(list_a, list_b):
    merged = CallingContextTree.from_samples(list_a)
    merged.merge(CallingContextTree.from_samples(list_b))
    combined = CallingContextTree.from_samples(list_a + list_b)
    _assert_trees_close(merged.to_dict(), combined.to_dict())


@given(sample_lists, sample_lists)
@settings(max_examples=40)
def test_merge_commutes_on_totals(list_a, list_b):
    ab = CallingContextTree.from_samples(list_a)
    ab.merge(CallingContextTree.from_samples(list_b))
    ba = CallingContextTree.from_samples(list_b)
    ba.merge(CallingContextTree.from_samples(list_a))
    assert abs(ab.total_runtime() - ba.total_runtime()) < 1e-6
    assert ab.node_count() == ba.node_count()


@given(sample_lists)
@settings(max_examples=40)
def test_serialization_roundtrip(sample_list):
    tree = CallingContextTree.from_samples(sample_list)
    restored = CallingContextTree.from_dict(tree.to_dict())
    assert restored.to_dict() == tree.to_dict()


@given(sample_lists)
@settings(max_examples=40)
def test_node_count_bounded_by_total_frames(sample_list):
    tree = CallingContextTree.from_samples(sample_list)
    assert tree.node_count() <= sum(len(s.path) for s in sample_list)


@given(sample_lists)
@settings(max_examples=40)
def test_escalated_weights_bounded_by_total(sample_list):
    """No attribution group can exceed the total runtime weight."""
    tree = CallingContextTree.from_samples(sample_list)
    weights = tree.escalated_weights(
        lambda f: f.file if "handler" not in f.file else None
    )
    total = tree.total_runtime()
    for value in weights.values():
        assert value <= total + 1e-9
