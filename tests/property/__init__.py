"""Tests for repro.property (package file keeps duplicate basenames importable)."""
