"""Property-based tests for arrival processes and popularity mixes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrival import (
    burst_entries,
    bursty_schedule,
    idle_gaps,
    merge_schedules,
    poisson_schedule,
)
from repro.workloads.popularity import EntryMix, uniform_mix, zipf_mix

_entry_names = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    min_size=1,
    max_size=5,
    unique=True,
)


@st.composite
def mixes(draw):
    entries = draw(_entry_names)
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
            min_size=len(entries),
            max_size=len(entries),
        )
    )
    return EntryMix(entries=tuple(entries), weights=tuple(weights))


_rates = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
_durations = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestPoissonScheduleProperties:
    @given(mixes(), _rates, _durations, _seeds)
    @settings(max_examples=40)
    def test_sorted_and_bounded_by_duration(self, mix, rate, duration, seed):
        schedule = poisson_schedule(mix, rate, duration, seed=seed)
        times = [at for at, _ in schedule]
        assert times == sorted(times)
        assert all(0.0 <= at < duration for at in times)
        assert all(entry in mix.entries for _, entry in schedule)

    @given(mixes(), _rates, _durations, _seeds)
    @settings(max_examples=40)
    def test_identical_seeds_identical_schedules(self, mix, rate, duration, seed):
        one = poisson_schedule(mix, rate, duration, seed=seed)
        two = poisson_schedule(mix, rate, duration, seed=seed)
        assert one == two

    @given(mixes(), _seeds)
    @settings(max_examples=20)
    def test_entry_frequencies_converge_to_mix(self, mix, seed):
        """Observed entry shares approach the configured probabilities."""
        schedule = poisson_schedule(mix, rate_per_s=40.0, duration_s=400.0, seed=seed)
        counts = {entry: 0 for entry in mix.entries}
        for _, entry in schedule:
            counts[entry] += 1
        total = len(schedule)
        for entry in mix.entries:
            expected = mix.probability(entry)
            tolerance = 4.0 * math.sqrt(expected * (1 - expected) / total) + 0.01
            assert counts[entry] / total == pytest.approx(
                expected, abs=tolerance
            )


class TestBurstyScheduleProperties:
    @given(mixes(), _seeds)
    @settings(max_examples=30)
    def test_sorted_bounded_and_deterministic(self, mix, seed):
        kwargs = dict(
            base_rate_per_s=0.5,
            burst_rate_per_s=20.0,
            period_s=60.0,
            burst_fraction=0.2,
            duration_s=300.0,
            seed=seed,
        )
        schedule = bursty_schedule(mix, **kwargs)
        times = [at for at, _ in schedule]
        assert times == sorted(times)
        assert all(0.0 <= at < 300.0 for at in times)
        assert schedule == bursty_schedule(mix, **kwargs)

    @given(mixes(), _seeds)
    @settings(max_examples=20)
    def test_burst_phase_is_denser(self, mix, seed):
        schedule = bursty_schedule(
            mix,
            base_rate_per_s=0.5,
            burst_rate_per_s=50.0,
            period_s=100.0,
            burst_fraction=0.3,
            duration_s=1000.0,
            seed=seed,
        )
        in_burst = sum(1 for at, _ in schedule if at % 100.0 < 30.0)
        assert in_burst > len(schedule) / 2  # 30% of time, most arrivals


class TestBurstEntriesProperties:
    @given(mixes(), st.integers(min_value=1, max_value=500))
    @settings(max_examples=40)
    def test_proportional_counts_match_quota(self, mix, count):
        burst = burst_entries(mix, count)
        assert len(burst) == count
        total_weight = sum(mix.weights)
        for entry, weight in zip(mix.entries, mix.weights):
            quota = count * weight / total_weight
            observed = burst.count(entry)
            assert math.floor(quota) <= observed <= math.ceil(quota)

    @given(mixes(), st.integers(min_value=0, max_value=200), _seeds)
    @settings(max_examples=40)
    def test_sampled_burst_deterministic_per_seed(self, mix, count, seed):
        assert burst_entries(mix, count, seed=seed) == burst_entries(
            mix, count, seed=seed
        )


class TestMixProperties:
    @given(_entry_names, st.floats(min_value=0.0, max_value=3.0), _seeds)
    @settings(max_examples=40)
    def test_zipf_weights_normalized_and_rank_ordered(self, entries, exponent, seed):
        mix = zipf_mix(list(entries), exponent=exponent, seed=seed)
        assert sum(mix.weights) == pytest.approx(1.0)
        assert list(mix.weights) == sorted(mix.weights, reverse=True)

    @given(_entry_names)
    @settings(max_examples=20)
    def test_uniform_mix_equal_probabilities(self, entries):
        mix = uniform_mix(list(entries))
        for entry in entries:
            assert mix.probability(entry) == pytest.approx(1.0 / len(entries))


class TestScheduleTools:
    @given(mixes(), mixes(), _seeds)
    @settings(max_examples=30)
    def test_merge_preserves_order_and_counts(self, mix_a, mix_b, seed):
        one = poisson_schedule(mix_a, 2.0, 100.0, seed=seed)
        two = poisson_schedule(mix_b, 3.0, 100.0, seed=seed + 1)
        merged = merge_schedules([("a", one), ("b", two)])
        times = [at for at, _ in merged]
        assert times == sorted(times)
        assert len(merged) == len(one) + len(two)
        assert sum(1 for _, path in merged if path.startswith("/a/")) == len(one)

    @given(mixes(), _seeds, st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=30)
    def test_idle_gaps_exceed_keep_alive(self, mix, seed, keep_alive):
        schedule = poisson_schedule(mix, rate_per_s=0.2, duration_s=300.0, seed=seed)
        for gap_start, gap_length in idle_gaps(schedule, keep_alive):
            assert gap_length > keep_alive
            assert any(at == pytest.approx(gap_start) for at, _ in schedule)


class TestTaggedScheduleProperties:
    """The invariants the replay heap-merge relies on, pinned for the
    region-tagged schedule tools: determinism under a fixed seed and
    global non-decreasing time order with per-stream counts preserved."""

    @given(mixes(), mixes(), _seeds)
    @settings(max_examples=30)
    def test_merge_tagged_preserves_order_and_counts(self, mix_a, mix_b, seed):
        from repro.workloads.arrival import merge_tagged_schedules

        one = poisson_schedule(mix_a, 2.0, 100.0, seed=seed)
        two = poisson_schedule(mix_b, 3.0, 100.0, seed=seed + 1)
        merged = merge_tagged_schedules([("us", one), ("eu", two)])
        times = [at for at, _, _ in merged]
        assert times == sorted(times)
        assert len(merged) == len(one) + len(two)
        assert sum(1 for _, _, region in merged if region == "us") == len(one)
        assert [
            (at, entry) for at, entry, region in merged if region == "eu"
        ] == two

    @given(mixes(), mixes(), _seeds)
    @settings(max_examples=30)
    def test_merge_tagged_deterministic_under_fixed_inputs(self, mix_a, mix_b, seed):
        from repro.workloads.arrival import merge_tagged_schedules

        streams = [
            ("us", poisson_schedule(mix_a, 2.0, 80.0, seed=seed)),
            ("eu", poisson_schedule(mix_b, 1.0, 80.0, seed=seed + 1)),
        ]
        assert merge_tagged_schedules(streams) == merge_tagged_schedules(streams)

    @given(mixes(), _seeds)
    @settings(max_examples=30)
    def test_regional_poisson_sorted_and_deterministic(self, mix, seed):
        from repro.workloads.arrival import regional_poisson_schedules

        rates = {"us": 3.0, "eu": 1.0, "ap": 0.5}
        one = regional_poisson_schedules(mix, rates, duration_s=120.0, seed=seed)
        two = regional_poisson_schedules(mix, rates, duration_s=120.0, seed=seed)
        assert one == two
        times = [at for at, _, _ in one]
        assert times == sorted(times)
        assert {region for _, _, region in one} <= set(rates)

    @given(mixes(), _seeds)
    @settings(max_examples=20)
    def test_regional_poisson_regions_are_independent(self, mix, seed):
        """Adding a region never perturbs the other regions' streams."""
        from repro.workloads.arrival import regional_poisson_schedules

        base = regional_poisson_schedules(
            mix, {"us": 2.0, "eu": 1.0}, duration_s=100.0, seed=seed
        )
        widened = regional_poisson_schedules(
            mix, {"us": 2.0, "eu": 1.0, "ap": 4.0}, duration_s=100.0, seed=seed
        )
        kept = [item for item in widened if item[2] != "ap"]
        assert kept == base


class TestReplayStreamProperties:
    """The replay compiler's core invariants: globally non-decreasing
    arrival times, determinism under a fixed seed, and exact volume for
    count-preserving arrival models."""

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
        _seeds,
        _seeds,
    )
    @settings(max_examples=20, deadline=None)
    def test_compiled_stream_sorted_deterministic_exact(
        self, apps, windows, trace_seed, replay_seed
    ):
        from repro.workloads.replay import compile_trace
        from repro.workloads.trace import TraceGenerator

        trace = TraceGenerator(
            app_count=apps,
            duration_hours=windows * 6.0,
            window_hours=6.0,
            mean_requests_per_window=60.0,
            seed=trace_seed,
        ).generate()
        events = list(compile_trace(trace, seed=replay_seed))
        times = [at for at, _, _ in events]
        assert times == sorted(times)
        assert events == list(compile_trace(trace, seed=replay_seed))
        assert len(events) == sum(app.total_invocations() for app in trace.apps)
