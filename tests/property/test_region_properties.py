"""Property-based tests for multi-region routing.

Two invariants pin the federation to the single-region semantics it
composes from:

* **Locality reduction** — strict locality (no spillover, no failover)
  over independent per-region traffic is *exactly* a set of independent
  single-region replays: per-region records, rejections, and cold starts
  are bit-identical to standalone :class:`ClusterPlatform` runs.
* **Failover safety** — least-loaded never routes a request to a region
  whose load-shedder would drop it while another region still accepts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import derive_seed
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.region import (
    LeastLoadedPolicy,
    LocalityPolicy,
    RegionFederation,
    RegionTopology,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.workloads.arrival import merge_tagged_schedules, poisson_schedule
from repro.workloads.popularity import zipf_mix

REGIONS = ("us", "eu")

_seeds = st.integers(min_value=0, max_value=2**32 - 1)
_rates = st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
_jitters = st.sampled_from([0.0, 0.05])


@pytest.fixture(scope="module")
def app_config():
    from tests.conftest import make_dependent_library, make_small_library

    from repro.synthlib.spec import Ecosystem

    ecosystem = Ecosystem([make_small_library(), make_dependent_library()])
    ecosystem.validate()
    return SimAppConfig(
        name="app",
        ecosystem=ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=200.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=200.0),
        ),
    )


class TestStrictLocalityEqualsSingleRegionReplay:
    @given(seed=_seeds, rate=_rates, jitter=_jitters)
    @settings(max_examples=15, deadline=None)
    def test_per_region_records_bit_identical(
        self, app_config, seed, rate, jitter
    ):
        platform_config = SimPlatformConfig(
            cold_platform_ms=100.0,
            runtime_init_ms=30.0,
            warm_platform_ms=1.0,
            jitter_sigma=jitter,
        )
        fleet = FleetConfig(max_containers=3, keep_alive_s=20.0, queue_capacity=1)
        mix = zipf_mix(["main", "heavy"], seed=3)
        per_region = {
            region: poisson_schedule(
                mix, rate, duration_s=120.0, seed=derive_seed(seed, "traffic", region)
            )
            for region in REGIONS
        }

        federation = RegionFederation(
            RegionTopology.fully_connected(REGIONS, default_ms=80.0),
            policy=LocalityPolicy(spillover_load=None, failover=False),
            platform=platform_config,
            fleet=fleet,
            seed=seed,
        )
        federation.deploy(app_config)
        tagged = merge_tagged_schedules(sorted(per_region.items()))
        for at, entry, region in tagged:
            federation.submit(app_config.name, entry, at=at, origin=region)
        federation.run()

        for region in REGIONS:
            solo = ClusterPlatform(
                config=platform_config,
                fleet=fleet,
                seed=derive_seed(seed, "region", region),
            )
            solo.deploy(app_config)
            for at, entry in per_region[region]:
                solo.submit(app_config.name, entry, at=at)
            solo.run()
            federated = federation.platform(region)
            assert federated.records(app_config.name) == solo.records(
                app_config.name
            )
            if solo.records(app_config.name):
                solo_stats = solo.fleet_stats(app_config.name)
                fed_stats = federated.fleet_stats(app_config.name)
                assert fed_stats.rejected == solo_stats.rejected
                assert fed_stats.cold_starts == solo_stats.cold_starts
                assert fed_stats.containers_spawned == solo_stats.containers_spawned


class TestLeastLoadedFailoverSafety:
    @given(
        seed=_seeds,
        burst=st.integers(min_value=1, max_value=12),
        capacity=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_routes_to_shedder_while_another_accepts(
        self, app_config, seed, burst, capacity
    ):
        platform_config = SimPlatformConfig(
            cold_platform_ms=100.0, runtime_init_ms=30.0, warm_platform_ms=1.0
        )
        federation = RegionFederation(
            RegionTopology.fully_connected(REGIONS, default_ms=80.0),
            policy=LeastLoadedPolicy(),
            platform=platform_config,
            fleet=FleetConfig(
                max_containers=2, max_concurrency=1, queue_capacity=capacity
            ),
            seed=seed,
        )
        federation.deploy(app_config)

        violations = []
        for i in range(burst):
            at = 0.001 * i  # near-simultaneous: fleets cannot drain between
            # The router's information set: fleet state plus its own
            # not-yet-delivered forwards (requests still on the wire).
            accepting = {
                region
                for region in REGIONS
                if federation.platform(region).accepts(
                    app_config.name,
                    at=at,
                    extra=federation.pending(region, app_config.name),
                )
            }
            chosen = federation.submit(
                app_config.name, "main", at=at, origin="us"
            )
            if accepting and chosen not in accepting:
                violations.append((i, chosen, accepting))
        assert violations == []

        federation.run()
        # Shedding is bounded by true overload: each region books
        # max_containers slots plus `capacity` queue places, so nothing
        # is rejected until the *whole federation* is out of capacity.
        total_capacity = len(REGIONS) * (2 + capacity)
        rejected = sum(
            stats.rejected
            for stats in federation.region_stats(app_config.name).values()
        )
        if burst <= total_capacity:
            assert rejected == 0
