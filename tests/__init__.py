"""Top-level test package for the SLIMSTART reproduction."""
