"""Tests for the slimstart CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_apps_command(self):
        args = build_parser().parse_args(["apps"])
        assert args.command == "apps"

    def test_report_needs_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--cold-starts", "10", "--runs", "2", "cycle", "--app", "R-GB"]
        )
        assert args.cold_starts == 10
        assert args.runs == 2


class TestCommands:
    def test_apps_lists_catalog(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "R-GB" in out
        assert "CVE" in out
        assert out.count("\n") >= 23

    def test_report_prints_summary_and_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        code = main(
            [
                "--cold-starts",
                "5",
                "--runs",
                "1",
                "report",
                "--app",
                "R-GB",
                "--plan-out",
                str(plan_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLIMSTART Summary" in out
        payload = json.loads(plan_file.read_text())
        assert payload["app"] == "graph_bfs"
        assert "sligraph.drawing" in payload["deferred_library_edges"]

    def test_cluster_reports_fleet_metrics(self, capsys):
        code = main(
            [
                "cluster",
                "--app",
                "R-GB",
                "--rate",
                "4",
                "--duration",
                "120",
                "--keep-alive",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold-start rate" in out
        assert "queueing p50/p99" in out
        assert "container-seconds" in out

    def test_cluster_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "--app", "R-SA"])
        assert args.command == "cluster"
        assert args.max_containers == 16
        assert args.max_concurrency == 1

    def test_cluster_help_documents_schedule_merging(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--help"])
        assert "merge_schedules" in capsys.readouterr().out

    def test_regions_reports_per_region_metrics(self, capsys):
        code = main(
            [
                "regions",
                "--app",
                "R-GB",
                "--regions",
                "us,eu",
                "--rates",
                "4,1",
                "--duration",
                "90",
                "--policy",
                "locality",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing : locality" in out
        assert "us" in out and "eu" in out
        assert "served locally" in out
        assert "network mean/p95" in out

    def test_regions_parser_defaults(self):
        args = build_parser().parse_args(["regions", "--app", "R-SA"])
        assert args.command == "regions"
        assert args.regions == "us-east,eu-west,ap-south"
        assert args.policy == "least-loaded"
        assert args.latency == 80.0
        assert args.queue_capacity is None

    def test_regions_rejects_mismatched_rates(self, capsys):
        code = main(
            ["regions", "--app", "R-GB", "--regions", "us,eu,ap", "--rates", "4,1"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "--rates needs" in captured.err
        assert captured.out == ""  # errors never pollute the report stream

    def test_regions_rejects_malformed_rates(self, capsys):
        code = main(["regions", "--app", "R-GB", "--rates", "4,x"])
        assert code == 1
        captured = capsys.readouterr()
        assert "comma-separated numbers" in captured.err
        assert captured.out == ""

    def test_regions_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["regions", "--app", "R-GB", "--policy", "random"]
            )

    def test_cycle_reports_speedups(self, capsys):
        code = main(["--cold-starts", "20", "--runs", "1", "cycle", "--app", "R-GB"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initialization speedup" in out
        assert "memory reduction" in out

    def test_optimize_applies_plan_to_workspace(self, capsys, tmp_path):
        from repro.apps import benchmark_apps

        app = benchmark_apps(("R-GB",))[0]
        deployment = app.build_real_workspace(tmp_path / "v1", scale=0.01)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps(
                {
                    "app": "graph_bfs",
                    "deferred_handler_imports": [],
                    "deferred_library_edges": ["sligraph.drawing"],
                }
            )
        )
        code = main(
            [
                "optimize",
                "--workspace",
                str(deployment.workspace),
                "--plan",
                str(plan_file),
                "--out",
                str(tmp_path / "v2"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized workspace written" in out
        assert (tmp_path / "v2" / "handler.py").is_file()


class TestAutoscalerFlags:
    def test_cluster_accepts_scaling_policy(self):
        args = build_parser().parse_args(
            ["cluster", "--app", "R-GB", "--policy", "panic-window",
             "--target", "0.5", "--panic-threshold", "3.0"]
        )
        assert args.scaling_policy == "panic-window"
        assert args.target == 0.5
        assert args.panic_threshold == 3.0

    def test_cluster_default_policy_is_per_request(self):
        args = build_parser().parse_args(["cluster", "--app", "R-GB"])
        assert args.scaling_policy == "per-request"

    def test_cluster_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--app", "R-GB", "--policy", "reactive"]
            )

    def test_regions_keeps_routing_and_scaling_policies_apart(self):
        args = build_parser().parse_args(
            ["regions", "--app", "R-GB", "--policy", "locality",
             "--scaling-policy", "target-utilization", "--grace", "30"]
        )
        assert args.policy == "locality"
        assert args.scaling_policy == "target-utilization"
        assert args.grace == 30.0

    def test_cluster_reports_cost_view(self, capsys):
        code = main(
            ["cluster", "--app", "R-GB", "--rate", "4", "--duration", "60",
             "--keep-alive", "30", "--policy", "target-utilization",
             "--target", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy             : target-utilization" in out
        assert "GB-seconds" in out
        assert "cost per 1k req" in out

    def test_regions_reports_cost_column(self, capsys):
        code = main(
            ["regions", "--app", "R-GB", "--regions", "us,eu",
             "--rates", "4,1", "--duration", "60",
             "--scaling-policy", "panic-window"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scaling : panic-window" in out
        assert "$ / 1k" in out
        assert "federation cost" in out

    def test_stray_policy_flags_fail_loudly(self):
        from repro.common.errors import SpecError

        # --target with the default per-request policy is a forgotten
        # --policy, not a silent no-op.
        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--target", "0.5"])
        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--policy", "target-utilization", "--panic-window", "3"])

    def test_zeroed_pricing_flags_zero_the_cost(self, capsys):
        code = main(
            ["cluster", "--app", "R-GB", "--rate", "2", "--duration", "60",
             "--price-gb-second", "0", "--price-million-requests", "0",
             "--cold-start-surcharge", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total cost         : $0.000000" in out

    def test_bad_policy_parameter_is_a_spec_error(self):
        from repro.common.errors import SpecError

        with pytest.raises(SpecError):
            main(
                ["cluster", "--app", "R-GB", "--duration", "30",
                 "--policy", "target-utilization", "--target", "1.5"]
            )


class TestPredictiveFlags:
    def test_cluster_accepts_predictive_policy(self):
        args = build_parser().parse_args(
            ["cluster", "--app", "R-GB", "--policy", "predictive",
             "--forecaster", "holt-winters", "--season-windows", "24",
             "--forecast-window", "3600", "--prewarm-lead", "300",
             "--prewarm-headroom", "1.5"]
        )
        assert args.scaling_policy == "predictive"
        assert args.forecaster == "holt-winters"
        assert args.season_windows == 24
        assert args.forecast_window == 3600.0
        assert args.prewarm_lead == 300.0
        assert args.prewarm_headroom == 1.5

    def test_all_subcommands_share_the_forecaster_flags(self):
        for argv in (
            ["cluster", "--app", "R-GB", "--policy", "predictive",
             "--forecaster", "ewma"],
            ["regions", "--app", "R-GB", "--scaling-policy", "predictive",
             "--forecaster", "ewma"],
            ["replay", "--policy", "predictive", "--forecaster", "ewma"],
        ):
            args = build_parser().parse_args(argv)
            assert args.scaling_policy == "predictive"
            assert args.forecaster == "ewma"

    def test_cluster_runs_predictive_end_to_end(self, capsys):
        code = main(
            ["cluster", "--app", "R-GB", "--rate", "4", "--duration", "60",
             "--policy", "predictive", "--forecaster", "ewma",
             "--forecast-window", "20", "--target", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy             : predictive" in out

    def test_forecaster_flags_are_stray_for_reactive_policies(self):
        from repro.common.errors import SpecError

        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--forecaster", "ewma"])
        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--policy", "panic-window", "--prewarm-lead", "60"])

    def test_panic_flags_are_stray_for_predictive(self):
        from repro.common.errors import SpecError

        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--policy", "predictive", "--panic-threshold", "3.0"])

    def test_season_windows_requires_holt_winters(self):
        from repro.common.errors import SpecError

        # The default forecaster is EWMA, which has no season: a silently
        # ignored --season-windows would misconfigure the model.
        with pytest.raises(SpecError):
            main(["cluster", "--app", "R-GB", "--duration", "30",
                  "--policy", "predictive", "--season-windows", "24"])

    def test_unknown_forecaster_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--app", "R-GB", "--policy", "predictive",
                 "--forecaster", "arima"]
            )


class TestReplayCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.command == "replay"
        assert args.apps == 24
        assert args.arrival_model == "uniform"
        assert args.scaling_policy == "per-request"
        assert args.regions is None
        assert args.max_containers == 8
        assert args.queue_capacity is None

    def test_replay_prints_window_series(self, capsys):
        code = main(
            ["replay", "--apps", "4", "--duration-hours", "24",
             "--window-hours", "12", "--scale", "0.05", "--seed", "11"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "window" in out and "cold%" in out and "GB-s" in out
        assert "cold-start rate" in out
        assert "cost per 1k req" in out

    def test_replay_is_deterministic_under_seed(self, capsys):
        argv = ["replay", "--apps", "3", "--duration-hours", "24",
                "--window-hours", "12", "--scale", "0.05", "--seed", "23",
                "--arrival-model", "diurnal"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_replay_federated_mode_reports_routing(self, capsys):
        code = main(
            ["replay", "--apps", "4", "--duration-hours", "24",
             "--window-hours", "12", "--scale", "0.05", "--seed", "3",
             "--regions", "us,eu", "--routing", "locality",
             "--assignment", "popularity-weighted", "--region-weights", "3,1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing  : locality (popularity-weighted)" in out
        assert "us=" in out and "eu=" in out

    def test_replay_accepts_scaling_policy_flags(self, capsys):
        code = main(
            ["replay", "--apps", "3", "--duration-hours", "24",
             "--window-hours", "12", "--scale", "0.05", "--seed", "3",
             "--policy", "panic-window", "--panic-threshold", "3.0"]
        )
        assert code == 0
        assert "policy   : panic-window" in capsys.readouterr().out

    def test_replay_rejects_malformed_shift_hours(self, capsys):
        code = main(["replay", "--shift-hours", "4,x"])
        assert code == 1
        captured = capsys.readouterr()
        assert "comma-separated numbers" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "-4", "2,nan,6"])
    def test_replay_rejects_nonfinite_or_negative_shift_hours(self, capsys, bad):
        # float() happily parses 'nan'/'inf', and a negative hour can
        # never fire — all of them must fail loudly, not replay silently
        # with a shift event that never happens.
        code = main(["replay", f"--shift-hours={bad}"])
        assert code == 1
        captured = capsys.readouterr()
        assert "--shift-hours must be finite and >= 0" in captured.err
        assert captured.out == ""

    def test_replay_rejects_malformed_region_weights(self, capsys):
        code = main(
            ["replay", "--apps", "2", "--regions", "us,eu",
             "--assignment", "popularity-weighted", "--region-weights", "1,x"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "region-weights" in captured.err
        assert captured.out == ""

    def test_replay_rejects_unknown_arrival_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--arrival-model", "fractal"])

    def test_replay_zero_arrivals_fails_loudly(self, capsys):
        code = main(
            ["replay", "--apps", "1", "--duration-hours", "12",
             "--requests-per-window", "0.0001", "--scale", "0.0001"]
        )
        assert code == 1
        assert "zero arrivals" in capsys.readouterr().err

    def test_cluster_gained_shared_queue_capacity_flag(self, capsys):
        code = main(
            ["cluster", "--app", "R-GB", "--rate", "8", "--duration", "60",
             "--max-containers", "1", "--queue-capacity", "0",
             "--keep-alive", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejected" in out

    def test_replay_rejects_mismatched_region_weights(self, capsys):
        code = main(
            ["replay", "--apps", "2", "--regions", "us,eu",
             "--assignment", "popularity-weighted", "--region-weights", "1,2,3"]
        )
        assert code == 1
        assert "--region-weights invalid" in capsys.readouterr().err

    def test_replay_workers_is_bit_identical_to_default_totals(self, capsys):
        base = ["replay", "--apps", "4", "--duration-hours", "24",
                "--window-hours", "12", "--scale", "0.05", "--seed", "11"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "engine   : sharded, 2 worker process(es)" in sharded

        def totals(out, field):
            line = next(l for l in out.splitlines() if l.startswith(field))
            return line.split(":")[1].strip()

        # Arrival/completion counts match the plain engine exactly; the
        # GB-second/cost lines differ only by the natural-expiry tail
        # flush, so they are not compared here (test_shard pins the
        # sharded engine's own exactness bit-for-bit).
        for field in ("arrivals", "completed", "shed", "cold-start rate"):
            assert totals(sharded, field) == totals(plain, field)

    def test_replay_checkpoint_resumes_to_identical_report(self, capsys, tmp_path):
        path = tmp_path / "replay.ckpt"
        base = ["replay", "--apps", "3", "--duration-hours", "24",
                "--window-hours", "12", "--scale", "0.05", "--seed", "7"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--checkpoint", str(path)]) == 0
        checkpointed = capsys.readouterr().out
        assert checkpointed == plain  # fresh run: same engine, no resume line
        assert not path.exists()  # completed runs clean up

    def test_replay_checkpoint_refuses_mismatched_flags(self, capsys, tmp_path):
        # A leftover checkpoint from a differently-configured replay must
        # fail loudly instead of silently blending two workloads.
        from repro.faas.cluster import ClusterPlatform
        from repro.faas.replaydeploy import deploy_trace
        from repro.faas.snapshot import write_checkpoint
        from repro.metrics import WindowAccumulator
        from repro.workloads.trace import TraceGenerator

        trace = TraceGenerator(
            app_count=3, duration_hours=36.0, window_hours=12.0, seed=999
        ).generate()
        platform = ClusterPlatform(seed=999)
        deploy_trace(platform, trace)  # same app names as the CLI's trace
        path = tmp_path / "stale.ckpt"
        write_checkpoint(
            path, platform, WindowAccumulator(12 * 3600.0),
            consumed=5, fingerprint={"seed": 999},
        )
        code = main(
            ["replay", "--apps", "3", "--duration-hours", "36",
             "--window-hours", "12", "--scale", "0.05", "--seed", "7",
             "--checkpoint", str(path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "cannot resume" in captured.err
        assert "differently-configured" in captured.err
        assert path.exists()  # the stale checkpoint is left for the user

    def test_replay_workers_rejected_with_regions(self, capsys):
        code = main(
            ["replay", "--apps", "2", "--regions", "us,eu", "--workers", "2"]
        )
        assert code == 1
        assert "single-cluster" in capsys.readouterr().err

    def test_replay_single_worker_with_checkpoint_really_checkpoints(
        self, capsys, tmp_path, monkeypatch
    ):
        # --workers 1 --checkpoint must use the checkpointed sharded
        # engine: boundary checkpoints land in the per-shard file, the
        # manifest at the given path, and everything is cleaned up.
        from repro.faas import snapshot
        from repro.faas.snapshot import shard_checkpoint_path

        path = tmp_path / "w1.ckpt"
        written = []
        original = snapshot.write_checkpoint

        def spy(target, *args, **kwargs):
            written.append(target)
            return original(target, *args, **kwargs)

        monkeypatch.setattr(snapshot, "write_checkpoint", spy)
        code = main(
            ["replay", "--apps", "3", "--duration-hours", "36",
             "--window-hours", "12", "--scale", "0.05", "--seed", "7",
             "--workers", "1", "--checkpoint", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine   : sharded, 1 worker process(es), checkpointed" in out
        shard_path = shard_checkpoint_path(path, 0, 1)
        assert written and all(Path(p) == shard_path for p in map(Path, written))
        assert list(tmp_path.iterdir()) == []  # cleaned up on success

    def test_replay_workers_and_checkpoint_compose(self, capsys, tmp_path):
        # The old --workers x --checkpoint exclusion is gone: the
        # composed run produces the exact sharded report and cleans up
        # its manifest + per-shard checkpoint files.
        path = tmp_path / "sharded.ckpt"
        base = ["replay", "--apps", "3", "--duration-hours", "36",
                "--window-hours", "12", "--scale", "0.05", "--seed", "7"]
        assert main(base + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--checkpoint", str(path)]) == 0
        checkpointed = capsys.readouterr().out
        assert (
            "engine   : sharded, 2 worker process(es), checkpointed"
            in checkpointed
        )
        # Identical report modulo the engine line's ", checkpointed" tag.
        assert checkpointed.replace(", checkpointed", "") == sharded
        assert list(tmp_path.iterdir()) == []

    def test_replay_checkpoint_rejects_mismatched_worker_count(
        self, capsys, tmp_path
    ):
        # Satellite: resuming a 4-worker manifest with --workers 2 must
        # fail loudly and point at the worker count that wrote it.
        from repro.faas.snapshot import write_manifest

        path = tmp_path / "sharded.ckpt"
        write_manifest(path, workers=4, partition={})
        code = main(
            ["replay", "--apps", "2", "--workers", "2",
             "--checkpoint", str(path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "cannot resume" in captured.err
        assert "4-worker replay" in captured.err
        assert "--workers 4" in captured.err  # tells the user the way out
        assert captured.out == ""
        assert path.exists()  # the manifest is left for the user

    def test_replay_rejects_nonpositive_workers(self, capsys):
        code = main(["replay", "--apps", "2", "--workers", "0"])
        assert code == 1
        assert "--workers must be at least 1" in capsys.readouterr().err


class TestQoSFlags:
    BASE = ["replay", "--apps", "4", "--duration-hours", "24",
            "--window-hours", "12", "--scale", "0.05", "--seed", "11"]

    def test_parser_accepts_qos_mix_and_probabilistic_routing(self):
        args = build_parser().parse_args(
            self.BASE + ["--qos-mix", "critical=1,standard=5,batch=4",
                         "--regions", "us,eu", "--routing", "probabilistic"]
        )
        assert args.qos_mix == "critical=1,standard=5,batch=4"
        assert args.routing == "probabilistic"

    def test_qos_mix_adds_per_class_report(self, capsys):
        code = main(self.BASE + ["--qos-mix", "critical=1,standard=5,batch=4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "qos mix  : critical=1, standard=5, batch=4" in out
        for name in ("critical", "standard", "batch"):
            assert name in out
        assert "total utility" in out

    def test_qos_report_absent_without_mix(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "qos mix" not in out
        assert "total utility" not in out

    def test_qos_mix_is_deterministic_under_seed(self, capsys):
        argv = self.BASE + ["--qos-mix", "critical=2,batch=1"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_qos_mix_sharded_matches_plain_per_class_totals(self, capsys):
        argv = self.BASE + ["--qos-mix", "critical=1,standard=5,batch=4"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out

        def qos_lines(out):
            return [line for line in out.splitlines()
                    if line.startswith(("critical", "standard", "batch"))]

        assert qos_lines(sharded) == qos_lines(plain)

    def test_rejects_unknown_qos_class(self, capsys):
        code = main(self.BASE + ["--qos-mix", "platinum=1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "--qos-mix invalid" in captured.err
        assert "platinum" in captured.err
        assert captured.out == ""

    def test_rejects_malformed_qos_weight(self, capsys):
        code = main(self.BASE + ["--qos-mix", "critical=fast"])
        assert code == 1
        assert "must be a number" in capsys.readouterr().err

    def test_qos_mix_federated_with_probabilistic_routing(self, capsys):
        code = main(
            self.BASE + ["--qos-mix", "critical=1,standard=5,batch=4",
                         "--regions", "us,eu", "--routing", "probabilistic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing  : probabilistic" in out
        assert "total utility" in out
