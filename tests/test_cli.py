"""Tests for the slimstart CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_apps_command(self):
        args = build_parser().parse_args(["apps"])
        assert args.command == "apps"

    def test_report_needs_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--cold-starts", "10", "--runs", "2", "cycle", "--app", "R-GB"]
        )
        assert args.cold_starts == 10
        assert args.runs == 2


class TestCommands:
    def test_apps_lists_catalog(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "R-GB" in out
        assert "CVE" in out
        assert out.count("\n") >= 23

    def test_report_prints_summary_and_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        code = main(
            [
                "--cold-starts",
                "5",
                "--runs",
                "1",
                "report",
                "--app",
                "R-GB",
                "--plan-out",
                str(plan_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLIMSTART Summary" in out
        payload = json.loads(plan_file.read_text())
        assert payload["app"] == "graph_bfs"
        assert "sligraph.drawing" in payload["deferred_library_edges"]

    def test_cluster_reports_fleet_metrics(self, capsys):
        code = main(
            [
                "cluster",
                "--app",
                "R-GB",
                "--rate",
                "4",
                "--duration",
                "120",
                "--keep-alive",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold-start rate" in out
        assert "queueing p50/p99" in out
        assert "container-seconds" in out

    def test_cluster_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "--app", "R-SA"])
        assert args.command == "cluster"
        assert args.max_containers == 16
        assert args.max_concurrency == 1

    def test_cycle_reports_speedups(self, capsys):
        code = main(["--cold-starts", "20", "--runs", "1", "cycle", "--app", "R-GB"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initialization speedup" in out
        assert "memory reduction" in out

    def test_optimize_applies_plan_to_workspace(self, capsys, tmp_path):
        from repro.apps import benchmark_apps

        app = benchmark_apps(("R-GB",))[0]
        deployment = app.build_real_workspace(tmp_path / "v1", scale=0.01)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps(
                {
                    "app": "graph_bfs",
                    "deferred_handler_imports": [],
                    "deferred_library_edges": ["sligraph.drawing"],
                }
            )
        )
        code = main(
            [
                "optimize",
                "--workspace",
                str(deployment.workspace),
                "--plan",
                str(plan_file),
                "--out",
                str(tmp_path / "v2"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized workspace written" in out
        assert (tmp_path / "v2" / "handler.py").is_file()
