"""Tests for the slimstart CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_apps_command(self):
        args = build_parser().parse_args(["apps"])
        assert args.command == "apps"

    def test_report_needs_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--cold-starts", "10", "--runs", "2", "cycle", "--app", "R-GB"]
        )
        assert args.cold_starts == 10
        assert args.runs == 2


class TestCommands:
    def test_apps_lists_catalog(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "R-GB" in out
        assert "CVE" in out
        assert out.count("\n") >= 23

    def test_report_prints_summary_and_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        code = main(
            [
                "--cold-starts",
                "5",
                "--runs",
                "1",
                "report",
                "--app",
                "R-GB",
                "--plan-out",
                str(plan_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLIMSTART Summary" in out
        payload = json.loads(plan_file.read_text())
        assert payload["app"] == "graph_bfs"
        assert "sligraph.drawing" in payload["deferred_library_edges"]

    def test_cluster_reports_fleet_metrics(self, capsys):
        code = main(
            [
                "cluster",
                "--app",
                "R-GB",
                "--rate",
                "4",
                "--duration",
                "120",
                "--keep-alive",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cold-start rate" in out
        assert "queueing p50/p99" in out
        assert "container-seconds" in out

    def test_cluster_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "--app", "R-SA"])
        assert args.command == "cluster"
        assert args.max_containers == 16
        assert args.max_concurrency == 1

    def test_cluster_help_documents_schedule_merging(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--help"])
        assert "merge_schedules" in capsys.readouterr().out

    def test_regions_reports_per_region_metrics(self, capsys):
        code = main(
            [
                "regions",
                "--app",
                "R-GB",
                "--regions",
                "us,eu",
                "--rates",
                "4,1",
                "--duration",
                "90",
                "--policy",
                "locality",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy  : locality" in out
        assert "us" in out and "eu" in out
        assert "served locally" in out
        assert "network mean/p95" in out

    def test_regions_parser_defaults(self):
        args = build_parser().parse_args(["regions", "--app", "R-SA"])
        assert args.command == "regions"
        assert args.regions == "us-east,eu-west,ap-south"
        assert args.policy == "least-loaded"
        assert args.latency == 80.0
        assert args.queue_capacity is None

    def test_regions_rejects_mismatched_rates(self, capsys):
        code = main(
            ["regions", "--app", "R-GB", "--regions", "us,eu,ap", "--rates", "4,1"]
        )
        assert code == 1
        assert "--rates needs" in capsys.readouterr().out

    def test_regions_rejects_malformed_rates(self, capsys):
        code = main(["regions", "--app", "R-GB", "--rates", "4,x"])
        assert code == 1
        assert "comma-separated numbers" in capsys.readouterr().out

    def test_regions_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["regions", "--app", "R-GB", "--policy", "random"]
            )

    def test_cycle_reports_speedups(self, capsys):
        code = main(["--cold-starts", "20", "--runs", "1", "cycle", "--app", "R-GB"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initialization speedup" in out
        assert "memory reduction" in out

    def test_optimize_applies_plan_to_workspace(self, capsys, tmp_path):
        from repro.apps import benchmark_apps

        app = benchmark_apps(("R-GB",))[0]
        deployment = app.build_real_workspace(tmp_path / "v1", scale=0.01)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            json.dumps(
                {
                    "app": "graph_bfs",
                    "deferred_handler_imports": [],
                    "deferred_library_edges": ["sligraph.drawing"],
                }
            )
        )
        code = main(
            [
                "optimize",
                "--workspace",
                str(deployment.workspace),
                "--plan",
                str(plan_file),
                "--out",
                str(tmp_path / "v2"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimized workspace written" in out
        assert (tmp_path / "v2" / "handler.py").is_file()
