"""Shared fixtures: a small, hand-crafted ecosystem with exactly known
costs (for precise assertions) plus a session-scoped materialized workspace.
"""

from __future__ import annotations

import pytest

from repro.synthlib.spec import (
    Ecosystem,
    FunctionSpec,
    LibrarySpec,
    ModuleSpec,
)


def make_small_library(name: str = "libx") -> LibrarySpec:
    """A tiny library with exactly-known costs.

    Layout::

        libx/                (root: 10 ms, 1000 kB) imports core, extra
          core/              (20 ms) imports core.fast
            fast             (5 ms)
          extra/             (40 ms) imports extra.heavy
            heavy            (25 ms)

    Total init 100 ms.  ``core.fast:work`` costs 2 ms; the root's
    ``use_core``/``use_extra`` delegate into the clusters.
    """
    return LibrarySpec(
        name=name,
        category="Test",
        modules=(
            ModuleSpec(
                name="",
                init_cost_ms=10.0,
                memory_kb=1000.0,
                imports=("core", "extra"),
                functions=(
                    FunctionSpec("use_core", 1.0, calls=(f"{name}.core:run",)),
                    FunctionSpec("use_extra", 1.0, calls=(f"{name}.extra:run",)),
                    FunctionSpec("ping", 0.5),
                ),
            ),
            ModuleSpec(
                name="core",
                init_cost_ms=20.0,
                memory_kb=2000.0,
                imports=("core.fast",),
                functions=(
                    FunctionSpec("run", 1.0, calls=(f"{name}.core.fast:work",)),
                ),
            ),
            ModuleSpec(
                name="core.fast",
                init_cost_ms=5.0,
                memory_kb=500.0,
                functions=(FunctionSpec("work", 2.0),),
            ),
            ModuleSpec(
                name="extra",
                init_cost_ms=40.0,
                memory_kb=4000.0,
                imports=("extra.heavy",),
                functions=(
                    FunctionSpec("run", 1.0, calls=(f"{name}.extra.heavy:work",)),
                ),
            ),
            ModuleSpec(
                name="extra.heavy",
                init_cost_ms=25.0,
                memory_kb=2500.0,
                functions=(FunctionSpec("work", 3.0),),
            ),
        ),
    )


def make_dependent_library(name: str = "liby", dep: str = "libx") -> LibrarySpec:
    """A small library that eagerly imports another at its root."""
    return LibrarySpec(
        name=name,
        category="Test",
        modules=(
            ModuleSpec(
                name="",
                init_cost_ms=8.0,
                memory_kb=800.0,
                imports=("util",),
                external_imports=(dep,),
                functions=(FunctionSpec("go", 1.0, calls=(f"{name}.util:fn",)),),
            ),
            ModuleSpec(
                name="util",
                init_cost_ms=12.0,
                memory_kb=1200.0,
                functions=(FunctionSpec("fn", 1.5),),
            ),
        ),
    )


@pytest.fixture()
def small_library() -> LibrarySpec:
    return make_small_library()


@pytest.fixture()
def small_ecosystem() -> Ecosystem:
    eco = Ecosystem([make_small_library(), make_dependent_library()])
    eco.validate()
    return eco


@pytest.fixture(scope="session")
def session_ecosystem() -> Ecosystem:
    eco = Ecosystem([make_small_library(), make_dependent_library()])
    eco.validate()
    return eco


@pytest.fixture(scope="session")
def session_workspace(tmp_path_factory, session_ecosystem):
    """A materialized workspace for the small ecosystem (fast imports)."""
    from repro.synthlib.generator import materialize_ecosystem

    workspace = tmp_path_factory.mktemp("small_ws")
    materialize_ecosystem(session_ecosystem, workspace, scale=0.01)
    return workspace
