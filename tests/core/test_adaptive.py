"""Tests for the adaptive workload monitor (Eqs. 5-7)."""

import pytest

from repro.common.errors import WorkloadError
from repro.core.adaptive import (
    WorkloadMonitor,
    invocation_probabilities,
    probability_shift,
    shifts_from_window_counts,
)


class TestEquations:
    def test_probabilities_eq5(self):
        probabilities = invocation_probabilities({"a": 30, "b": 70})
        assert probabilities == {"a": 0.3, "b": 0.7}

    def test_probabilities_empty_window(self):
        assert invocation_probabilities({}) == {}

    def test_shift_eq6(self):
        previous = {"a": 0.9, "b": 0.1}
        current = {"a": 0.1, "b": 0.9}
        assert probability_shift(previous, current) == pytest.approx(1.6)

    def test_shift_counts_new_and_vanished_entries(self):
        assert probability_shift({"a": 1.0}, {"b": 1.0}) == pytest.approx(2.0)

    def test_no_shift(self):
        assert probability_shift({"a": 0.5, "b": 0.5}, {"b": 0.5, "a": 0.5}) == 0.0


class TestMonitor:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadMonitor(window_s=0)
        with pytest.raises(WorkloadError):
            WorkloadMonitor(epsilon=-1)

    def test_first_window_never_triggers(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.01)
        monitor.observe("a", 1.0)
        decisions = monitor.observe("a", 11.0)  # closes window 0
        assert len(decisions) == 1
        assert not decisions[0].triggered
        assert decisions[0].shift == 0.0

    def test_stable_workload_does_not_trigger(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.1)
        for window in range(4):
            for _ in range(9):
                monitor.observe("a", window * 10.0 + 1.0)
            monitor.observe("b", window * 10.0 + 2.0)
        decisions = monitor.observe("a", 40.0)
        assert all(not decision.triggered for decision in decisions)

    def test_shifted_workload_triggers_eq7(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.5)
        for _ in range(10):
            monitor.observe("a", 1.0)
        for _ in range(10):
            monitor.observe("b", 11.0)
        decisions = monitor.observe("a", 21.0)
        triggered = [decision for decision in decisions if decision.triggered]
        assert len(triggered) == 1
        assert triggered[0].shift == pytest.approx(2.0)

    def test_out_of_order_rejected(self):
        monitor = WorkloadMonitor(window_s=10.0)
        monitor.observe("a", 25.0)  # fast-forwards past two windows
        with pytest.raises(WorkloadError):
            monitor.observe("a", 3.0)

    def test_gap_produces_empty_windows(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.01)
        monitor.observe("a", 1.0)
        decisions = monitor.observe("a", 35.0)  # windows 0,1,2 close
        assert len(decisions) == 3
        assert decisions[1].probabilities == {}

    def test_flush(self):
        monitor = WorkloadMonitor(window_s=10.0)
        monitor.observe("a", 1.0)
        decision = monitor.flush()
        assert decision.probabilities == {"a": 1.0}

    def test_triggers_listing(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.1)
        monitor.observe("a", 1.0)
        monitor.observe("b", 11.0)
        monitor.observe("a", 21.0)
        monitor.flush()
        assert len(monitor.triggers()) >= 1

    def test_window_boundaries(self):
        monitor = WorkloadMonitor(window_s=10.0)
        decisions = monitor.observe("a", 10.0)  # exactly at boundary
        assert len(decisions) == 1  # the first window [0, 10) closed


class TestOfflineSeries:
    def test_shift_series(self):
        windows = [{"a": 10}, {"a": 10}, {"b": 10}]
        shifts = shifts_from_window_counts(windows)
        assert shifts == [0.0, pytest.approx(2.0)]

    def test_empty_window_does_not_reset_baseline(self):
        windows = [{"a": 10}, {}, {"a": 10}]
        shifts = shifts_from_window_counts(windows)
        # Going idle registers as a shift, but an idle window carries no
        # workload information, so the last busy window stays the baseline
        # and resuming the same pattern registers no shift.
        assert shifts[0] == pytest.approx(1.0)
        assert shifts[1] == pytest.approx(0.0)


class TestWindowRollover:
    def test_multi_window_gap_closes_each_window_once(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.01)
        monitor.observe("a", 0.0)
        decisions = monitor.observe("a", 35.0)  # windows 0, 1, 2 close
        assert [decision.window_index for decision in decisions] == [0, 1, 2]
        assert [decision.window_end_s for decision in decisions] == [
            10.0,
            20.0,
            30.0,
        ]
        # The gap windows saw no invocations at all.
        assert decisions[1].probabilities == {}
        assert decisions[2].probabilities == {}

    def test_observation_lands_in_window_after_rollover(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.01)
        monitor.observe("a", 0.0)
        monitor.observe("b", 25.0)
        decision = monitor.flush()
        # The invocation at t=25 belongs to window 2, not the closed ones.
        assert decision.window_index == 2
        assert decision.probabilities == {"b": 1.0}

    def test_zero_epsilon_triggers_on_any_shift(self):
        monitor = WorkloadMonitor(window_s=10.0, epsilon=0.0)
        for _ in range(3):
            monitor.observe("a", 1.0)
        monitor.observe("a", 11.0)
        monitor.observe("b", 12.0)
        decisions = monitor.observe("a", 21.0)
        assert decisions[-1].triggered

    def test_start_time_offsets_first_window(self):
        monitor = WorkloadMonitor(window_s=10.0, start_time_s=100.0)
        with pytest.raises(WorkloadError):
            monitor.observe("a", 99.0)
        decisions = monitor.observe("a", 110.0)
        assert decisions[0].window_end_s == 110.0
