"""Tests for the SlimStart pipeline facade (simulated + real paths)."""

import textwrap

import pytest

from repro.core.adaptive import WorkloadMonitor
from repro.core.pipeline import (
    CICDPipeline,
    PipelineConfig,
    SlimStart,
    handler_imports_from_source,
)
from repro.faas.deployment import build_workspace
from repro.faas.local import FunctionDeployment, LocalPlatform
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform
from repro.workloads.popularity import EntryMix


@pytest.fixture()
def app_config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=2.0),
            EntryBehavior("heavy", calls=("libx:use_extra",), handler_self_ms=2.0),
        ),
    )


@pytest.fixture()
def mix() -> EntryMix:
    return EntryMix(entries=("main",), weights=(1.0,))


def make_workload(count=40, entry="main", gap=700.0):
    # Spaced arrivals so some invocations are warm, with periodic colds.
    workload = []
    t = 0.0
    for index in range(count):
        t += gap if index % 10 == 0 else 1.0
        workload.append((t, entry))
    return workload


class TestHandlerImports:
    def test_extracts_library_imports(self):
        source = textwrap.dedent(
            """
            import os
            import libx
            import libx.extra
            from liby import util
            """
        )
        imports = handler_imports_from_source(source, {"libx", "liby"})
        assert imports == ("libx", "libx.extra", "liby")


class TestSimulatedCycle:
    def test_cycle_improves_cold_start(self, app_config, mix):
        tool = SlimStart(PipelineConfig(measure_cold_starts=20, measure_runs=2))
        result = tool.run_simulated_cycle(app_config, make_workload(), mix)
        # 'heavy' never runs: libx.extra (65 of 100 ms) should be deferred.
        assert "libx.extra" in result.plan.deferred_library_edges
        assert result.speedups.init_speedup > 1.4
        assert result.speedups.memory_reduction > 1.0

    def test_cycle_report_gate(self, small_ecosystem, mix):
        # Execution-dominated app: init ratio below 10 % -> no optimization.
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(
                EntryBehavior(
                    "main", calls=("libx:use_core",), handler_self_ms=5000.0
                ),
            ),
        )
        tool = SlimStart(PipelineConfig(measure_cold_starts=10, measure_runs=1))
        result = tool.run_simulated_cycle(config, make_workload(), mix)
        assert not result.report.profiled
        assert result.plan.is_empty
        assert result.speedups.init_speedup == pytest.approx(1.0, abs=0.05)

    def test_measurement_has_expected_size(self, app_config, mix):
        tool = SlimStart(PipelineConfig(measure_cold_starts=15, measure_runs=3))
        result = tool.run_simulated_cycle(app_config, make_workload(), mix)
        assert result.before.total == 45
        assert result.before.cold_starts == 45

    def test_profile_simulated_bundle_shape(self, app_config):
        tool = SlimStart()
        platform = SimPlatform()
        platform.deploy(app_config)
        bundle = tool.profile_simulated(platform, app_config, make_workload())
        assert bundle.app == "app"
        assert bundle.cold_starts >= 1
        assert len(bundle.samples) > 0


class TestRealPath:
    HANDLER = textwrap.dedent(
        """
        import libx


        def main(event=None):
            return libx.use_core()


        def heavy(event=None):
            return libx.use_extra()
        """
    )

    @pytest.fixture()
    def deployment(self, tmp_path, session_ecosystem):
        # Full-scale costs keep library execution in the milliseconds so
        # the 1 ms sampler observes real library runtime (at tiny scales
        # all library calls fall between samples and utilization reads
        # zero, which makes the analyzer defer the whole library).
        workspace = build_workspace(
            session_ecosystem, self.HANDLER, tmp_path / "v1", scale=1.0
        )
        return FunctionDeployment(
            name="realapp", workspace=workspace, entries=("main", "heavy")
        )

    def test_profile_real_invocations(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        tool = SlimStart()
        bundle = tool.profile_real_invocations(
            platform, deployment, ["main"] * 20, {"libx"}, interval_ms=1.0
        )
        assert bundle.cold_starts == 1
        assert bundle.handler_imports == ("libx",)
        # The recorder times the handler module plus all 5 library modules.
        assert len(bundle.import_profile) == 6
        assert "libx.extra.heavy" in bundle.import_profile
        assert bundle.entry_counts == {"main": 20}

    def test_full_real_cycle(self, deployment, tmp_path):
        platform = LocalPlatform()
        platform.deploy(deployment)
        tool = SlimStart()
        bundle = tool.profile_real_invocations(
            platform, deployment, ["main"] * 60, {"libx"}, interval_ms=1.0
        )
        attributor = tool.workspace_attributor(deployment.workspace, {"libx"})
        report = tool.analyze(bundle, attributor)
        assert "libx.extra" in report.plan.deferred_library_edges

        optimized = tool.optimize_workspace(
            deployment.workspace, report.plan, tmp_path / "v2"
        )
        assert optimized.changed
        new_deployment = FunctionDeployment(
            name="realapp",
            workspace=optimized.workspace,
            entries=deployment.entries,
        )
        platform.redeploy(new_deployment)
        platform.force_cold("realapp")
        after = platform.invoke("realapp", "main")
        registry = platform.runtime_registry("realapp")
        loaded = registry.loaded_modules()
        assert "libx.extra" not in loaded
        # Correctness: the deferred path still works on demand.
        platform.invoke("realapp", "heavy")
        assert "libx.extra" in platform.runtime_registry("realapp").loaded_modules()

    def test_profile_requires_entries(self, deployment):
        platform = LocalPlatform()
        platform.deploy(deployment)
        tool = SlimStart()
        with pytest.raises(Exception):
            tool.profile_real_invocations(platform, deployment, [], {"libx"})


class TestAdaptiveCICD:
    def test_shift_triggers_reprofile_and_redeploy(self, app_config):
        platform = SimPlatform()
        platform.deploy(app_config)
        tool = SlimStart()
        monitor = WorkloadMonitor(window_s=100.0, epsilon=0.5)
        pipeline = CICDPipeline(tool, platform, app_config, monitor)

        # Window 1: only 'main' -> extra gets deferred at the first trigger.
        records = [platform.invoke("app", "main", at=float(t)) for t in range(0, 90, 10)]
        pipeline.observe(records)
        # Window 2: only 'heavy' -> big probability shift.
        records = [
            platform.invoke("app", "heavy", at=100.0 + t) for t in range(0, 90, 10)
        ]
        pipeline.observe(records)
        # Window 3 arrival closes window 2 and processes the shift.
        records = [platform.invoke("app", "heavy", at=200.0)]
        events = pipeline.observe(records)
        assert any(event.reprofiled for event in events)
        assert pipeline.profile_count >= 1

    def test_stable_workload_never_reprofiles(self, app_config):
        platform = SimPlatform()
        platform.deploy(app_config)
        tool = SlimStart()
        monitor = WorkloadMonitor(window_s=50.0, epsilon=0.5)
        pipeline = CICDPipeline(tool, platform, app_config, monitor)
        for window in range(4):
            records = [
                platform.invoke("app", "main", at=window * 50.0 + t)
                for t in range(0, 40, 5)
            ]
            pipeline.observe(records)
        assert pipeline.profile_count == 0
