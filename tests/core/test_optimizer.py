"""Tests for the AST import optimizer (global -> deferred)."""

import textwrap

import pytest

from repro.common.errors import OptimizationError
from repro.core.optimizer import optimize_source


def src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def run_module(source: str, entry: str, *args):
    """Exec transformed source and call an entry (semantic check)."""
    namespace: dict = {}
    exec(compile(source, "<test>", "exec"), namespace)
    return namespace[entry](*args)


class TestBasicDeferral:
    def test_plain_import_moved_into_function(self):
        source = src(
            """
            import json

            def handle(event):
                return json.dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        assert "# [slimstart] deferred: import json" in result.source
        body = result.source.split("def handle(event):")[1]
        assert "import json" in body
        assert run_module(result.source, "handle", {"a": 1}) == '{"a": 1}'

    def test_import_as_alias(self):
        source = src(
            """
            import json as j

            def handle(event):
                return j.dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        assert run_module(result.source, "handle", [1]) == "[1]"

    def test_from_import(self):
        source = src(
            """
            from json import dumps

            def handle(event):
                return dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        assert run_module(result.source, "handle", 5) == "5"

    def test_from_import_with_alias(self):
        source = src(
            """
            from json import dumps as d

            def handle(event):
                return d(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert run_module(result.source, "handle", 5) == "5"

    def test_submodule_import_matches_parent_target(self):
        source = src(
            """
            import os.path

            def handle(event):
                return os.path.join("a", event)
            """
        )
        result = optimize_source(source, {"os"})
        assert result.changed
        assert run_module(result.source, "handle", "b") == "a/b"

    def test_only_functions_using_name_get_import(self):
        source = src(
            """
            import json

            def uses(event):
                return json.dumps(event)

            def ignores(event):
                return event
            """
        )
        result = optimize_source(source, {"json"})
        uses_body = result.source.split("def uses(event):")[1].split("def ")[0]
        ignores_body = result.source.split("def ignores(event):")[1]
        assert "import json" in uses_body
        assert "import json" not in ignores_body

    def test_docstring_preserved_import_after_it(self):
        source = src(
            '''
            import json

            def handle(event):
                """Docstring stays first."""
                return json.dumps(event)
            '''
        )
        result = optimize_source(source, {"json"})
        body = result.source.split("def handle(event):")[1]
        assert body.splitlines()[1].strip().startswith('"""')
        assert run_module(result.source, "handle", 1) == "1"

    def test_multiple_targets(self):
        source = src(
            """
            import json
            import base64

            def handle(event):
                return json.dumps(event), base64.b64encode(b"x")
            """
        )
        result = optimize_source(source, {"json", "base64"})
        assert len(result.deferred) == 2
        out = run_module(result.source, "handle", 1)
        assert out[0] == "1"

    def test_nested_function_usage_covered_by_outer_import(self):
        source = src(
            """
            import json

            def outer(event):
                def inner():
                    return json.dumps(event)
                return inner()
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        assert run_module(result.source, "outer", 7) == "7"

    def test_method_in_class_gets_import(self):
        source = src(
            """
            import json

            class Handler:
                def handle(self, event):
                    return json.dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        namespace: dict = {}
        exec(compile(result.source, "<t>", "exec"), namespace)
        assert namespace["Handler"]().handle(2) == "2"


class TestSafety:
    def test_module_level_use_skipped(self):
        source = src(
            """
            import json

            VERSION = json.dumps({})

            def handle(event):
                return json.dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert not result.changed
        assert any("module level" in s.reason for s in result.skipped)

    def test_reassigned_name_skipped(self):
        source = src(
            """
            import json

            def handle(event):
                global json
                json = None
            """
        )
        result = optimize_source(source, {"json"})
        assert not result.changed

    def test_star_import_skipped(self):
        source = src(
            """
            from json import *

            def handle(event):
                return dumps(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert not result.changed
        assert any("star" in s.reason for s in result.skipped)

    def test_decorator_usage_is_module_level(self):
        source = src(
            """
            import functools

            @functools.lru_cache
            def handle(event):
                return event
            """
        )
        result = optimize_source(source, {"functools"})
        assert not result.changed

    def test_default_argument_usage_is_module_level(self):
        source = src(
            """
            import json

            def handle(event, encoder=json.dumps):
                return encoder(event)
            """
        )
        result = optimize_source(source, {"json"})
        assert not result.changed

    def test_class_body_usage_is_module_level(self):
        source = src(
            """
            import json

            class Config:
                serializer = json.dumps
            """
        )
        result = optimize_source(source, {"json"})
        assert not result.changed

    def test_unrelated_imports_untouched(self):
        source = src(
            """
            import os
            import json

            def handle(event):
                return json.dumps(event), os.getcwd()
            """
        )
        result = optimize_source(source, {"json"})
        assert "# [slimstart] deferred: import json" in result.source
        lines = result.source.splitlines()
        assert "import os" in lines

    def test_partial_multi_alias_statement(self):
        source = src(
            """
            import os, json

            def handle(event):
                return json.dumps(event), os.sep
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        # os must survive as a module-level import.
        out = run_module(result.source, "handle", 3)
        assert out == ("3", "/")

    def test_dead_import_just_commented(self):
        source = src(
            """
            import json

            def handle(event):
                return event
            """
        )
        result = optimize_source(source, {"json"})
        assert result.changed
        assert result.deferred[0].inserted_into == ()
        assert run_module(result.source, "handle", 4) == 4


class TestRobustness:
    def test_unparseable_source_raises(self):
        with pytest.raises(OptimizationError):
            optimize_source("def broken(:\n", {"json"})

    def test_no_targets_noop(self):
        source = "import json\n"
        result = optimize_source(source, set())
        assert not result.changed
        assert result.source == source

    def test_output_parses(self):
        source = src(
            """
            import json
            import base64

            def a(x):
                return json.dumps(x)

            def b(x):
                return base64.b64encode(x)
            """
        )
        result = optimize_source(source, {"json", "base64"})
        import ast

        ast.parse(result.source)  # must not raise

    def test_idempotent_on_already_optimized(self):
        source = src(
            """
            import json

            def handle(event):
                return json.dumps(event)
            """
        )
        once = optimize_source(source, {"json"})
        twice = optimize_source(once.source, {"json"})
        # The global import is commented out; nothing left to defer.
        assert not twice.changed
