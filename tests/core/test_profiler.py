"""Tests for the sampling call-path profilers."""

import threading
import time

import pytest

from repro.common.errors import ProfilingError
from repro.core.profiler import SignalSampler, ThreadSampler, profile_callable


def busy_wait(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestThreadSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ProfilingError):
            ThreadSampler(interval_ms=0)

    def test_take_sample_captures_current_stack(self):
        sampler = ThreadSampler(target_thread_id=threading.get_ident())
        sample = sampler.take_sample()
        assert sample is not None
        functions = [frame.function for frame in sample.path]
        assert "test_take_sample_captures_current_stack" in functions

    def test_samples_accumulate_during_run(self):
        sampler = ThreadSampler(
            interval_ms=2.0, target_thread_id=threading.get_ident()
        )
        sampler.start()
        busy_wait(0.08)
        samples = sampler.stop()
        assert len(samples) >= 5

    def test_stop_without_start_rejected(self):
        with pytest.raises(ProfilingError):
            ThreadSampler().stop()

    def test_double_start_rejected(self):
        sampler = ThreadSampler(interval_ms=50.0)
        sampler.start()
        try:
            with pytest.raises(ProfilingError):
                sampler.start()
        finally:
            sampler.stop()

    def test_context_manager(self):
        with ThreadSampler(
            interval_ms=2.0, target_thread_id=threading.get_ident()
        ) as sampler:
            busy_wait(0.03)
        assert len(sampler.samples) >= 2

    def test_samples_attribute_busy_function(self):
        sampler = ThreadSampler(
            interval_ms=1.0, target_thread_id=threading.get_ident()
        )
        sampler.start()
        busy_wait(0.05)
        samples = sampler.stop()
        hits = sum(
            1
            for sample in samples
            for frame in sample.path
            if frame.function == "busy_wait"
        )
        assert hits >= len(samples) * 0.5

    def test_missing_thread_returns_none(self):
        sampler = ThreadSampler(target_thread_id=999_999_999)
        assert sampler.take_sample() is None


class TestSignalSampler:
    def test_collects_samples_on_main_thread(self):
        sampler = SignalSampler(interval_ms=2.0)
        sampler.start()
        busy_wait(0.05)
        samples = sampler.stop()
        assert len(samples) >= 3

    def test_stop_restores_handler(self):
        import signal

        previous = signal.getsignal(signal.SIGALRM)
        sampler = SignalSampler(interval_ms=5.0)
        sampler.start()
        sampler.stop()
        assert signal.getsignal(signal.SIGALRM) == previous

    def test_double_start_rejected(self):
        sampler = SignalSampler()
        sampler.start()
        try:
            with pytest.raises(ProfilingError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ProfilingError):
            SignalSampler().stop()


class TestProfileCallable:
    def test_returns_result_and_samples(self):
        result, samples = profile_callable(
            lambda: (busy_wait(0.03), "done")[1], interval_ms=2.0
        )
        assert result == "done"
        # The sampler watches the main thread while the callable runs there.
        assert len(samples) >= 0

    def test_min_duration_enforced(self):
        with pytest.raises(ProfilingError):
            profile_callable(lambda: None, min_duration_ms=50.0)
