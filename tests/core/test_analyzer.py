"""Tests for the profile analyzer (Eq. 4, classification, planning)."""

import pytest

from repro.core.analyzer import (
    ACTIVE,
    Analyzer,
    AnalyzerConfig,
    RARE,
    UNUSED,
    dynamic_categorization,
)
from repro.core.profiles import ImportProfile, ImportRecord, ProfileBundle
from repro.core.samples import Frame, LibraryAttributor, Sample, SampleSet


def _record(module, self_ms, parent=None, order=1):
    return ImportRecord(
        module=module, self_ms=self_ms, cumulative_ms=self_ms, parent=parent, order=order
    )


def _lib_frame(module_path: str, function: str = "f") -> Frame:
    return Frame(file=f"/ws/{module_path}.py", function=function, line=1)


def _handler_frame(function: str = "handle") -> Frame:
    return Frame(file="/ws/handler.py", function=function, line=1)


@pytest.fixture()
def attributor() -> LibraryAttributor:
    return LibraryAttributor(
        workspace_prefixes=("/ws",),
        library_names=frozenset({"libhot", "libcold", "librare"}),
    )


def make_bundle(samples, init_ratio=0.5, handler_imports=("libhot", "libcold", "librare")):
    profile = ImportProfile(
        [
            _record("libhot", 50.0, order=1),
            _record("libhot.used", 150.0, "libhot", 2),
            _record("libhot.dead", 100.0, "libhot", 3),
            _record("libcold", 300.0, order=4),
            _record("librare", 200.0, order=5),
        ]
    )
    return ProfileBundle(
        app="app",
        import_profile=profile,
        samples=SampleSet(samples),
        entry_counts={"handle": 100},
        handler_imports=handler_imports,
        mean_cold_e2e_ms=1000.0,
        mean_cold_init_ms=1000.0 * init_ratio,
        cold_starts=10,
    )


def hot_sample(weight=100.0):
    return Sample(
        path=(_handler_frame(), _lib_frame("libhot/used")), weight=weight
    )


def rare_sample(weight=1.0):
    return Sample(
        path=(_handler_frame("aux"), _lib_frame("librare/__init__")), weight=weight
    )


class TestConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(rare_utilization_threshold=1.5)

    def test_depth_bound(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(max_subtree_depth=0)


class TestUtilization:
    def test_library_utilization_eq4(self, attributor):
        bundle = make_bundle([hot_sample(90.0), rare_sample(10.0)])
        analyzer = Analyzer()
        utilization, denominator = analyzer.library_utilization(bundle, attributor)
        assert denominator == 100.0
        assert utilization["libhot"] == pytest.approx(0.9)
        assert utilization["librare"] == pytest.approx(0.1)

    def test_handler_only_samples_excluded_from_denominator(self, attributor):
        handler_only = Sample(path=(_handler_frame(),), weight=500.0)
        bundle = make_bundle([hot_sample(50.0), handler_only])
        utilization, denominator = Analyzer().library_utilization(
            bundle, attributor
        )
        assert denominator == 50.0
        assert utilization["libhot"] == 1.0

    def test_init_samples_excluded(self, attributor):
        init_sample = Sample(
            path=(_handler_frame(), _lib_frame("libcold/__init__", "<module>")),
            weight=400.0,
            kind="init",
        )
        bundle = make_bundle([hot_sample(), init_sample])
        utilization, _ = Analyzer().library_utilization(bundle, attributor)
        assert "libcold" not in utilization

    def test_escalation_counts_whole_path(self, attributor):
        nested = Sample(
            path=(
                _handler_frame(),
                _lib_frame("libhot/__init__", "orchestrate"),
                _lib_frame("librare/worker"),
            ),
            weight=10.0,
        )
        utilization, _ = Analyzer().library_utilization(
            make_bundle([nested]), attributor
        )
        assert utilization["libhot"] == 1.0
        assert utilization["librare"] == 1.0


class TestClassificationAndPlan:
    def test_unused_library_deferred_at_handler(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        row = report.row("libcold")
        assert row.classification == UNUSED
        assert "libcold" in report.plan.deferred_handler_imports

    def test_rare_library_deferred_at_handler(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(100.0), rare_sample(1.0)]), attributor
        )
        row = report.row("librare")
        assert row.classification == RARE
        assert "librare" in report.plan.deferred_handler_imports

    def test_active_library_not_handler_deferred(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        assert report.row("libhot").classification == ACTIVE
        assert "libhot" not in report.plan.deferred_handler_imports

    def test_dead_subtree_inside_active_library_flagged(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        flagged = {flag.module for flag in report.subtree_flags}
        assert "libhot.dead" in flagged
        assert "libhot.dead" in report.plan.deferred_library_edges
        assert "libhot.used" not in report.plan.deferred_library_edges

    def test_transitively_loaded_unused_library_gets_edge(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()], handler_imports=("libhot",)),
            attributor,
        )
        assert "libcold" in report.plan.deferred_library_edges
        assert "libcold" not in report.plan.deferred_handler_imports

    def test_init_ratio_gate(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample()], init_ratio=0.05), attributor
        )
        assert not report.profiled
        assert report.plan.is_empty

    def test_min_library_share_ignores_trivia(self, attributor):
        config = AnalyzerConfig(min_library_init_share=0.5)
        report = Analyzer(config).analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        # libcold is 300/800 = 37.5 % < 50 %: too small to bother with.
        assert report.plan.is_empty or "libcold" not in report.plan.all_deferred

    def test_rows_sorted_by_init_cost(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        init_costs = [row.init_ms for row in report.rows]
        assert init_costs == sorted(init_costs, reverse=True)

    def test_call_paths_for_flagged_modules(self, attributor):
        report = Analyzer().analyze(
            make_bundle([hot_sample(), rare_sample()]), attributor
        )
        assert "librare" in report.call_paths
        assert any("handler.py" in path for path in report.call_paths["librare"])

    def test_subtree_depth_limit(self, attributor):
        deep_profile_bundle = make_bundle([hot_sample(), rare_sample()])
        deep_profile_bundle.import_profile.add(
            _record("libhot.used.sub", 120.0, "libhot.used", 9)
        )
        config = AnalyzerConfig(max_subtree_depth=1)
        report = Analyzer(config).analyze(deep_profile_bundle, attributor)
        assert "libhot.used.sub" not in report.plan.deferred_library_edges


class TestDynamicCategorization:
    def test_buckets_sum_to_library_share(self, attributor):
        bundle = make_bundle([hot_sample(100.0), rare_sample(1.0)])
        buckets = dynamic_categorization(bundle, attributor)
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_bucket_assignment(self, attributor):
        bundle = make_bundle([hot_sample(100.0), rare_sample(1.0)])
        buckets = dynamic_categorization(bundle, attributor)
        # libcold (300) + libhot.dead (100) + libhot root (50, untouched
        # directly... root touched? root frame not in samples) are no-sample.
        assert buckets["no_sample"] > buckets["rare"] > 0.0
        assert buckets["hot"] > 0.0
