"""Tests for repro.core (package file keeps duplicate basenames importable)."""
