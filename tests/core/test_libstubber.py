"""Tests for library-level lazy stubs (PEP 562)."""

import subprocess
import sys
import textwrap

import pytest

from repro.common.errors import OptimizationError
from repro.core.libstubber import apply_library_deferrals
from repro.synthlib.generator import materialize_ecosystem
from repro.synthlib.spec import Ecosystem

from tests.conftest import make_dependent_library, make_small_library


@pytest.fixture()
def workspace(tmp_path):
    eco = Ecosystem([make_small_library(), make_dependent_library()])
    materialize_ecosystem(eco, tmp_path, scale=0.01)
    return tmp_path


def run_snippet(workspace, code: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        cwd=workspace,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestEdgeCommenting:
    def test_edge_commented_in_parent(self, workspace):
        result = apply_library_deferrals(workspace, {"libx.extra"})
        assert ("libx/__init__.py", "import libx.extra") in result.commented_edges
        source = (workspace / "libx" / "__init__.py").read_text()
        assert "# [slimstart] lazy edge: import libx.extra" in source

    def test_stub_added_to_parent_package(self, workspace):
        result = apply_library_deferrals(workspace, {"libx.extra"})
        assert result.stubbed_packages == {"libx": ["extra"]}
        source = (workspace / "libx" / "__init__.py").read_text()
        assert "_SLIMSTART_LAZY" in source
        assert "def __getattr__(name):" in source

    def test_deferred_module_not_loaded_at_import(self, workspace):
        apply_library_deferrals(workspace, {"libx.extra"})
        out = run_snippet(
            workspace,
            """
            import libx
            import _slimstart_runtime as rt
            mods = rt.loaded_modules()
            print('libx.extra' in mods, 'libx.extra.heavy' in mods, len(mods))
            """,
        )
        assert out == "False False 3"

    def test_attribute_access_triggers_lazy_load(self, workspace):
        apply_library_deferrals(workspace, {"libx.extra"})
        out = run_snippet(
            workspace,
            """
            import libx
            import _slimstart_runtime as rt
            before = len(rt.loaded_modules())
            result = libx.use_extra()
            after = len(rt.loaded_modules())
            print(before, after, result[0])
            """,
        )
        assert out == "3 5 libx"

    def test_unknown_attribute_still_raises(self, workspace):
        apply_library_deferrals(workspace, {"libx.extra"})
        out = run_snippet(
            workspace,
            """
            import libx
            try:
                libx.no_such_thing
                print("no error")
            except AttributeError:
                print("attribute error")
            """,
        )
        assert out == "attribute error"

    def test_cross_library_root_edge(self, workspace):
        result = apply_library_deferrals(workspace, {"libx"})
        assert ("liby/__init__.py", "import libx") in result.commented_edges
        out = run_snippet(
            workspace,
            """
            import liby
            import _slimstart_runtime as rt
            print('libx' in rt.loaded_modules())
            print(liby.go()[0])
            """,
        )
        assert out.splitlines() == ["False", "liby"]

    def test_idempotent_reapplication(self, workspace):
        apply_library_deferrals(workspace, {"libx.extra"})
        result = apply_library_deferrals(workspace, {"libx.extra", "libx.core"})
        assert result.stubbed_packages["libx"] == ["core", "extra"]
        out = run_snippet(
            workspace,
            """
            import libx
            print(libx.use_core()[0], libx.use_extra()[0])
            """,
        )
        assert out == "libx libx"

    def test_handler_file_left_alone(self, workspace):
        (workspace / "handler.py").write_text("import libx.extra\n")
        apply_library_deferrals(workspace, {"libx.extra"})
        assert (workspace / "handler.py").read_text() == "import libx.extra\n"


class TestValidation:
    def test_missing_workspace(self, tmp_path):
        with pytest.raises(OptimizationError):
            apply_library_deferrals(tmp_path / "ghost", {"a.b"})

    def test_empty_targets_noop(self, workspace):
        result = apply_library_deferrals(workspace, set())
        assert not result.changed

    def test_missing_parent_package_rejected(self, workspace):
        with pytest.raises(OptimizationError):
            apply_library_deferrals(workspace, {"nolib.sub"})
