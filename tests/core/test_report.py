"""Tests for report rendering."""

from repro.core.analyzer import InefficiencyReport, LibraryRow, SubtreeFlag
from repro.core.report import render_comparison_row, render_report
from repro.plan import DeferralPlan


def make_report(profiled=True, with_plan=True) -> InefficiencyReport:
    plan = DeferralPlan(
        app="app",
        deferred_handler_imports=frozenset({"libcold"}) if with_plan else frozenset(),
        deferred_library_edges=frozenset({"libhot.dead"}) if with_plan else frozenset(),
    )
    report = InefficiencyReport(
        app="app",
        profiled=profiled,
        init_ratio=0.72,
        total_init_ms=800.0,
        total_runtime_weight=100.0,
        rows=[
            LibraryRow("libhot", 0.95, 500.0, 0.625, "active", "library"),
            LibraryRow("libcold", 0.0, 300.0, 0.375, "unused", "handler"),
        ],
        subtree_flags=[SubtreeFlag("libhot.dead", 100.0, 0.125, 0.0)],
        plan=plan,
        call_paths={"libcold": ["handler.py:handle -> __init__.py:<module>"]},
    )
    return report


def test_report_contains_table_rows():
    text = render_report(make_report())
    assert "libhot" in text
    assert "libcold" in text
    assert "95.00%" in text
    assert "62.50%" in text


def test_report_shows_subtree_flags():
    text = render_report(make_report())
    assert "libhot.dead" in text
    assert "deferred subtree" in text


def test_report_shows_plan_and_call_paths():
    text = render_report(make_report())
    assert "handler-level lazy import: libcold" in text
    assert "library-level lazy stub:   libhot.dead" in text
    assert "handler.py:handle" in text


def test_unprofiled_report_short_circuits():
    text = render_report(make_report(profiled=False))
    assert "not profiled" in text
    assert "No optimization performed." in text


def test_empty_plan_message():
    report = make_report(with_plan=False)
    report.call_paths = {}
    text = render_report(report)
    assert "plan is empty" in text


def test_comparison_row_ratios():
    row = render_comparison_row("app11", 203.54, 134.72, 4331.43, 2155.61)
    assert "1.51x" in row
    assert "2.01x" in row
