"""Tests for profile collection and batch transfer."""

import pytest

from repro.common.errors import ProfilingError
from repro.core.collector import (
    ProfileCollector,
    bundle_key,
    fetch_bundles,
    fetch_merged,
    merge_all,
)
from repro.core.profiles import ImportProfile, ImportRecord, ProfileBundle
from repro.core.samples import Frame, Sample, SampleSet
from repro.faas.storage import CloudStorage


def make_bundle(app="app", weight=1.0) -> ProfileBundle:
    return ProfileBundle(
        app=app,
        import_profile=ImportProfile(
            [ImportRecord("libx", 10.0, 10.0, None, 1)]
        ),
        samples=SampleSet(
            [Sample(path=(Frame("/ws/handler.py", "h", 1),), weight=weight)]
        ),
        entry_counts={"h": 1},
        handler_imports=("libx",),
        mean_cold_e2e_ms=100.0,
        mean_cold_init_ms=50.0,
        cold_starts=1,
    )


class TestCollector:
    def test_batch_upload_reduces_put_count(self):
        storage = CloudStorage()
        with ProfileCollector(storage, "app", batch_size=4, asynchronous=False) as c:
            for _ in range(8):
                c.record(make_bundle())
        # 8 bundles, batch size 4 -> exactly 2 storage writes.
        assert storage.put_count == 2

    def test_partial_batch_flushed_on_close(self):
        storage = CloudStorage()
        with ProfileCollector(storage, "app", batch_size=10, asynchronous=False) as c:
            for _ in range(3):
                c.record(make_bundle())
        assert storage.put_count == 1

    def test_asynchronous_upload_completes_on_close(self):
        storage = CloudStorage()
        collector = ProfileCollector(storage, "app", batch_size=2, asynchronous=True)
        for _ in range(6):
            collector.record(make_bundle())
        collector.close()
        assert storage.put_count == 3

    def test_wrong_app_rejected(self):
        collector = ProfileCollector(CloudStorage(), "app", asynchronous=False)
        with pytest.raises(ProfilingError):
            collector.record(make_bundle(app="other"))
        collector.close()

    def test_record_after_close_rejected(self):
        collector = ProfileCollector(CloudStorage(), "app", asynchronous=False)
        collector.close()
        with pytest.raises(ProfilingError):
            collector.record(make_bundle())

    def test_bad_batch_size(self):
        with pytest.raises(ProfilingError):
            ProfileCollector(CloudStorage(), "app", batch_size=0)

    def test_keys_are_ordered(self):
        assert bundle_key("app", 3) == "profiles/app/000003"


class TestFetch:
    def test_fetch_bundles_roundtrip(self):
        storage = CloudStorage()
        with ProfileCollector(storage, "app", batch_size=1, asynchronous=False) as c:
            c.record(make_bundle(weight=1.0))
            c.record(make_bundle(weight=2.0))
        bundles = fetch_bundles(storage, "app")
        assert len(bundles) == 2
        assert bundles[0].app == "app"

    def test_fetch_merged(self):
        storage = CloudStorage()
        with ProfileCollector(storage, "app", batch_size=1, asynchronous=False) as c:
            for _ in range(3):
                c.record(make_bundle())
        merged = fetch_merged(storage, "app")
        assert merged.cold_starts == 3
        assert merged.entry_counts == {"h": 3}

    def test_fetch_merged_empty_rejected(self):
        with pytest.raises(ProfilingError):
            fetch_merged(CloudStorage(), "app")

    def test_apps_are_isolated(self):
        storage = CloudStorage()
        with ProfileCollector(storage, "a", batch_size=1, asynchronous=False) as c:
            c.record(make_bundle(app="a"))
        with ProfileCollector(storage, "b", batch_size=1, asynchronous=False) as c:
            c.record(make_bundle(app="b"))
        assert len(fetch_bundles(storage, "a")) == 1
        assert fetch_merged(storage, "b").app == "b"


def test_merge_all():
    merged = merge_all([make_bundle(), make_bundle(), make_bundle()])
    assert merged.cold_starts == 3


def test_merge_all_empty_rejected():
    with pytest.raises(ProfilingError):
        merge_all([])
