"""Tests for deterministic profile synthesis from simulator traces."""

import pytest

from repro.common.errors import ProfilingError
from repro.core.samples import INIT, RUNTIME
from repro.core.simprofiler import (
    SIM_PREFIX,
    bundle_from_simulation,
    frame_for_module,
    frame_for_ref,
    import_profile_from_traces,
    samples_from_traces,
)
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform


@pytest.fixture()
def sim_run(small_ecosystem):
    config = SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",), handler_self_ms=2.0),
        ),
    )
    platform = SimPlatform()
    platform.deploy(config)
    platform.invoke("app", "main")
    platform.invoke("app", "main")
    return config, platform


class TestFrames:
    def test_frame_for_ref(self):
        frame = frame_for_ref("libx.core:run")
        assert frame.file == f"{SIM_PREFIX}/libx/core.py"
        assert frame.function == "run"

    def test_frame_for_root_ref(self):
        assert frame_for_ref("libx:ping").file == f"{SIM_PREFIX}/libx.py"

    def test_frame_for_module(self):
        frame = frame_for_module("libx.extra.heavy")
        assert frame.function == "<module>"

    def test_frames_cached(self):
        assert frame_for_ref("libx.core:run") is frame_for_ref("libx.core:run")


class TestSamples:
    def test_interval_validated(self, sim_run):
        _, platform = sim_run
        with pytest.raises(ProfilingError):
            samples_from_traces(platform.traces("app"), interval_ms=0)

    def test_runtime_weight_equals_time_over_interval(self, sim_run):
        _, platform = sim_run
        samples = samples_from_traces(platform.traces("app"), interval_ms=5.0)
        # Two invocations x library self-time (use_core 1 + run 1 + work 2).
        assert samples.runtime_weight() == pytest.approx(2 * 4.0 / 5.0)

    def test_init_weight_equals_cold_init_over_interval(self, sim_run):
        _, platform = sim_run
        samples = samples_from_traces(platform.traces("app"), interval_ms=5.0)
        # One cold start loading the whole 100 ms library.
        assert samples.init_weight() == pytest.approx(100.0 / 5.0)

    def test_aggregation_reduces_sample_count(self, sim_run):
        _, platform = sim_run
        samples = samples_from_traces(platform.traces("app"))
        # 3 distinct call paths + 5 init modules, despite 2 invocations.
        assert len(samples) == 8

    def test_kinds_assigned(self, sim_run):
        _, platform = sim_run
        samples = samples_from_traces(platform.traces("app"))
        kinds = {sample.kind for sample in samples}
        assert kinds == {RUNTIME, INIT}


class TestImportProfile:
    def test_requires_cold_traces(self):
        with pytest.raises(ProfilingError):
            import_profile_from_traces([])

    def test_per_module_averaging(self, sim_run):
        _, platform = sim_run
        profile = import_profile_from_traces(platform.traces("app"))
        assert profile.record("libx.extra").self_ms == pytest.approx(40.0)
        assert profile.total_init_ms == pytest.approx(100.0)

    def test_parent_derived_from_dotted_path(self, sim_run):
        _, platform = sim_run
        profile = import_profile_from_traces(platform.traces("app"))
        assert profile.record("libx.core.fast").parent == "libx.core"


class TestBundle:
    def test_bundle_assembly(self, sim_run):
        config, platform = sim_run
        bundle = bundle_from_simulation(
            config, platform.traces("app"), platform.records("app")
        )
        assert bundle.app == "app"
        assert bundle.cold_starts == 1
        assert bundle.entry_counts == {"main": 2}
        assert bundle.handler_imports == ("libx",)
        assert 0.0 < bundle.init_ratio < 1.0

    def test_bundle_requires_cold_records(self, sim_run):
        config, platform = sim_run
        warm_only = [r for r in platform.records("app") if not r.cold]
        with pytest.raises(ProfilingError):
            bundle_from_simulation(config, platform.traces("app"), warm_only)
