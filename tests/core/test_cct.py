"""Tests for the calling context tree."""

import pytest

from repro.core.cct import CallingContextTree
from repro.core.samples import Frame, Sample


def frame(function: str, file: str = "/ws/libx/m.py") -> Frame:
    return Frame(file=file, function=function, line=1)


def sample(*functions: str, weight: float = 1.0, kind: str = "runtime") -> Sample:
    return Sample(
        path=tuple(frame(fn) for fn in functions), weight=weight, kind=kind
    )


class TestConstruction:
    def test_single_sample_path(self):
        tree = CallingContextTree.from_samples([sample("a", "b", "c")])
        assert tree.node_count() == 3

    def test_shared_prefix_merges(self):
        tree = CallingContextTree.from_samples(
            [sample("a", "b"), sample("a", "c")]
        )
        assert tree.node_count() == 3  # a, a->b, a->c

    def test_same_function_different_context_distinct(self):
        # Fig. 5's Lib-6: one function reached via two call paths must
        # occupy two nodes.
        tree = CallingContextTree.from_samples(
            [sample("a", "util"), sample("b", "util")]
        )
        assert tree.node_count() == 4

    def test_weight_lands_on_leaf(self):
        tree = CallingContextTree.from_samples([sample("a", "b", weight=2.5)])
        paths = dict(tree.walk())
        leaf = paths[(frame("a"), frame("b"))]
        assert leaf.self_runtime == 2.5
        root_child = paths[(frame("a"),)]
        assert root_child.self_runtime == 0.0

    def test_init_weight_separated(self):
        tree = CallingContextTree.from_samples(
            [sample("a", kind="init", weight=3.0), sample("a", weight=1.0)]
        )
        assert tree.total_init() == 3.0
        assert tree.total_runtime() == 1.0


class TestEscalation:
    def test_total_includes_subtree(self):
        tree = CallingContextTree.from_samples(
            [sample("orchestrator", "worker", weight=99.0),
             sample("orchestrator", weight=1.0)]
        )
        nodes = dict(tree.walk())
        orchestrator = nodes[(frame("orchestrator"),)]
        # The orchestrator has 1 sample of its own but escalation credits
        # it with the worker's 99 (the Fig. 5 Lib-1 attribution fix).
        assert orchestrator.self_runtime == 1.0
        assert orchestrator.total_runtime() == 100.0

    def test_escalated_weights_dedupe_within_path(self):
        # A path that stays inside one library counts once for it.
        tree = CallingContextTree.from_samples(
            [sample("a", "b", "c", weight=5.0)]
        )
        weights = tree.escalated_weights(lambda f: "libx")
        assert weights == {"libx": 5.0}

    def test_escalated_weights_credit_all_groups_on_path(self):
        samples = [
            Sample(
                path=(
                    Frame("/ws/handler.py", "h", 1),
                    Frame("/ws/libx/a.py", "f", 1),
                    Frame("/ws/liby/b.py", "g", 1),
                ),
                weight=4.0,
            )
        ]
        tree = CallingContextTree.from_samples(samples)

        def key(f: Frame):
            if "/libx/" in f.file:
                return "libx"
            if "/liby/" in f.file:
                return "liby"
            return None

        weights = tree.escalated_weights(key)
        assert weights == {"libx": 4.0, "liby": 4.0}

    def test_escalation_conservation(self):
        samples = [sample("a", "b"), sample("a", "c", weight=2.0), sample("d")]
        tree = CallingContextTree.from_samples(samples)
        total = sum(s.weight for s in samples)
        assert tree.total_runtime() == pytest.approx(total)


class TestMergeAndQueries:
    def test_merge_adds_weights(self):
        a = CallingContextTree.from_samples([sample("x", weight=1.0)])
        b = CallingContextTree.from_samples([sample("x", weight=2.0)])
        a.merge(b)
        nodes = dict(a.walk())
        assert nodes[(frame("x"),)].self_runtime == 3.0

    def test_merge_disjoint_paths(self):
        a = CallingContextTree.from_samples([sample("x")])
        b = CallingContextTree.from_samples([sample("y")])
        a.merge(b)
        assert a.node_count() == 2

    def test_paths_to_heaviest_first(self):
        tree = CallingContextTree.from_samples(
            [sample("a", "t", weight=1.0), sample("b", "t", weight=9.0)]
        )
        matches = tree.paths_to(lambda f: f.function == "t")
        assert matches[0][1] == 9.0
        assert matches[0][0][0].function == "b"

    def test_paths_to_limit(self):
        samples = [sample(f"caller{i}", "t") for i in range(10)]
        tree = CallingContextTree.from_samples(samples)
        assert len(tree.paths_to(lambda f: f.function == "t", limit=3)) == 3

    def test_render_contains_functions(self):
        tree = CallingContextTree.from_samples([sample("alpha", "beta")])
        text = tree.render()
        assert "alpha" in text and "beta" in text

    def test_serialization_roundtrip(self):
        tree = CallingContextTree.from_samples(
            [sample("a", "b", weight=2.0), sample("a", kind="init")]
        )
        restored = CallingContextTree.from_dict(tree.to_dict())
        assert restored.total_runtime() == tree.total_runtime()
        assert restored.total_init() == tree.total_init()
        assert restored.node_count() == tree.node_count()
