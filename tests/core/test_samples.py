"""Tests for sample records, classification, and attribution."""

import pytest

from repro.core.samples import (
    INIT,
    RUNTIME,
    Frame,
    LibraryAttributor,
    Sample,
    SampleSet,
    classify_stack,
    is_import_machinery,
)


def frame(file="/ws/libx/core.py", function="run", line=3) -> Frame:
    return Frame(file=file, function=function, line=line)


class TestSampleValidation:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Sample(path=())

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            Sample(path=(frame(),), weight=0.0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Sample(path=(frame(),), kind="mystery")


class TestClassifyStack:
    def test_plain_runtime_stack(self):
        path = (frame(function="handler"), frame(function="run"))
        cleaned, kind = classify_stack(path)
        assert cleaned == path
        assert kind == RUNTIME

    def test_import_machinery_stripped_and_marks_init(self):
        path = (
            frame(function="handler"),
            frame(file="<frozen importlib._bootstrap>", function="_find_and_load"),
            frame(function="<module>"),
        )
        cleaned, kind = classify_stack(path)
        assert kind == INIT
        assert all(not is_import_machinery(f) for f in cleaned)

    def test_nested_module_toplevel_without_machinery_is_runtime(self):
        # Process runners (runpy, pytest __main__) put <module> frames at
        # the bottom of every stack; without importlib machinery frames
        # this is ordinary execution, not library initialization.
        path = (frame(function="<module>"), frame(function="<module>"))
        _, kind = classify_stack(path)
        assert kind == RUNTIME

    def test_root_module_frame_alone_is_runtime(self):
        path = (frame(function="<module>"), frame(function="work"))
        _, kind = classify_stack(path)
        assert kind == RUNTIME

    def test_fully_machinery_stack_gets_placeholder(self):
        path = (
            frame(file="<frozen importlib._bootstrap>", function="_load"),
        )
        cleaned, kind = classify_stack(path)
        assert kind == INIT
        assert len(cleaned) == 1


class TestSampleSet:
    def test_weights_by_kind(self):
        samples = SampleSet(
            [
                Sample(path=(frame(),), weight=2.0, kind=RUNTIME),
                Sample(path=(frame(),), weight=3.0, kind=INIT),
            ]
        )
        assert samples.total_weight == 5.0
        assert samples.runtime_weight() == 2.0
        assert samples.init_weight() == 3.0

    def test_of_kind_filters(self):
        samples = SampleSet(
            [
                Sample(path=(frame(),), kind=RUNTIME),
                Sample(path=(frame(),), kind=INIT),
            ]
        )
        assert len(samples.of_kind(INIT)) == 1

    def test_merge(self):
        a = SampleSet([Sample(path=(frame(),))])
        b = SampleSet([Sample(path=(frame(),))])
        assert len(a.merged_with(b)) == 2

    def test_serialization_roundtrip(self):
        samples = SampleSet(
            [Sample(path=(frame(), frame(function="x")), weight=1.5, kind=INIT)]
        )
        restored = SampleSet.from_dict(samples.to_dict())
        assert list(restored)[0] == list(samples)[0]


class TestAttribution:
    @pytest.fixture()
    def attributor(self) -> LibraryAttributor:
        return LibraryAttributor(
            workspace_prefixes=("/ws", "<sim>"),
            library_names=frozenset({"libx", "liby"}),
        )

    def test_module_of_plain_module(self, attributor):
        assert attributor.module_of(frame(file="/ws/libx/core/fast.py")) == (
            "libx.core.fast"
        )

    def test_module_of_package_init(self, attributor):
        assert attributor.module_of(frame(file="/ws/libx/core/__init__.py")) == (
            "libx.core"
        )

    def test_module_of_library_root(self, attributor):
        assert attributor.module_of(frame(file="/ws/libx/__init__.py")) == "libx"

    def test_handler_is_not_a_library(self, attributor):
        assert attributor.module_of(frame(file="/ws/handler.py")) is None

    def test_outside_workspace(self, attributor):
        assert attributor.module_of(frame(file="/usr/lib/python/json.py")) is None

    def test_sim_prefix(self, attributor):
        assert attributor.module_of(frame(file="<sim>/liby/util.py")) == "liby.util"

    def test_library_of(self, attributor):
        assert attributor.library_of(frame(file="/ws/libx/extra/heavy.py")) == "libx"

    def test_libraries_in_path_deduplicated(self, attributor):
        path = (
            frame(file="/ws/handler.py"),
            frame(file="/ws/libx/__init__.py"),
            frame(file="/ws/libx/core.py"),
            frame(file="/ws/liby/__init__.py"),
        )
        assert attributor.libraries_in(path) == {"libx", "liby"}

    def test_touches_workspace(self, attributor):
        inside = (frame(file="/ws/handler.py"),)
        outside = (frame(file="/opt/app.py"),)
        assert attributor.touches_workspace(inside)
        assert not attributor.touches_workspace(outside)

    def test_cache_consistency(self, attributor):
        target = frame(file="/ws/libx/core.py")
        assert attributor.module_of(target) == attributor.module_of(target)
