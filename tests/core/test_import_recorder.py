"""Tests for the meta-path import time recorder (real imports)."""

import importlib
import sys

import pytest

from repro.common.errors import ProfilingError
from repro.core.import_recorder import ImportTimeRecorder, record_import
from repro.faas.container import ModuleSandbox


@pytest.fixture()
def mounted(session_workspace):
    ModuleSandbox.mount(session_workspace)
    ModuleSandbox.purge()
    yield session_workspace
    ModuleSandbox.unmount(session_workspace)


class TestRecorder:
    def test_records_monitored_modules(self, mounted):
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("libx")
        profile = recorder.profile()
        assert len(profile) == 5
        assert "libx.core.fast" in profile

    def test_parent_relationship(self, mounted):
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("libx")
        profile = recorder.profile()
        assert profile.record("libx.core").parent == "libx"
        assert profile.record("libx.core.fast").parent == "libx.core"
        assert profile.record("libx").parent is None

    def test_self_and_cumulative_times(self, mounted):
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("libx")
        profile = recorder.profile()
        root = profile.record("libx")
        core = profile.record("libx.core")
        fast = profile.record("libx.core.fast")
        assert root.cumulative_ms >= core.cumulative_ms >= fast.cumulative_ms
        assert core.cumulative_ms >= core.self_ms
        # Scaled burn: libx.core burns 20 ms * 0.01 = 0.2 ms at least.
        assert core.self_ms > 0.0

    def test_unmonitored_modules_ignored(self, mounted):
        sys.modules.pop("liby", None)
        sys.modules.pop("liby.util", None)
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("liby")  # imports libx transitively
        profile = recorder.profile()
        assert "liby" not in profile
        assert "libx" in profile

    def test_cross_library_parent(self, mounted):
        with ImportTimeRecorder(["libx", "liby"]) as recorder:
            importlib.import_module("liby")
        profile = recorder.profile()
        assert profile.record("libx").parent == "liby"

    def test_already_imported_modules_not_recorded(self, mounted):
        importlib.import_module("libx")
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("libx")  # cached in sys.modules
        assert len(recorder.profile()) == 0

    def test_double_install_rejected(self):
        recorder = ImportTimeRecorder(["libx"]).install()
        try:
            with pytest.raises(ProfilingError):
                recorder.install()
        finally:
            recorder.uninstall()

    def test_uninstall_removes_finder(self, mounted):
        recorder = ImportTimeRecorder(["libx"]).install()
        recorder.uninstall()
        before = len(recorder.profile())
        importlib.import_module("libx")
        assert len(recorder.profile()) == before

    def test_needs_prefixes(self):
        with pytest.raises(ProfilingError):
            ImportTimeRecorder([])

    def test_reset(self, mounted):
        with ImportTimeRecorder(["libx"]) as recorder:
            importlib.import_module("libx")
            recorder.reset()
        assert len(recorder.profile()) == 0

    def test_load_order_monotonic(self, mounted):
        with ImportTimeRecorder(["libx", "liby"]) as recorder:
            importlib.import_module("liby")
        profile = recorder.profile()
        orders = [profile.record(m).order for m in profile.modules()]
        assert sorted(orders) == list(range(1, len(orders) + 1))


class TestRecordImport:
    def test_convenience_roundtrip(self, mounted):
        module, profile = record_import("libx", ["libx"])
        assert module.__name__ == "libx"
        assert profile.total_init_ms > 0

    def test_rejects_already_imported(self, mounted):
        importlib.import_module("libx")
        with pytest.raises(ProfilingError):
            record_import("libx", ["libx"])
