"""Tests for import profiles and bundles."""

import pytest

from repro.common.errors import ProfilingError
from repro.core.profiles import ImportProfile, ImportRecord, ProfileBundle
from repro.core.samples import Frame, Sample, SampleSet


def record(module: str, self_ms: float, parent=None, order=1) -> ImportRecord:
    return ImportRecord(
        module=module,
        self_ms=self_ms,
        cumulative_ms=self_ms,
        parent=parent,
        order=order,
    )


@pytest.fixture()
def profile() -> ImportProfile:
    return ImportProfile(
        [
            record("libx", 10.0),
            record("libx.core", 20.0, parent="libx", order=2),
            record("libx.core.fast", 5.0, parent="libx.core", order=3),
            record("libx.extra", 40.0, parent="libx", order=4),
            record("liby", 8.0, order=5),
        ]
    )


class TestImportProfile:
    def test_duplicate_rejected(self):
        profile = ImportProfile([record("m", 1.0)])
        with pytest.raises(ProfilingError):
            profile.add(record("m", 2.0))

    def test_negative_time_rejected(self):
        with pytest.raises(ProfilingError):
            record("m", -1.0)

    def test_total_init_eq1(self, profile):
        assert profile.total_init_ms == 83.0

    def test_library_init_eq2(self, profile):
        assert profile.library_init_ms("libx") == 75.0
        assert profile.library_init_ms("liby") == 8.0

    def test_subtree_init_eq3(self, profile):
        assert profile.subtree_init_ms("libx.core") == 25.0

    def test_subtree_prefix_no_false_match(self):
        profile = ImportProfile([record("libx.core", 5.0), record("libx.core2", 7.0)])
        assert profile.subtree_init_ms("libx.core") == 5.0

    def test_children_of(self, profile):
        assert profile.children_of("libx") == ["libx.core", "libx.extra"]
        assert profile.children_of("libx.core") == ["libx.core.fast"]

    def test_children_of_skips_grandchildren(self):
        profile = ImportProfile([record("a", 1.0), record("a.b.c", 1.0)])
        assert profile.children_of("a") == ["a.b"]

    def test_library_names(self, profile):
        assert profile.library_names() == ["libx", "liby"]

    def test_scaled(self, profile):
        scaled = profile.scaled(2.0)
        assert scaled.total_init_ms == 166.0

    def test_average(self):
        one = ImportProfile([record("m", 10.0)])
        two = ImportProfile([record("m", 30.0), record("n", 4.0)])
        merged = ImportProfile.average([one, two])
        assert merged.record("m").self_ms == 20.0
        assert merged.record("n").self_ms == 4.0  # averaged over loads only

    def test_average_empty_rejected(self):
        with pytest.raises(ProfilingError):
            ImportProfile.average([])

    def test_serialization_roundtrip(self, profile):
        restored = ImportProfile.from_dict(profile.to_dict())
        assert restored.total_init_ms == profile.total_init_ms
        assert restored.record("libx.core").parent == "libx"


class TestProfileBundle:
    def _bundle(self, app="app", cold_e2e=100.0, cold_init=80.0, colds=2):
        samples = SampleSet(
            [Sample(path=(Frame("/ws/handler.py", "h", 1),), weight=1.0)]
        )
        return ProfileBundle(
            app=app,
            import_profile=ImportProfile([record("libx", 10.0)]),
            samples=samples,
            entry_counts={"h": 5},
            handler_imports=("libx",),
            mean_cold_e2e_ms=cold_e2e,
            mean_cold_init_ms=cold_init,
            cold_starts=colds,
        )

    def test_init_ratio(self):
        assert self._bundle().init_ratio == pytest.approx(0.8)

    def test_init_ratio_zero_e2e(self):
        assert self._bundle(cold_e2e=0.0).init_ratio == 0.0

    def test_merge_different_apps_rejected(self):
        with pytest.raises(ProfilingError):
            self._bundle("a").merged_with(self._bundle("b"))

    def test_merge_accumulates(self):
        merged = self._bundle().merged_with(self._bundle())
        assert merged.cold_starts == 4
        assert merged.entry_counts == {"h": 10}
        assert len(merged.samples) == 2

    def test_merge_weighted_means(self):
        a = self._bundle(cold_e2e=100.0, cold_init=80.0, colds=1)
        b = self._bundle(cold_e2e=200.0, cold_init=160.0, colds=3)
        merged = a.merged_with(b)
        assert merged.mean_cold_e2e_ms == pytest.approx(175.0)
        assert merged.mean_cold_init_ms == pytest.approx(140.0)

    def test_serialization_roundtrip(self):
        bundle = self._bundle()
        restored = ProfileBundle.from_dict(bundle.to_dict())
        assert restored.app == bundle.app
        assert restored.entry_counts == bundle.entry_counts
        assert restored.handler_imports == bundle.handler_imports
        assert restored.init_ratio == bundle.init_ratio
