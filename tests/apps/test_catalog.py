"""Tests for the 22-application catalog (Table II population)."""

import pytest

from repro.apps.catalog import (
    APP_DEFINITIONS,
    FAASLIGHT_STUDY_KEYS,
    OPTIMIZABLE_KEYS,
    app_by_key,
    benchmark_apps,
)
from repro.apps.model import instantiate


@pytest.fixture(scope="module")
def suite():
    return benchmark_apps()


class TestCatalogShape:
    def test_twenty_two_applications(self):
        assert len(APP_DEFINITIONS) == 22

    def test_unique_keys_and_names(self):
        keys = [d.key for d in APP_DEFINITIONS]
        names = [d.name for d in APP_DEFINITIONS]
        assert len(set(keys)) == 22
        assert len(set(names)) == 22

    def test_seventeen_optimizable(self):
        assert len(OPTIMIZABLE_KEYS) == 17

    def test_faaslight_study_apps_present(self):
        assert set(FAASLIGHT_STUDY_KEYS) <= set(OPTIMIZABLE_KEYS)
        assert len(FAASLIGHT_STUDY_KEYS) == 5

    def test_suites_covered(self):
        suites = {d.suite for d in APP_DEFINITIONS}
        assert suites == {"RainbowCake", "FaaSLight", "FaaSWorkbench", "RealWorld"}

    def test_four_real_world_optimizable(self):
        real = [
            d
            for d in APP_DEFINITIONS
            if d.suite == "RealWorld" and d.paper is not None
        ]
        assert len(real) == 4

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            app_by_key("NOPE")


class TestTable2ProgramInformation:
    @pytest.mark.parametrize(
        "key",
        [d.key for d in APP_DEFINITIONS if d.paper is not None],
    )
    def test_library_and_module_counts_match_paper(self, key, suite):
        app = next(a for a in suite if a.key == key)
        paper = app.definition.paper
        assert app.library_count == paper.lib_count
        assert app.module_count == paper.module_count

    @pytest.mark.parametrize(
        "key",
        [d.key for d in APP_DEFINITIONS if d.paper is not None],
    )
    def test_expected_init_speedup_within_band(self, key, suite):
        app = next(a for a in suite if a.key == key)
        paper = app.definition.paper
        assert app.expected_init_speedup == pytest.approx(
            paper.init_speedup, rel=0.12
        )

    def test_all_apps_instantiate_and_validate(self, suite):
        for app in suite:
            app.ecosystem.validate()
            assert app.entries
            assert app.mix.entries
