"""Tests for repro.apps (package file keeps duplicate basenames importable)."""
