"""Tests for handler source generation."""

import ast

from repro.apps.codegen import generate_handler
from repro.faas.sim import EntryBehavior


def test_generated_handler_parses():
    source = generate_handler(
        "myapp",
        ("sligraph",),
        (EntryBehavior("handle", calls=("sligraph.core:run",)),),
    )
    ast.parse(source)


def test_global_imports_at_module_level():
    source = generate_handler(
        "myapp",
        ("sligraph", "slnumpy"),
        (EntryBehavior("handle", calls=()),),
    )
    tree = ast.parse(source)
    imports = [
        alias.name
        for node in tree.body
        if isinstance(node, ast.Import)
        for alias in node.names
    ]
    assert "sligraph" in imports
    assert "slnumpy" in imports


def test_entries_call_attribute_chains():
    source = generate_handler(
        "myapp",
        ("sligraph",),
        (EntryBehavior("handle", calls=("sligraph.drawing:run",)),),
    )
    assert "sligraph.drawing.run()" in source


def test_handler_self_cost_embedded():
    source = generate_handler(
        "myapp",
        (),
        (EntryBehavior("handle", calls=(), handler_self_ms=12.5),),
    )
    assert "_busy(12.5)" in source


def test_every_entry_gets_a_function():
    entries = tuple(
        EntryBehavior(f"entry{i}", calls=()) for i in range(4)
    )
    source = generate_handler("myapp", (), entries)
    tree = ast.parse(source)
    defs = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
    assert {f"entry{i}" for i in range(4)} <= defs
