"""Tests for cluster wiring helpers."""

import pytest

from repro.apps.wiring import entry_exec_ms, expand_cluster_refs, subtree_init_ms
from repro.common.errors import SpecError


class TestExpandClusterRefs:
    def test_single_cluster(self, small_ecosystem):
        calls = expand_cluster_refs(small_ecosystem, ("libx.core",))
        assert calls == ["libx.core:run"]

    def test_whole_library_expands_to_clusters(self, small_ecosystem):
        calls = expand_cluster_refs(small_ecosystem, ("libx",))
        assert calls == ["libx.core:run", "libx.extra:run"]

    def test_deduplication(self, small_ecosystem):
        calls = expand_cluster_refs(small_ecosystem, ("libx", "libx.core"))
        assert calls.count("libx.core:run") == 1

    def test_unknown_cluster_rejected(self, small_ecosystem):
        with pytest.raises(SpecError):
            expand_cluster_refs(small_ecosystem, ("libx.ghost",))


class TestExecEstimation:
    def test_entry_exec_walks_call_graph(self, small_ecosystem):
        # core:run (1.0) -> fast:work (2.0)
        assert entry_exec_ms(small_ecosystem, ("libx.core:run",)) == pytest.approx(3.0)

    def test_multiple_calls_sum(self, small_ecosystem):
        cost = entry_exec_ms(
            small_ecosystem, ("libx.core:run", "libx.extra:run")
        )
        assert cost == pytest.approx(3.0 + 4.0)


class TestSubtreeInit:
    def test_cluster(self, small_ecosystem):
        assert subtree_init_ms(small_ecosystem, "libx.extra") == 65.0

    def test_whole_library(self, small_ecosystem):
        assert subtree_init_ms(small_ecosystem, "libx") == 100.0
