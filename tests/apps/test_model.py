"""Tests for benchmark application instantiation and calibration."""

import pytest

from repro.apps.catalog import app_by_key
from repro.apps.model import instantiate
from repro.common.errors import SpecError


@pytest.fixture(scope="module")
def graph_bfs():
    return instantiate(app_by_key("R-GB"))


@pytest.fixture(scope="module")
def cve():
    return instantiate(app_by_key("CVE"))


class TestEntryConstruction:
    def test_main_entry_exists(self, graph_bfs):
        names = [entry.name for entry in graph_bfs.entries]
        assert "handle" in names

    def test_secondary_entry(self, graph_bfs):
        names = [entry.name for entry in graph_bfs.entries]
        assert "process" in names

    def test_never_entries_have_zero_popularity(self, graph_bfs):
        mix_entries = set(graph_bfs.mix.entries)
        admin = [e.name for e in graph_bfs.entries if e.name.startswith("admin_")]
        assert admin
        assert not (set(admin) & mix_entries)

    def test_rare_entries_have_small_popularity(self, cve):
        aux = [name for name in cve.mix.entries if name.startswith("aux_")]
        assert aux
        for name in aux:
            assert cve.mix.probability(name) == pytest.approx(0.01, abs=0.002)

    def test_main_entry_dominates_mix(self, graph_bfs):
        assert graph_bfs.mix.probability("handle") > 0.8


class TestProgramInformation:
    def test_loaded_libraries(self, cve):
        assert cve.library_count == 6
        assert "slelementpath" in cve.loaded_libraries()

    def test_module_count_counts_loaded_libraries(self, cve):
        assert cve.module_count == 760

    def test_average_depth_positive(self, graph_bfs):
        assert graph_bfs.average_depth > 2.0


class TestCalibration:
    def test_expected_speedup_close_to_paper(self, graph_bfs):
        paper = graph_bfs.definition.paper
        assert graph_bfs.expected_init_speedup == pytest.approx(
            paper.init_speedup, rel=0.10
        )

    def test_removable_below_total(self, graph_bfs):
        assert 0 < graph_bfs.expected_removable_init_ms < (
            graph_bfs.expected_total_init_ms
        )

    def test_clean_app_has_nothing_removable(self):
        app = instantiate(app_by_key("R-FC"))
        assert app.expected_removable_init_ms == 0.0
        assert app.expected_init_speedup == 1.0


class TestMaterialization:
    def test_sim_config_valid(self, graph_bfs):
        config = graph_bfs.sim_config()
        assert config.name == "graph_bfs"
        assert config.handler_imports == ("sligraph",)

    def test_handler_source_parses_and_mentions_entries(self, graph_bfs):
        import ast

        source = graph_bfs.handler_source()
        tree = ast.parse(source)
        defs = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
        for entry in graph_bfs.entries:
            assert entry.name in defs

    def test_real_workspace_runs(self, tmp_path):
        from repro.faas.local import LocalPlatform

        app = instantiate(app_by_key("R-GB"))
        deployment = app.build_real_workspace(tmp_path / "ws", scale=0.01)
        platform = LocalPlatform()
        platform.deploy(deployment)
        record = platform.invoke("graph_bfs", "handle")
        assert record.cold
        assert record.init_ms > 0

    def test_bad_definition_rejected(self):
        from repro.apps.model import AppDefinition

        with pytest.raises(SpecError):
            AppDefinition(
                key="X",
                name="bad app",  # not an identifier
                suite="s",
                category="c",
                description="d",
                library_builders=(),
                hot=("libx",),
            )
