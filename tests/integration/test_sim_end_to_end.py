"""Integration: full SLIMSTART cycles on benchmark apps (simulator)."""

import pytest

from repro.apps import benchmark_apps
from repro.apps.model import bench_platform_config
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.faas.sim import SimPlatform
from repro.staticbase import analyze_sim_app
from repro.workloads.arrival import poisson_schedule


@pytest.fixture(scope="module")
def tool() -> SlimStart:
    return SlimStart(PipelineConfig(measure_cold_starts=60, measure_runs=2))


def run_cycle(tool, key: str):
    app = benchmark_apps((key,))[0]
    platform = SimPlatform(config=bench_platform_config())
    schedule = poisson_schedule(app.mix, rate_per_s=0.3, duration_s=1800, seed=11)
    result = tool.run_simulated_cycle(
        app.sim_config(), schedule, app.mix, platform=platform
    )
    return app, result


class TestTable2Shape:
    @pytest.mark.parametrize("key", ["R-GB", "R-SA", "FL-SA", "CVE", "SensorTD"])
    def test_speedups_near_paper(self, tool, key):
        app, result = run_cycle(tool, key)
        paper = app.definition.paper
        assert result.speedups.init_speedup == pytest.approx(
            paper.init_speedup, rel=0.15
        )
        assert result.speedups.e2e_speedup == pytest.approx(
            paper.e2e_speedup, rel=0.15
        )

    def test_clean_app_left_alone(self, tool):
        _, result = run_cycle(tool, "R-FC")
        assert result.plan.is_empty
        assert result.speedups.init_speedup == pytest.approx(1.0, abs=0.05)

    def test_memory_reduction_positive(self, tool):
        _, result = run_cycle(tool, "FL-PWM")
        assert result.speedups.memory_reduction > 1.2


class TestObservation2:
    """Dynamic profiling beats static reachability (§II-B)."""

    @pytest.mark.parametrize("key", ["FL-SA", "FL-PWM"])
    def test_slimstart_beats_faaslight(self, tool, key):
        app, result = run_cycle(tool, key)
        static = analyze_sim_app(app.sim_config())
        dynamic_saving = (
            result.before.init.mean_ms - result.after.init.mean_ms
        ) / result.before.init.mean_ms
        assert dynamic_saving > static.removable_fraction + 0.05


class TestCorrectnessUnderOptimization:
    def test_rare_entries_still_served_after_optimization(self, tool):
        app, result = run_cycle(tool, "CVE")
        # The rare SBOM entry was deferred; late requests must still work
        # and pay the lazy-load penalty exactly once per container.
        rare = [r for r in result.after_records if r.entry.startswith("aux_")]
        assert rare
        assert all(record.e2e_ms > 0 for record in rare)

    def test_tail_latency_shows_lazy_penalty(self, tool):
        app, result = run_cycle(tool, "CVE")
        rare_after = [r for r in result.after_records if r.entry.startswith("aux_")]
        rare_before = [r for r in result.before_records if r.entry.startswith("aux_")]
        mean_after = sum(r.exec_ms for r in rare_after) / len(rare_after)
        mean_before = sum(r.exec_ms for r in rare_before) / len(rare_before)
        # The deferred xmlschema stack now loads on the rare path itself.
        assert mean_after > mean_before * 2
