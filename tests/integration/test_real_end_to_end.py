"""Integration: the full tool on really-executing benchmark applications."""

import pytest

from repro.apps import benchmark_apps
from repro.core.pipeline import SlimStart
from repro.faas.local import FunctionDeployment, LocalPlatform


@pytest.fixture(scope="module")
def real_cycle(tmp_path_factory):
    """Profile, optimize, and redeploy graph_bfs with real execution."""
    base = tmp_path_factory.mktemp("real_e2e")
    app = benchmark_apps(("R-GB",))[0]
    deployment = app.build_real_workspace(base / "v1", scale=0.25)
    platform = LocalPlatform()
    platform.deploy(deployment)
    tool = SlimStart()
    library_names = set(app.loaded_libraries())
    entries = ["handle"] * 30 + ["process"] * 6
    bundle = tool.profile_real_invocations(
        platform, deployment, entries, library_names, interval_ms=1.0
    )
    attributor = tool.workspace_attributor(deployment.workspace, library_names)
    report = tool.analyze(bundle, attributor)
    optimized = tool.optimize_workspace(
        deployment.workspace, report.plan, base / "v2"
    )
    new_deployment = FunctionDeployment(
        name=app.name,
        workspace=optimized.workspace,
        entries=deployment.entries,
    )
    platform.redeploy(new_deployment)
    return app, platform, deployment, report, optimized


class TestRealCycle:
    def test_profiler_finds_the_drawing_stack(self, real_cycle):
        _, _, _, report, _ = real_cycle
        assert any(
            flagged.startswith("sligraph.drawing")
            for flagged in report.plan.deferred_library_edges
        )

    def test_optimization_rewrites_library(self, real_cycle):
        _, _, _, _, optimized = real_cycle
        assert optimized.stub_result.changed
        stubbed = set(optimized.stub_result.stubbed_packages)
        assert "sligraph" in stubbed

    def test_cold_start_faster_after_optimization(self, real_cycle):
        app, platform, old_deployment, _, _ = real_cycle
        platform.force_cold(app.name)
        after = platform.invoke(app.name, "handle")

        before_platform = LocalPlatform()
        before_platform.deploy(
            FunctionDeployment(
                name="before_" + app.name,
                workspace=old_deployment.workspace,
                entries=old_deployment.entries,
            )
        )
        before = before_platform.invoke("before_" + app.name, "handle")
        assert after.init_ms < before.init_ms
        assert after.memory_mb < before.memory_mb

    def test_never_used_entry_still_correct(self, real_cycle):
        app, platform, _, _, _ = real_cycle
        admin_entries = [e for e in (en.name for en in app.entries) if e.startswith("admin_")]
        # The in-process testbed supports one active workspace at a time;
        # an earlier test cold-started the unoptimized copy, so start a
        # fresh container for the optimized app before invoking it.
        platform.force_cold(app.name)
        record = platform.invoke(app.name, admin_entries[0])
        assert record.e2e_ms > 0
        registry = platform.runtime_registry(app.name)
        assert any(
            module.startswith("sligraph.drawing")
            for module in registry.loaded_modules()
        )
