"""Tests for repro.integration (package file keeps duplicate basenames importable)."""
