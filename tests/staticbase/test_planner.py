"""Tests for dead-subtree plan derivation."""

from repro.staticbase.planner import dead_subtree_plan


LOADED = [
    "libx",
    "libx.core",
    "libx.core.fast",
    "libx.extra",
    "libx.extra.heavy",
    "liby",
    "liby.util",
]


def test_whole_handler_library_dead():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=LOADED,
        used_modules=["liby.util"],
        handler_imports=["libx", "liby"],
    )
    assert plan.deferred_handler_imports == {"libx"}


def test_maximal_dead_subtree_flagged_once():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=LOADED,
        used_modules=["libx.core.fast", "liby.util"],
        handler_imports=["libx", "liby"],
    )
    assert plan.deferred_library_edges == {"libx.extra"}
    # Not libx.extra.heavy separately: maximality.


def test_partially_used_subtree_descends():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=LOADED,
        used_modules=["libx.extra", "liby.util"],  # extra root used, heavy not
        handler_imports=["libx", "liby"],
    )
    assert plan.deferred_library_edges == {"libx.extra.heavy", "libx.core"}


def test_transitively_loaded_dead_library_gets_edge():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=LOADED,
        used_modules=["liby.util"],
        handler_imports=["liby"],  # libx loaded only as liby's dependency
    )
    assert "libx" in plan.deferred_library_edges
    assert plan.deferred_handler_imports == frozenset()


def test_everything_used_empty_plan():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=LOADED,
        used_modules=LOADED,
        handler_imports=["libx", "liby"],
    )
    assert plan.is_empty


def test_usage_at_package_root_keeps_subtree_root():
    plan = dead_subtree_plan(
        app="a",
        loaded_modules=["libx", "libx.core", "libx.core.fast"],
        used_modules=["libx.core"],
        handler_imports=["libx"],
    )
    assert plan.deferred_library_edges == {"libx.core.fast"}
