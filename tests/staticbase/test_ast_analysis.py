"""Tests for AST call-graph extraction on real workspaces."""

import textwrap

import pytest

from repro.faas.deployment import build_workspace
from repro.staticbase.ast_analysis import analyze_workspace, extract_call_graph


HANDLER = textwrap.dedent(
    """
    import libx
    import liby


    def main(event=None):
        prepare(event)
        return libx.use_core()


    def render(event=None):
        return libx.use_extra()


    def prepare(event):
        return event
    """
)


@pytest.fixture(scope="module")
def workspace(tmp_path_factory, session_ecosystem):
    ws = tmp_path_factory.mktemp("astws")
    build_workspace(session_ecosystem, HANDLER, ws, scale=0.01)
    return ws


class TestCallGraph:
    def test_modules_discovered(self, workspace):
        graph = extract_call_graph(workspace)
        assert "libx.core.fast" in graph.modules
        assert "handler" in graph.modules
        assert not any(m.startswith("_slimstart") for m in graph.modules)

    def test_functions_discovered(self, workspace):
        graph = extract_call_graph(workspace)
        assert "handler:main" in graph.functions
        assert "libx.core:run" in graph.functions

    def test_attribute_chain_edge(self, workspace):
        graph = extract_call_graph(workspace)
        assert "libx:use_core" in graph.callees("handler:main")

    def test_local_call_edge(self, workspace):
        graph = extract_call_graph(workspace)
        assert "handler:prepare" in graph.callees("handler:main")

    def test_resolve_pattern_edge(self, workspace):
        graph = extract_call_graph(workspace)
        # Generated library code calls via _rt.resolve('...').fn().
        assert "libx.core.fast:work" in graph.callees("libx.core:run")

    def test_handler_imports_recorded(self, workspace):
        graph = extract_call_graph(workspace)
        assert graph.module_imports["handler"] == {"libx", "liby"}


class TestWorkspaceAnalysis:
    def test_unreachable_library_deferred(self, workspace):
        plan, graph, used = analyze_workspace(workspace, ("main", "render"))
        # liby is imported but no entry ever calls into it.
        assert "liby" in plan.deferred_handler_imports

    def test_multi_entry_reachability_keeps_rare_paths(self, workspace):
        plan, _, used = analyze_workspace(workspace, ("main", "render"))
        # 'render' statically reaches libx.extra: static keeps it loaded.
        assert "libx.extra" not in plan.deferred_library_edges
        assert "libx.extra" in used

    def test_single_entry_prunes_more(self, workspace):
        plan, _, _ = analyze_workspace(workspace, ("main",))
        assert "libx.extra" in plan.deferred_library_edges

    def test_agreement_with_spec_analysis(
        self, workspace, session_ecosystem
    ):
        """The AST analyzer reaches the same verdict as the exact one."""
        from repro.faas.sim import EntryBehavior, SimAppConfig
        from repro.staticbase.spec_analysis import analyze_sim_app

        config = SimAppConfig(
            name="app",
            ecosystem=session_ecosystem,
            handler_imports=("libx", "liby"),
            entries=(
                EntryBehavior("main", calls=("libx:use_core",)),
                EntryBehavior("render", calls=("libx:use_extra",)),
            ),
        )
        exact = analyze_sim_app(config)
        ast_plan, _, _ = analyze_workspace(workspace, ("main", "render"))
        assert ast_plan.deferred_handler_imports == exact.plan.deferred_handler_imports
        assert ast_plan.deferred_library_edges == exact.plan.deferred_library_edges
