"""Tests for repro.staticbase (package file keeps duplicate basenames importable)."""
