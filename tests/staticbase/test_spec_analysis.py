"""Tests for exact static reachability over specifications."""

import pytest

from repro.faas.sim import EntryBehavior, SimAppConfig
from repro.staticbase.spec_analysis import analyze_sim_app, reachable_functions


@pytest.fixture()
def config(small_ecosystem) -> SimAppConfig:
    return SimAppConfig(
        name="app",
        ecosystem=small_ecosystem,
        handler_imports=("libx",),
        entries=(
            EntryBehavior("main", calls=("libx:use_core",)),
            EntryBehavior("render", calls=("libx:use_extra",)),  # never invoked
        ),
    )


class TestReachability:
    def test_all_entries_count_as_roots(self, config):
        reachable = reachable_functions(config)
        # Static analysis cannot know 'render' is never invoked.
        assert "libx.extra:run" in reachable
        assert "libx.extra.heavy:work" in reachable

    def test_transitive_closure(self, config):
        reachable = reachable_functions(config)
        assert "libx.core.fast:work" in reachable


class TestAnalysis:
    def test_workload_dependent_library_invisible_to_static(self, config):
        analysis = analyze_sim_app(config)
        # Everything is reachable from *some* entry: nothing removable.
        assert analysis.plan.is_empty
        assert analysis.removable_fraction == 0.0

    def test_orphan_subtree_is_removable(self, small_ecosystem):
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(EntryBehavior("main", calls=("libx:use_core",)),),
        )
        analysis = analyze_sim_app(config)
        assert "libx.extra" in analysis.plan.deferred_library_edges
        # extra (40) + heavy (25) of 100 ms total.
        assert analysis.removable_fraction == pytest.approx(0.65)

    def test_orphan_import_fully_removable(self, small_ecosystem):
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx", "liby"),
            entries=(EntryBehavior("main", calls=("libx:use_core",)),),
        )
        analysis = analyze_sim_app(config)
        assert "liby" in analysis.plan.deferred_handler_imports

    def test_cost_scale_respected(self, small_ecosystem):
        config = SimAppConfig(
            name="app",
            ecosystem=small_ecosystem,
            handler_imports=("libx",),
            entries=(EntryBehavior("main", calls=("libx:use_core",)),),
            cost_scale=0.5,
        )
        analysis = analyze_sim_app(config)
        assert analysis.unoptimized_init_ms == pytest.approx(50.0)

    def test_static_misses_workload_dependence(self, config, small_ecosystem):
        """Observation 2: DYN upper bound exceeds the STAT bound."""
        from repro.core.pipeline import SlimStart
        from repro.faas.sim import SimPlatform

        static = analyze_sim_app(config)
        platform = SimPlatform()
        platform.deploy(config)
        tool = SlimStart()
        # Typical workload: only 'main' is invoked.
        workload = [(float(t * 700), "main") for t in range(12)]
        bundle = tool.profile_simulated(platform, config, workload)
        report = tool.analyze(bundle, tool.sim_attributor(config))
        dynamic_deferred = report.plan.all_deferred
        assert "libx.extra" in dynamic_deferred
        assert "libx.extra" not in static.plan.all_deferred
