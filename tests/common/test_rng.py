"""Tests for seeded randomness helpers."""

import pytest

from repro.common.rng import SeededRNG, derive_seed, spread


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a = SeededRNG(5)
        b = SeededRNG(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_child_streams_are_independent(self):
        parent = SeededRNG(5)
        child_a = parent.child("x")
        child_b = parent.child("y")
        assert child_a.random() != child_b.random()

    def test_child_is_reproducible(self):
        assert SeededRNG(5).child("x").random() == SeededRNG(5).child("x").random()

    def test_uniform_bounds(self):
        rng = SeededRNG(0)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_expovariate_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            SeededRNG(0).expovariate(0.0)

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRNG(0).choice([])

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRNG(0).weighted_choice(["a"], [0.5, 0.5])

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRNG(0)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_zipf_weights_normalized(self):
        weights = SeededRNG(0).zipf_weights(10, exponent=1.2)
        assert abs(sum(weights) - 1.0) < 1e-12

    def test_zipf_weights_decreasing(self):
        weights = SeededRNG(0).zipf_weights(8, exponent=1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zipf_exponent_zero_is_uniform(self):
        weights = SeededRNG(0).zipf_weights(4, exponent=0.0)
        assert all(abs(w - 0.25) < 1e-12 for w in weights)

    def test_zipf_rejects_bad_count(self):
        with pytest.raises(ValueError):
            SeededRNG(0).zipf_weights(0)

    def test_poisson_zero_mean(self):
        assert SeededRNG(0).poisson(0.0) == 0

    def test_poisson_rejects_negative(self):
        with pytest.raises(ValueError):
            SeededRNG(0).poisson(-1.0)

    def test_poisson_mean_roughly_matches(self):
        rng = SeededRNG(7)
        samples = [rng.poisson(4.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 3.6 < mean < 4.4


class TestSpread:
    def test_rescales_to_total(self):
        values = spread([1.0, 3.0], total=8.0)
        assert values == [2.0, 6.0]

    def test_empty_input(self):
        assert spread([], total=5.0) == []

    def test_zero_sum_splits_evenly(self):
        assert spread([0.0, 0.0], total=4.0) == [2.0, 2.0]
