"""Tests for JSON persistence helpers."""

from dataclasses import dataclass

from repro.common.jsonio import dump_json, load_json, to_jsonable


@dataclass
class _Point:
    x: int
    label: str


def test_dataclass_roundtrip(tmp_path):
    path = dump_json(_Point(x=3, label="hi"), tmp_path / "point.json")
    assert load_json(path) == {"x": 3, "label": "hi"}


def test_nested_structures():
    payload = to_jsonable({"points": [_Point(1, "a"), _Point(2, "b")]})
    assert payload == {"points": [{"x": 1, "label": "a"}, {"x": 2, "label": "b"}]}


def test_sets_become_sorted_lists():
    assert to_jsonable({"s": {3, 1, 2}}) == {"s": [1, 2, 3]}


def test_tuples_become_lists():
    assert to_jsonable((1, 2)) == [1, 2]


def test_dump_creates_parent_dirs(tmp_path):
    path = dump_json({"a": 1}, tmp_path / "deep" / "dir" / "f.json")
    assert path.is_file()


def test_non_string_keys_coerced():
    assert to_jsonable({1: "x"}) == {"1": "x"}
