"""Tests for the clock abstraction."""

import pytest

from repro.common.clock import Clock, RealClock, VirtualClock, as_clock


class TestRealClock:
    def test_now_is_monotonic(self):
        clock = RealClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_satisfies_protocol(self):
        assert isinstance(RealClock(), Clock)

    def test_sleep_advances_time(self):
        clock = RealClock()
        start = clock.now()
        clock.sleep(0.01)
        assert clock.now() - start >= 0.009


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(start=42.0).now() == 42.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_advance_to_rejects_rewind(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_scheduled_callbacks_fire_in_order(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append("c"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(2.0, lambda: fired.append("b"))
        clock.advance_to(10.0)
        assert fired == ["a", "b", "c"]

    def test_callbacks_see_their_fire_time(self):
        clock = VirtualClock()
        seen = []
        clock.schedule(4.0, lambda: seen.append(clock.now()))
        clock.advance_to(9.0)
        assert seen == [4.0]
        assert clock.now() == 9.0

    def test_callbacks_beyond_deadline_stay_pending(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append(1))
        clock.advance_to(4.0)
        assert fired == []
        assert clock.pending_events == 1

    def test_cannot_schedule_in_past(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.schedule(9.0, lambda: None)

    def test_same_time_callbacks_fire_fifo(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("first"))
        clock.schedule(1.0, lambda: fired.append("second"))
        clock.advance_to(1.0)
        assert fired == ["first", "second"]


def test_as_clock_defaults_to_real():
    assert isinstance(as_clock(None), RealClock)


def test_as_clock_passes_through():
    clock = VirtualClock()
    assert as_clock(clock) is clock
