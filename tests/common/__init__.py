"""Tests for repro.common (package file keeps duplicate basenames importable)."""
