"""Tests for the streaming trace-replay compiler (repro.workloads.replay)."""

import itertools

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG
from repro.workloads.replay import (
    ARRIVAL_MODEL_NAMES,
    DiurnalArrivals,
    ExplicitMap,
    HashAffinity,
    PoissonArrivals,
    PopularityWeighted,
    UniformArrivals,
    as_paths,
    assign_regions,
    compile_trace,
    make_arrival_model,
)
from repro.workloads.trace import AppTrace, ProductionTrace, TraceGenerator


def small_trace(app_count=4, windows=3, seed=5) -> ProductionTrace:
    return TraceGenerator(
        app_count=app_count,
        duration_hours=windows * 12.0,
        window_hours=12.0,
        mean_requests_per_window=120.0,
        seed=seed,
    ).generate()


class TestArrivalModels:
    @pytest.mark.parametrize("name", ARRIVAL_MODEL_NAMES)
    def test_times_sorted_and_inside_window(self, name):
        model = make_arrival_model(name)
        times = model.times(SeededRNG(3), start_s=100.0, window_s=60.0, count=200)
        assert times == sorted(times)
        assert all(100.0 <= at < 160.0 for at in times)

    @pytest.mark.parametrize("name", ARRIVAL_MODEL_NAMES)
    def test_deterministic_under_seed(self, name):
        model = make_arrival_model(name)
        one = model.times(SeededRNG(9), 0.0, 600.0, 50)
        two = model.times(SeededRNG(9), 0.0, 600.0, 50)
        assert one == two

    def test_uniform_yields_exactly_count(self):
        times = UniformArrivals().times(SeededRNG(1), 0.0, 100.0, 77)
        assert len(times) == 77

    def test_diurnal_yields_exactly_count(self):
        times = DiurnalArrivals().times(SeededRNG(1), 0.0, 43_200.0, 77)
        assert len(times) == 77

    def test_poisson_count_is_approximate(self):
        counts = [
            len(PoissonArrivals().times(SeededRNG(seed), 0.0, 3600.0, 500))
            for seed in range(8)
        ]
        assert any(count != 500 for count in counts)  # unconditioned process
        average = sum(counts) / len(counts)
        assert 400 <= average <= 600  # mean tracks the window count

    def test_zero_count_yields_nothing(self):
        for name in ARRIVAL_MODEL_NAMES:
            assert make_arrival_model(name).times(SeededRNG(0), 0.0, 60.0, 0) == []

    def test_diurnal_ramp_shapes_density(self):
        # A window centered on the peak hour must out-draw one centered
        # half a period away, at identical counts per window.
        model = DiurnalArrivals(amplitude=0.9, peak_hour=14.0)
        peak_window = model.times(
            SeededRNG(4), start_s=12.0 * 3600.0, window_s=4 * 3600.0, count=400
        )
        # Count arrivals in the half of the window nearer the peak.
        nearer = sum(1 for at in peak_window if at >= 13.0 * 3600.0)
        assert nearer > len(peak_window) / 2

    def test_diurnal_validation(self):
        with pytest.raises(WorkloadError):
            DiurnalArrivals(amplitude=1.5)
        with pytest.raises(WorkloadError):
            DiurnalArrivals(period_s=0.0)
        with pytest.raises(WorkloadError):
            DiurnalArrivals(sub_bins=0)

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError):
            make_arrival_model("fractal")


class TestCompileTrace:
    def test_is_lazy(self):
        stream = compile_trace(small_trace(), seed=1)
        assert iter(stream) is stream  # a generator, not a list
        first = next(stream)
        assert len(first) == 3

    def test_globally_time_ordered(self):
        events = list(compile_trace(small_trace(), seed=2))
        times = [at for at, _, _ in events]
        assert times == sorted(times)

    def test_deterministic_under_seed(self):
        trace = small_trace()
        one = list(compile_trace(trace, seed=42))
        two = list(compile_trace(trace, seed=42))
        other = list(compile_trace(trace, seed=43))
        assert one == two
        assert one != other

    def test_uniform_volume_matches_trace_counts(self):
        trace = small_trace()
        events = list(compile_trace(trace, seed=3))
        expected = sum(app.total_invocations() for app in trace.apps)
        assert len(events) == expected
        # Per-app totals match too.
        per_app = {}
        for _, app, _ in events:
            per_app[app] = per_app.get(app, 0) + 1
        for app in trace.apps:
            assert per_app.get(app.name, 0) == app.total_invocations()

    def test_scale_shrinks_volume_deterministically(self):
        trace = small_trace()
        full = len(list(compile_trace(trace, seed=3)))
        tenth = len(list(compile_trace(trace, seed=3, scale=0.1)))
        assert 0 < tenth < full / 5
        assert tenth == len(list(compile_trace(trace, seed=3, scale=0.1)))

    def test_adding_an_app_never_perturbs_existing_streams(self):
        trace = small_trace(app_count=3)
        grown = ProductionTrace(
            window_hours=trace.window_hours,
            apps=trace.apps
            + [AppTrace(name="extra", handlers=("h0",), windows=[{"h0": 10}])],
        )
        base = [e for e in compile_trace(trace, seed=5)]
        widened = [
            e for e in compile_trace(grown, seed=5) if e[1] != "extra"
        ]
        assert base == widened

    def test_events_respect_window_bounds(self):
        trace = small_trace(windows=2)
        window_s = trace.window_hours * 3600.0
        events = list(compile_trace(trace, seed=8))
        assert all(0.0 <= at < 2 * window_s for at, _, _ in events)

    def test_start_offset_shifts_stream(self):
        trace = small_trace(windows=1)
        shifted = list(compile_trace(trace, seed=1, start_s=500.0))
        assert min(at for at, _, _ in shifted) >= 500.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            next(compile_trace(small_trace(), scale=0.0))


class TestAsPaths:
    def test_projects_urls_and_passes_tags_through(self):
        events = [(1.0, "shop", "checkout"), (2.0, "img", "resize")]
        assert list(as_paths(events)) == [
            (1.0, "/shop/checkout"),
            (2.0, "/img/resize"),
        ]
        tagged = [(1.0, "shop", "checkout", "us")]
        assert list(as_paths(tagged)) == [(1.0, "/shop/checkout", "us")]


class TestRegionAssigners:
    def test_hash_affinity_is_stable_and_order_free(self):
        one = HashAffinity(["us", "eu", "ap"])
        two = HashAffinity(["us", "eu", "ap"])
        for app in ("app000", "app001", "checkout", "imgproc"):
            assert one.region_for(app) == two.region_for(app)

    def test_hash_affinity_spreads_apps(self):
        assigner = HashAffinity(["us", "eu"])
        homes = {assigner.region_for(f"app{i:03d}") for i in range(40)}
        assert homes == {"us", "eu"}

    def test_popularity_weights_skew_assignment(self):
        assigner = PopularityWeighted(["big", "small"], weights=[9.0, 1.0], seed=3)
        homes = [assigner.region_for(f"app{i:03d}") for i in range(200)]
        assert homes.count("big") > 140

    def test_popularity_weighted_validation(self):
        with pytest.raises(WorkloadError):
            PopularityWeighted(["us", "eu"], weights=[1.0])
        with pytest.raises(WorkloadError):
            PopularityWeighted(["us", "eu"], weights=[0.0, 0.0])
        with pytest.raises(WorkloadError):
            PopularityWeighted([])
        with pytest.raises(WorkloadError):
            HashAffinity(["us", "us"])

    def test_explicit_map_with_default_and_without(self):
        assigner = ExplicitMap({"a": "us"}, default="eu")
        assert assigner.region_for("a") == "us"
        assert assigner.region_for("b") == "eu"
        strict = ExplicitMap({"a": "us"})
        with pytest.raises(WorkloadError):
            strict.region_for("b")

    def test_assign_regions_tags_lazily_and_consistently(self):
        trace = small_trace()
        assigner = HashAffinity(["us", "eu"])
        stream = assign_regions(compile_trace(trace, seed=4), assigner)
        assert iter(stream) is stream
        homes: dict[str, set] = {}
        for at, app, entry, region in itertools.islice(stream, 500):
            homes.setdefault(app, set()).add(region)
        for app, regions in homes.items():
            assert len(regions) == 1  # one origin per app
            assert regions == {assigner.region_for(app)}
