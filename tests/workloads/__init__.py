"""Tests for repro.workloads (package file keeps duplicate basenames importable)."""
