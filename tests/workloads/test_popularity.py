"""Tests for entry-point popularity models."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.popularity import EntryMix, uniform_mix, zipf_mix


class TestEntryMix:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(WorkloadError):
            EntryMix(entries=("a",), weights=(0.5, 0.5))

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            EntryMix(entries=(), weights=())

    def test_rejects_negative_weight(self):
        with pytest.raises(WorkloadError):
            EntryMix(entries=("a", "b"), weights=(0.5, -0.1))

    def test_rejects_zero_total(self):
        with pytest.raises(WorkloadError):
            EntryMix(entries=("a",), weights=(0.0,))

    def test_probability_normalizes(self):
        mix = EntryMix(entries=("a", "b"), weights=(3.0, 1.0))
        assert mix.probability("a") == 0.75

    def test_probability_unknown_entry(self):
        mix = EntryMix(entries=("a",), weights=(1.0,))
        with pytest.raises(WorkloadError):
            mix.probability("ghost")

    def test_sample_sequence_deterministic(self):
        mix = zipf_mix(["a", "b", "c"], seed=1)
        assert mix.sample_sequence(20, seed=5) == mix.sample_sequence(20, seed=5)

    def test_sample_sequence_respects_support(self):
        mix = EntryMix(entries=("a", "b"), weights=(1.0, 0.0))
        assert set(mix.sample_sequence(30, seed=2)) == {"a"}

    def test_proportional_sequence_exact_counts(self):
        mix = EntryMix(entries=("a", "b"), weights=(0.75, 0.25))
        sequence = mix.proportional_sequence(100)
        assert sequence.count("a") == 75
        assert sequence.count("b") == 25

    def test_proportional_sequence_largest_remainder(self):
        mix = EntryMix(entries=("a", "b", "c"), weights=(1.0, 1.0, 1.0))
        sequence = mix.proportional_sequence(10)
        counts = sorted(sequence.count(e) for e in ("a", "b", "c"))
        assert counts == [3, 3, 4]

    def test_proportional_sequence_total_length(self):
        mix = zipf_mix(["a", "b", "c", "d"], seed=0)
        assert len(mix.proportional_sequence(503)) == 503

    def test_rare_entries(self):
        mix = EntryMix(entries=("hot", "cold"), weights=(0.99, 0.01))
        assert mix.rare_entries(threshold=0.02) == ["cold"]


class TestZipfMix:
    def test_first_entry_most_popular(self):
        mix = zipf_mix(["a", "b", "c"], exponent=1.5)
        assert mix.weights[0] > mix.weights[1] > mix.weights[2]

    def test_top_entries_dominate(self):
        # Fig. 3: the top few handlers carry ~80 % of invocations.
        mix = zipf_mix([f"h{i}" for i in range(10)], exponent=1.6)
        top_three = sum(mix.weights[:3])
        assert top_three > 0.78 * sum(mix.weights)

    def test_uniform_mix(self):
        mix = uniform_mix(["a", "b"])
        assert mix.probability("a") == 0.5

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_mix([])
