"""Vectorized trace compilation is bit-identical to the python fallback.

The arrival models in :mod:`repro.workloads.replay` carry two bodies —
``_times_python`` (the semantic definition) and ``_times_numpy`` (the
batched accelerator installed by ``repro[fast]``) — behind one seam that
picks per call.  These tests pin the seam's whole contract:

* both bodies emit bit-identical timestamps in identical order, across
  models, seeds, window placements, and counts straddling every
  ``vector_min`` threshold;
* a committed golden stream prefix (generated with the pure-python
  path) reproduces exactly, so CI's with-numpy and no-numpy legs are
  pinned to the *same* stream, not merely each to themselves;
* ``SLIMSTART_NO_NUMPY`` forces the fallback without uninstalling
  anything, and a numpy-less environment degrades silently.
"""

import json
import math
from pathlib import Path

import pytest

from repro.common.rng import SeededRNG, derive_seed
from repro.workloads import replay
from repro.workloads.replay import (
    DiurnalArrivals,
    PoissonArrivals,
    UniformArrivals,
    compile_trace,
    make_arrival_model,
)
from repro.workloads.trace import TraceGenerator

GOLDEN = Path(__file__).parent / "data" / "golden_stream_prefix.json"

MODELS = [UniformArrivals(), PoissonArrivals(), DiurnalArrivals()]

numpy_only = pytest.mark.skipif(
    replay._load_numpy() is None, reason="numpy not installed"
)


def bits(times):
    """Timestamps as exact bit patterns (float.hex distinguishes -0.0)."""
    return [at.hex() for at in times]


class TestCrossImplementationEquality:
    @numpy_only
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize(
        "count,start_s,window_s",
        [
            (17, 0.0, 3600.0),
            (64, 43_200.0, 43_200.0),
            (191, 0.0, 43_200.0),  # straddles UniformArrivals.vector_min
            (257, 1e6, 1800.0),
            (1000, 7.5, 43_200.0),
        ],
    )
    def test_paths_bit_identical(self, model, count, start_s, window_s):
        np = replay._load_numpy()
        for seed_base in range(10):
            seed = derive_seed(seed_base, "replay", "app", 3, "handler")
            python = model._times_python(SeededRNG(seed), start_s, window_s, count)
            vector = model._times_numpy(np, SeededRNG(seed), start_s, window_s, count)
            assert bits(python) == bits(vector)

    @numpy_only
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_dispatch_crosses_threshold_transparently(self, model):
        # times() must agree with the python body on BOTH sides of
        # vector_min — the threshold is a pure perf knob, never visible
        # in the stream.
        for count in (model.vector_min - 1, model.vector_min):
            seed = derive_seed(11, "threshold", count)
            python = model._times_python(SeededRNG(seed), 0.0, 3600.0, count)
            assert bits(model.times(SeededRNG(seed), 0.0, 3600.0, count)) == bits(
                python
            )

    @numpy_only
    def test_below_threshold_stays_python(self, monkeypatch):
        model = UniformArrivals()

        def boom(*args):  # pragma: no cover - failure path
            raise AssertionError("vectorized body used below vector_min")

        monkeypatch.setattr(UniformArrivals, "_times_numpy", boom)
        model.times(SeededRNG(1), 0.0, 60.0, model.vector_min - 1)
        with pytest.raises(AssertionError):
            model.times(SeededRNG(1), 0.0, 60.0, model.vector_min)


class TestEnvironmentSeam:
    def test_env_escape_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("SLIMSTART_NO_NUMPY", "1")
        assert replay._load_numpy() is None

    def test_fallback_stream_identical(self, monkeypatch):
        model = UniformArrivals()
        count = model.vector_min * 4
        seed = derive_seed(3, "env")
        default = model.times(SeededRNG(seed), 0.0, 43_200.0, count)
        monkeypatch.setenv("SLIMSTART_NO_NUMPY", "1")
        assert bits(model.times(SeededRNG(seed), 0.0, 43_200.0, count)) == bits(
            default
        )

    def test_missing_numpy_is_silent(self, monkeypatch):
        # Simulate an environment without the optional dependency: the
        # cached import is cleared and re-resolution fails — times()
        # must fall back without raising.
        import builtins

        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy deliberately absent")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numpy)
        monkeypatch.setattr(replay, "_numpy_module", replay._UNSET)
        assert replay._load_numpy() is None
        times = UniformArrivals().times(SeededRNG(4), 0.0, 600.0, 300)
        assert len(times) == 300


class TestGoldenStreamPrefix:
    def test_committed_prefix_reproduces(self):
        golden = json.loads(GOLDEN.read_text())
        trace = TraceGenerator(**golden["trace"]).generate()
        for name, expected in golden["models"].items():
            model = make_arrival_model(name)
            stream = compile_trace(trace, model=model, seed=golden["compile_seed"])
            for index, (want_at, want_app, want_entry) in enumerate(expected):
                at, app, entry = next(stream)
                assert (at.hex(), app, entry) == (want_at, want_app, want_entry), (
                    f"{name} stream diverges at event {index}"
                )

    def test_prefix_covers_vectorized_counts(self):
        # The pinned trace must actually exercise the vectorized bodies
        # (counts past every model's threshold), or the golden test
        # would only ever pin the fallback.
        golden = json.loads(GOLDEN.read_text())
        trace = TraceGenerator(**golden["trace"]).generate()
        top = max(
            count
            for app in trace.apps
            for window in app.windows
            for count in window.values()
        )
        assert top >= max(model.vector_min for model in MODELS)


class TestRekeyedRandomState:
    @numpy_only
    def test_list_seeding_matches_cpython_all_widths(self):
        # The accelerator re-keys one shared RandomState from the
        # SeededRNG's integer seed (list form — init_by_array); pin the
        # equivalence across word widths, including the 1-word seeds
        # where numpy's scalar/array seeding paths would NOT match.
        import random

        np = replay._load_numpy()
        for seed in (0, 1, 12345, 2**31, 2**32 - 1, 2**32, 2**40 + 7, 2**80 + 9):
            state = replay._np_rng(np, SeededRNG(seed))
            reference = random.Random(seed)
            expected = [reference.random() for _ in range(8)]
            assert state.random_sample(8).tolist() == expected
