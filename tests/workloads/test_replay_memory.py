"""Bounded-memory regression: streaming replay is O(windows), not O(requests).

The tentpole promise of `repro.workloads.replay` + `run_stream` is that a
replay's resident footprint scales with the number of metric *windows*,
never with the number of *requests*.  This module replays >=100k requests
through `ClusterPlatform.run_stream` under `tracemalloc` (once, shared by
every assertion here) and pins that promise two ways: the absolute peak
stays far below what materializing the records would cost, and the
windowed accumulator's state is counted in windows.
"""

import tracemalloc
from dataclasses import dataclass

import pytest

from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.metrics import WindowAccumulator, WindowedSummary
from repro.workloads.replay import compile_trace
from repro.workloads.trace import TraceGenerator

#: >=100k requests: 10 apps x 10 windows x ~1050 requests/window.
TRACE = dict(
    app_count=10,
    duration_hours=10.0,
    window_hours=1.0,
    mean_requests_per_window=1050.0,
    shift_hours=(5.0,),
    seed=31,
)


@dataclass
class ReplayRun:
    platform: ClusterPlatform
    accumulator: WindowAccumulator
    summary: WindowedSummary
    total_requests: int
    peak_growth: int


@pytest.fixture(scope="module")
def replay_run() -> ReplayRun:
    trace = TraceGenerator(**TRACE).generate()
    total = sum(app.total_invocations() for app in trace.apps)
    platform = ClusterPlatform(
        config=SimPlatformConfig(record_traces=False),
        fleet=FleetConfig(max_containers=4, keep_alive_s=30.0),
        seed=9,
    )
    deploy_trace(platform, trace)
    accumulator = WindowAccumulator(window_s=3600.0)
    stream = compile_trace(trace, seed=7)

    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    summary = platform.run_stream(stream, accumulator)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return ReplayRun(
        platform=platform,
        accumulator=accumulator,
        summary=summary,
        total_requests=total,
        peak_growth=peak - baseline,
    )


@pytest.mark.slow
def test_100k_replay_peak_memory_is_bounded(replay_run):
    assert replay_run.total_requests >= 100_000  # the scale this test pins
    assert replay_run.summary.completed == replay_run.total_requests
    # Materializing would retain one InvocationRecord (~0.5 kB with its
    # strings) per request — >=50 MB for this trace.  The streamed replay
    # must stay far under that: the event heap holds only the causal
    # frontier, records fold into fixed-size windows, and nothing grows
    # per request.  12 MB is ~4x the observed peak (~3 MB), all of which
    # is the per-app one-window expansion buffer, and <= 120 bytes per
    # request — an order of magnitude below materialization.
    assert replay_run.peak_growth < 12 * 1024 * 1024, (
        f"peak grew {replay_run.peak_growth / 1e6:.1f} MB"
    )
    assert replay_run.peak_growth < replay_run.total_requests * 120


@pytest.mark.slow
def test_stream_after_batch_run_retains_no_per_request_state():
    """A prior batch run() must not make streaming accumulate history.

    Regression guard for the batch-path bookkeeping: ``run()`` clears
    the synchronous result map *and* the shed-token set, and a
    subsequent ``run_stream`` must neither grow the retained batch
    history nor any per-request structure — the tracemalloc bound here
    is the same per-request budget the pristine-platform test pins.
    """
    trace = TraceGenerator(
        app_count=6,
        duration_hours=5.0,
        window_hours=1.0,
        mean_requests_per_window=1400.0,
        seed=33,
    ).generate()
    platform = ClusterPlatform(
        config=SimPlatformConfig(record_traces=False),
        fleet=FleetConfig(max_containers=2, keep_alive_s=30.0, queue_capacity=0),
        seed=9,
    )
    deploy_trace(platform, trace)
    # Batch phase: enough of a burst that the bounded queue sheds (so
    # the dropped-token set sees traffic) and records accumulate.
    app = trace.apps[0]
    for index in range(50):
        platform.submit(app.name, app.handlers[0], at=index * 0.001)
    batch_records = platform.run()
    assert platform._dropped == set()  # run() cleans up shed bookkeeping
    assert platform._finished == {}
    retained = {name: len(platform._fleet(name).records) for name in platform.app_names()}
    shed_before = sum(platform._fleet(name).rejected for name in platform.app_names())
    assert shed_before > 0  # the burst really exercised the shed path
    assert len(batch_records) + shed_before == 50

    stream = compile_trace(trace, seed=7, start_s=1.0)
    total = sum(a.total_invocations() for a in trace.apps)
    assert total >= 40_000
    accumulator = WindowAccumulator(window_s=3600.0)
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    summary = platform.run_stream(stream, accumulator)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    growth = peak - baseline

    assert summary.arrivals == total
    assert growth < total * 120, f"peak grew {growth / 1e6:.1f} MB"
    # Streaming added nothing to the batch-path history.
    for name in platform.app_names():
        assert len(platform._fleet(name).records) == retained[name]
    assert platform._dropped == set()
    assert platform._finished == {}


@pytest.mark.slow
def test_accumulator_state_is_per_window_not_per_request(replay_run):
    # One accumulator window per trace hour; each is fixed-size (counters
    # plus a 64-bucket histogram), so doubling the request volume cannot
    # change this count — only lengthening the trace can.
    assert replay_run.accumulator.window_count() == len(replay_run.summary.windows)
    assert len(replay_run.summary.windows) == 10
    # And the platform retained no per-request history in streaming mode.
    platform = replay_run.platform
    for app in platform.app_names():
        assert platform.records(app) == []
        assert platform.retirements(app) == []
