"""Tests for arrival processes."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.arrival import burst_entries, idle_gaps, poisson_schedule
from repro.workloads.popularity import EntryMix, zipf_mix


@pytest.fixture()
def mix() -> EntryMix:
    return zipf_mix(["a", "b", "c"], seed=3)


class TestPoissonSchedule:
    def test_times_sorted_and_bounded(self, mix):
        schedule = poisson_schedule(mix, rate_per_s=5.0, duration_s=100.0, seed=1)
        times = [t for t, _ in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < 100.0 for t in times)

    def test_rate_roughly_respected(self, mix):
        schedule = poisson_schedule(mix, rate_per_s=5.0, duration_s=200.0, seed=2)
        assert 800 <= len(schedule) <= 1200

    def test_deterministic(self, mix):
        one = poisson_schedule(mix, rate_per_s=2.0, duration_s=50.0, seed=9)
        two = poisson_schedule(mix, rate_per_s=2.0, duration_s=50.0, seed=9)
        assert one == two

    def test_start_offset(self, mix):
        schedule = poisson_schedule(
            mix, rate_per_s=5.0, duration_s=10.0, seed=1, start_s=1000.0
        )
        assert all(1000.0 <= t < 1010.0 for t, _ in schedule)

    def test_rejects_bad_rate(self, mix):
        with pytest.raises(WorkloadError):
            poisson_schedule(mix, rate_per_s=0.0, duration_s=10.0)

    def test_entries_come_from_mix(self, mix):
        schedule = poisson_schedule(mix, rate_per_s=5.0, duration_s=50.0, seed=4)
        assert {entry for _, entry in schedule} <= {"a", "b", "c"}


class TestBurstEntries:
    def test_proportional_by_default(self, mix):
        burst = burst_entries(mix, 100)
        assert len(burst) == 100
        assert burst == burst_entries(mix, 100)

    def test_sampled_with_seed(self, mix):
        burst = burst_entries(mix, 100, seed=7)
        assert len(burst) == 100
        assert burst != burst_entries(mix, 100)  # proportional ordering differs


class TestIdleGaps:
    def test_detects_gaps_beyond_keepalive(self):
        schedule = [(0.0, "a"), (1.0, "a"), (700.0, "a"), (701.0, "a")]
        gaps = list(idle_gaps(schedule, keep_alive_s=600.0))
        assert gaps == [(1.0, 699.0)]

    def test_no_gaps(self):
        schedule = [(0.0, "a"), (10.0, "a")]
        assert list(idle_gaps(schedule, keep_alive_s=600.0)) == []
