"""Tests for the production-trace generator (Fig. 3 / Fig. 10 shapes)."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.trace import AppTrace, ProductionTrace, TraceGenerator


@pytest.fixture(scope="module")
def trace() -> ProductionTrace:
    return TraceGenerator(app_count=119, seed=2025).generate()


class TestGeneratorValidation:
    def test_rejects_zero_apps(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(app_count=0)

    def test_rejects_bad_window(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(window_hours=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(WorkloadError):
            TraceGenerator(single_entry_fraction=1.5)


class TestFleetShape:
    def test_app_count(self, trace):
        assert len(trace.apps) == 119

    def test_window_count(self, trace):
        assert trace.window_count == 26  # 312 h / 12 h

    def test_multi_entry_fraction_near_54_percent(self, trace):
        # Fig. 3 (left): 54 % of applications have more than one handler.
        assert 0.44 <= trace.multi_entry_fraction() <= 0.64

    def test_handler_count_pdf_sums_to_one(self, trace):
        pdf = trace.handler_count_pdf()
        assert sum(pdf.values()) == pytest.approx(1.0)

    def test_handler_counts_bounded(self, trace):
        assert all(1 <= app.handler_count <= 25 for app in trace.apps)

    def test_top_handlers_dominate_invocations(self, trace):
        # Fig. 3 (right): the top few handlers carry > 80 % cumulatively.
        mean_cdf, _, _ = trace.invocation_cdf_by_rank()
        assert mean_cdf[min(2, len(mean_cdf) - 1)] > 0.80

    def test_cdf_monotone_and_bounded(self, trace):
        mean_cdf, min_cdf, max_cdf = trace.invocation_cdf_by_rank()
        assert all(a <= b + 1e-12 for a, b in zip(mean_cdf, mean_cdf[1:]))
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in mean_cdf + min_cdf + max_cdf)
        assert all(
            low <= mid <= high + 1e-9
            for low, mid, high in zip(min_cdf, mean_cdf, max_cdf)
        )

    def test_deterministic(self):
        one = TraceGenerator(app_count=10, seed=7).generate()
        two = TraceGenerator(app_count=10, seed=7).generate()
        assert one.apps[3].windows == two.apps[3].windows


class TestShiftDynamics:
    def test_shift_windows_spike(self, trace):
        series = trace.exceeding_fraction_series(epsilon=0.002)
        shift_indices = [int(144 // 12), int(228 // 12)]
        baseline = [
            value
            for index, value in enumerate(series)
            if index + 1 not in shift_indices
        ]
        baseline_mean = sum(baseline) / len(baseline)
        for index in shift_indices:
            assert series[index - 1] > max(0.25, 2 * baseline_mean)

    def test_mean_shift_series_length(self, trace):
        assert len(trace.mean_shift_series()) == trace.window_count - 1

    def test_stable_windows_have_low_mean_shift(self, trace):
        series = trace.mean_shift_series()
        shift_indices = {int(144 // 12) - 1, int(228 // 12) - 1}
        stable = [v for i, v in enumerate(series) if i not in shift_indices]
        spikes = [v for i, v in enumerate(series) if i in shift_indices]
        assert max(stable) < min(spikes)


class TestAppTrace:
    def test_rank_frequencies_sorted(self):
        app = AppTrace(
            name="a",
            handlers=("h0", "h1"),
            windows=[{"h0": 10, "h1": 90}],
        )
        assert app.rank_frequencies() == [0.9, 0.1]

    def test_shifts_detect_rank_swap(self):
        app = AppTrace(
            name="a",
            handlers=("h0", "h1"),
            windows=[{"h0": 90, "h1": 10}, {"h0": 10, "h1": 90}],
        )
        assert app.shifts() == [pytest.approx(1.6)]

    def test_total_invocations(self):
        app = AppTrace(
            name="a", handlers=("h0",), windows=[{"h0": 5}, {"h0": 7}]
        )
        assert app.total_invocations() == 12
