"""Sharded replay: app-hash splitting and the bit-identical merge property.

The exactness claim of :mod:`repro.workloads.shard` is strong — *any*
partition of a trace's apps, replayed on independent platforms and merged
through :meth:`WindowedSummary.merge`, equals the unsharded replay bit
for bit.  These tests pin it property-style (arbitrary partitions and
shard counts under hypothesis) and once through a real
``ProcessPoolExecutor`` so the pickling path is exercised too.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.faas.autoscale import PanicWindow
from repro.faas.cluster import FleetConfig
from repro.faas.sim import SimPlatformConfig
from repro.metrics import (
    QOS_PRESETS,
    PricingModel,
    WindowedSummary,
    from_wire,
    merge_wire,
)
from repro.workloads.shard import (
    ShardReplaySpec,
    replay_shard,
    replay_shard_wire,
    replay_sharded,
    shard_index,
    shard_trace,
)
from repro.workloads.trace import ProductionTrace, TraceGenerator

#: Small but non-trivial: multi-entry apps, jitter on, keep-alive churn.
TRACE = TraceGenerator(
    app_count=8,
    duration_hours=24.0,
    window_hours=12.0,
    mean_requests_per_window=250.0,
    seed=5,
).generate()
SPEC = ShardReplaySpec(
    platform=SimPlatformConfig(record_traces=False, jitter_sigma=0.05),
    fleet=FleetConfig(max_containers=3, keep_alive_s=60.0),
    seed=13,
    replay_seed=3,
    scale=0.4,
    window_s=3600.0,
)
#: The unsharded ground truth every property compares against.
REFERENCE = replay_shard(SPEC, TRACE)

#: The same replay carrying a three-class QoS mix (tight deadlines so the
#: per-class violation/utility series is non-trivial) — exercises the
#: merge path for ``qos_counts``/``qos_sums`` under arbitrary partitions.
QOS_SPEC = ShardReplaySpec(
    platform=SPEC.platform,
    fleet=SPEC.fleet,
    seed=SPEC.seed,
    replay_seed=SPEC.replay_seed,
    scale=SPEC.scale,
    window_s=SPEC.window_s,
    qos=(QOS_PRESETS["critical"], QOS_PRESETS["standard"], QOS_PRESETS["batch"]),
    qos_seed=11,
)
QOS_REFERENCE = replay_shard(QOS_SPEC, TRACE)


def partition(assignment: list[int]) -> list[ProductionTrace]:
    """Split TRACE by an arbitrary app -> shard assignment."""
    shards: dict[int, ProductionTrace] = {}
    for app, shard in zip(TRACE.apps, assignment):
        shards.setdefault(
            shard, ProductionTrace(window_hours=TRACE.window_hours)
        ).apps.append(app)
    return list(shards.values())


class TestShardSplit:
    def test_every_app_lands_in_exactly_one_shard(self):
        shards = shard_trace(TRACE, 3)
        names = sorted(app.name for shard in shards for app in shard.apps)
        assert names == sorted(app.name for app in TRACE.apps)

    def test_assignment_is_stable_and_order_free(self):
        for app in TRACE.apps:
            assert shard_index(app.name, 4) == shard_index(app.name, 4)
        shuffled = ProductionTrace(
            window_hours=TRACE.window_hours, apps=list(reversed(TRACE.apps))
        )
        by_name = {
            app.name: index
            for index, shard in enumerate(shard_trace(TRACE, 4))
            for app in shard.apps
        }
        for index, shard in enumerate(shard_trace(shuffled, 4)):
            for app in shard.apps:
                assert by_name[app.name] == index

    def test_zero_shards_rejected(self):
        with pytest.raises(WorkloadError):
            shard_trace(TRACE, 0)


class TestMergeExactness:
    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_any_worker_count_is_bit_identical(self, workers):
        assert replay_sharded(TRACE, SPEC, workers=workers) == REFERENCE

    @given(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(TRACE.apps),
            max_size=len(TRACE.apps),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_any_app_partition_merges_bit_identical(self, assignment):
        shards = partition(assignment)
        summaries = [replay_shard(SPEC, shard) for shard in shards]
        assert WindowedSummary.merge(summaries) == REFERENCE

    @given(st.permutations(range(3)))
    @settings(max_examples=6, deadline=None)
    def test_merge_order_is_irrelevant(self, order):
        shards = shard_trace(TRACE, 3)
        summaries = [replay_shard(SPEC, shard) for shard in shards]
        assert WindowedSummary.merge([summaries[i] for i in order]) == REFERENCE

    @given(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(TRACE.apps),
            max_size=len(TRACE.apps),
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_qos_series_merges_bit_identical_under_any_partition(self, assignment):
        # QoS tagging is per-app-seeded, so the per-class deadline/utility
        # series survives arbitrary partitions bit for bit — including the
        # per-(class, source) float utility partials.
        shards = partition(assignment)
        summaries = [replay_shard(QOS_SPEC, shard) for shard in shards]
        assert WindowedSummary.merge(summaries) == QOS_REFERENCE

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_qos_any_worker_count_is_bit_identical(self, workers):
        assert replay_sharded(TRACE, QOS_SPEC, workers=workers) == QOS_REFERENCE

    def test_qos_reference_series_is_nontrivial(self):
        # Guard the properties above against vacuous success: the mix must
        # actually produce per-class series with activity in them.
        assert len(QOS_REFERENCE.qos) == 3
        assert sum(entry.completed for entry in QOS_REFERENCE.qos) > 0
        assert QOS_REFERENCE.utility != 0.0
        # Untagged replays stay untouched by the QoS machinery.
        assert REFERENCE.qos == ()

    def test_stateful_policy_shards_exactly_too(self):
        spec = ShardReplaySpec(
            platform=SPEC.platform,
            fleet=FleetConfig(
                max_containers=3,
                keep_alive_s=60.0,
                policy=PanicWindow(
                    target=0.6, stable_window_s=600.0, panic_window_s=60.0
                ),
            ),
            seed=SPEC.seed,
            replay_seed=SPEC.replay_seed,
            scale=SPEC.scale,
            window_s=SPEC.window_s,
        )
        assert replay_sharded(TRACE, spec, workers=3) == replay_shard(spec, TRACE)


@pytest.mark.slow
def test_process_pool_path_matches_inline():
    # workers > 1 actually crosses process boundaries (pickled spec and
    # sub-traces, pickled summaries back); must equal the inline result.
    assert replay_sharded(TRACE, SPEC, workers=2) == REFERENCE


class TestWireTransfer:
    """The array-packed wire format workers ship instead of pickled
    summaries: loss-free, merge-equivalent, and strictly smaller."""

    def test_single_wire_roundtrips_to_reference(self):
        wire = replay_shard_wire(SPEC, TRACE)
        assert merge_wire([wire]) == REFERENCE
        assert from_wire(wire).finalize() == REFERENCE

    @given(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(TRACE.apps),
            max_size=len(TRACE.apps),
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_any_partition_merges_bit_identical_over_the_wire(self, assignment):
        shards = partition(assignment)
        wires = [replay_shard_wire(SPEC, shard) for shard in shards]
        assert merge_wire(wires) == REFERENCE

    def test_qos_series_survive_the_wire(self):
        shards = shard_trace(TRACE, 3)
        wires = [replay_shard_wire(QOS_SPEC, shard) for shard in shards]
        assert merge_wire(wires) == QOS_REFERENCE

    def test_wire_is_smaller_than_pickled_summary(self):
        # The point of the format: less bytes through the process pool
        # than pickling the finalized per-shard summaries.
        import pickle

        wire = replay_shard_wire(SPEC, TRACE)
        assert len(pickle.dumps(wire)) < len(pickle.dumps(REFERENCE))

    def test_version_mismatch_fails_loudly(self):
        wire = replay_shard_wire(SPEC, TRACE)
        with pytest.raises(ValueError):
            merge_wire([(99,) + wire[1:]])

    def test_merge_rejects_window_mismatch(self):
        other_spec = ShardReplaySpec(
            platform=SPEC.platform,
            fleet=SPEC.fleet,
            seed=SPEC.seed,
            replay_seed=SPEC.replay_seed,
            scale=SPEC.scale,
            window_s=7200.0,
        )
        with pytest.raises(ValueError):
            merge_wire(
                [replay_shard_wire(SPEC, TRACE), replay_shard_wire(other_spec, TRACE)]
            )

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_wire([])


class TestMergeValidation:
    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            WindowedSummary.merge([])

    def test_merge_rejects_window_mismatch(self):
        other_spec = ShardReplaySpec(
            platform=SPEC.platform,
            fleet=SPEC.fleet,
            seed=SPEC.seed,
            replay_seed=SPEC.replay_seed,
            scale=SPEC.scale,
            window_s=7200.0,
        )
        other = replay_shard(other_spec, TRACE)
        with pytest.raises(ValueError):
            WindowedSummary.merge([REFERENCE, other])

    def test_merge_rejects_pricing_mismatch(self):
        priced_spec = ShardReplaySpec(
            platform=SPEC.platform,
            fleet=SPEC.fleet,
            seed=SPEC.seed,
            replay_seed=SPEC.replay_seed,
            scale=SPEC.scale,
            window_s=SPEC.window_s,
            pricing=PricingModel(per_gb_second=99.0),
        )
        other = replay_shard(priced_spec, TRACE)
        with pytest.raises(ValueError):
            WindowedSummary.merge([REFERENCE, other])

    def test_flush_charges_natural_expiry(self):
        # Sharded runs charge containers to their keep-alive expiry, so
        # the provisioned tail never depends on which shard saw the last
        # global event: totals must exceed a clock-truncated flush.
        truncated = replay_shard(SPEC, TRACE)
        assert truncated.gb_seconds == REFERENCE.gb_seconds  # deterministic
        assert math.isfinite(REFERENCE.gb_seconds)
        assert REFERENCE.gb_seconds > 0
