"""Per-shard checkpoint/resume: sharded replays survive a mid-trace kill.

:func:`repro.workloads.shard.run_sharded_checkpointed` promises that a
sharded replay killed at any point and resumed in fresh processes merges
**bit-identically** to an uninterrupted run — at any worker count,
including the 1-worker and unsharded references.  These tests pin that,
the manifest validation matrix (worker count / fingerprint / partition /
missing shard files all fail loudly), and the kind-confusion errors
between manifests and single-run checkpoints.  The kill-at-any-point
claim is property-tested under hypothesis for 1/2/4 workers.
"""

import json
import math
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckpointError, WorkloadError
from repro.faas.cluster import FleetConfig
from repro.faas.sim import SimPlatformConfig
from repro.faas.snapshot import (
    load_checkpoint,
    load_manifest,
    run_stream_checkpointed,
    shard_checkpoint_path,
    write_manifest,
)
from repro.workloads.shard import (
    ShardReplaySpec,
    build_shard_replay,
    prepare_sharded_checkpoint,
    replay_shard,
    replay_sharded,
    run_sharded_checkpointed,
    shard_trace,
)
from repro.workloads.trace import TraceGenerator

#: Small but non-trivial: multi-entry apps, jitter on, keep-alive churn.
TRACE = TraceGenerator(
    app_count=4,
    duration_hours=24.0,
    window_hours=6.0,
    mean_requests_per_window=200.0,
    seed=5,
).generate()
SPEC = ShardReplaySpec(
    platform=SimPlatformConfig(record_traces=False, jitter_sigma=0.05),
    fleet=FleetConfig(max_containers=3, keep_alive_s=60.0),
    seed=13,
    replay_seed=3,
    scale=0.3,
    window_s=3600.0,
)
#: The unsharded ground truth every resume compares against.
REFERENCE = replay_shard(SPEC, TRACE)
FINGERPRINT = {"apps": 4, "scale": 0.3, "seed": 13}


class _Interrupt(Exception):
    """Simulated kill: raised from inside the arrival stream."""


def interrupt_after(stream, count):
    """Yield ``count`` arrivals from ``stream``, then die mid-trace."""
    for fed, item in enumerate(stream):
        if fed == count:
            raise _Interrupt
        yield item


def kill_all_shards(tmp, workers, kill_at, fingerprint=FINGERPRINT, spec=SPEC):
    """Set up a checkpointed sharded run and kill every shard mid-trace.

    Runs each shard in-process through the same
    :func:`run_stream_checkpointed` driver the pool workers use, with the
    stream wrapped to raise after ``kill_at`` arrivals — the on-disk
    state afterwards is exactly what a hard-killed run leaves behind.
    Returns the manifest path.
    """
    path = Path(tmp) / "ckpt.json"
    shards, shard_paths, fingerprints, resumed = prepare_sharded_checkpoint(
        TRACE, path, spec, workers, fingerprint
    )
    assert not resumed
    for shard, shard_path, shard_fp in zip(shards, shard_paths, fingerprints):
        platform, stream, accumulator = build_shard_replay(spec, shard)
        try:
            run_stream_checkpointed(
                platform,
                interrupt_after(stream, kill_at),
                accumulator,
                shard_path,
                flush_at=math.inf,
                keep=True,
                fingerprint=shard_fp,
            )
        except _Interrupt:
            pass
    return path


# -- uninterrupted runs ------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_uninterrupted_matches_unsharded_and_cleans_up(tmp_path, workers):
    path = tmp_path / "ckpt.json"
    summary = run_sharded_checkpointed(
        TRACE, path, SPEC, workers=workers, fingerprint=FINGERPRINT
    )
    assert summary == REFERENCE
    assert summary == replay_sharded(TRACE, SPEC, workers=workers)
    assert list(tmp_path.iterdir()) == []


def test_keep_leaves_manifest_and_shards(tmp_path):
    path = tmp_path / "ckpt.json"
    run_sharded_checkpointed(
        TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT, keep=True
    )
    assert path.exists()
    manifest = load_manifest(path)
    assert manifest["workers"] == 2
    for shard in range(2):
        assert shard_checkpoint_path(path, shard, 2).exists()


def test_rejects_nonpositive_workers(tmp_path):
    with pytest.raises(WorkloadError, match="at least one worker"):
        run_sharded_checkpointed(TRACE, tmp_path / "ckpt.json", SPEC, workers=0)


# -- kill and resume ---------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_kill_and_resume_is_bit_identical(tmp_path, workers):
    """A killed sharded run resumes (fresh processes) to the exact summary."""
    path = kill_all_shards(tmp_path, workers, kill_at=40)
    # The manifest and one checkpoint per shard survived the kill.
    assert path.exists()
    summary = run_sharded_checkpointed(
        TRACE, path, SPEC, workers=workers, fingerprint=FINGERPRINT
    )
    assert summary == REFERENCE
    assert list(tmp_path.iterdir()) == []


def test_fast_path_policy_kill_and_resume_is_bit_identical(tmp_path):
    """TargetUtilization — the tier-1 warm-hit fast-path policy — killed
    mid-trace resumes to the exact uncheckpointed summary: the fast path
    leaves nothing out of the snapshots that a resume would need."""
    import dataclasses

    from repro.faas.autoscale import TargetUtilization

    spec = dataclasses.replace(
        SPEC,
        fleet=FleetConfig(
            max_containers=3,
            keep_alive_s=60.0,
            policy=TargetUtilization(target=0.6, scale_to_zero_grace_s=30.0),
        ),
    )
    reference = replay_shard(spec, TRACE)
    path = kill_all_shards(tmp_path, 2, kill_at=200, spec=spec)
    summary = run_sharded_checkpointed(
        TRACE, path, spec, workers=2, fingerprint=FINGERPRINT
    )
    assert summary == reference


def test_resume_skips_consumed_prefix(tmp_path):
    """The shard checkpoints record real progress, not a restart marker."""
    path = kill_all_shards(tmp_path, 2, kill_at=200)
    consumed = [
        load_checkpoint(shard_checkpoint_path(path, shard, 2))["consumed"]
        for shard in range(2)
    ]
    assert all(count > 0 for count in consumed)
    shards, _, _, resumed = prepare_sharded_checkpoint(
        TRACE, path, SPEC, 2, FINGERPRINT
    )
    assert resumed
    assert shards[0].apps and shards[1].apps


def test_kill_before_any_boundary_resumes_from_zero(tmp_path):
    """A kill before the first window boundary leaves the consumed-0
    initial checkpoints; resume replays every shard from scratch."""
    path = kill_all_shards(tmp_path, 2, kill_at=1)
    summary = run_sharded_checkpointed(
        TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
    )
    assert summary == REFERENCE


# -- manifest validation -----------------------------------------------------


def test_resume_with_wrong_worker_count_fails_loudly(tmp_path):
    path = kill_all_shards(tmp_path, 4, kill_at=40)
    with pytest.raises(CheckpointError, match="4-worker replay.*--workers 2"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_resume_with_wrong_fingerprint_fails_loudly(tmp_path):
    path = kill_all_shards(tmp_path, 2, kill_at=40)
    with pytest.raises(CheckpointError, match="differently-configured"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint={"scale": 0.9}
        )


def test_resume_with_different_trace_fails_on_partition(tmp_path):
    path = kill_all_shards(tmp_path, 2, kill_at=40)
    other = TraceGenerator(
        app_count=6,
        duration_hours=24.0,
        window_hours=6.0,
        mean_requests_per_window=200.0,
        seed=7,
    ).generate()
    with pytest.raises(CheckpointError, match="partitions a different trace"):
        run_sharded_checkpointed(
            other, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_resume_with_missing_shard_file_fails_loudly(tmp_path):
    path = kill_all_shards(tmp_path, 2, kill_at=40)
    shard_checkpoint_path(path, 1, 2).unlink()
    with pytest.raises(CheckpointError, match="shard-1-of-2.*missing"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_corrupted_manifest_fails_loudly(tmp_path):
    path = kill_all_shards(tmp_path, 2, kill_at=40)
    path.write_text(path.read_text()[:25])
    with pytest.raises(CheckpointError, match="corrupted"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_stale_scratch_next_to_manifest_fails_loudly(tmp_path):
    path = kill_all_shards(tmp_path, 2, kill_at=40)
    scratch = tmp_path / "ckpt.json.shard-0-of-2.json.12345.tmp"
    scratch.write_text("{")
    with pytest.raises(CheckpointError, match="crashed mid-write"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_single_run_checkpoint_at_manifest_path_is_rejected(tmp_path):
    """--checkpoint without --workers wrote here; --workers resume refuses."""
    path = tmp_path / "ckpt.json"
    shard = shard_trace(TRACE, 1)[0]
    platform, stream, accumulator = build_shard_replay(SPEC, shard)
    try:
        run_stream_checkpointed(
            platform,
            interrupt_after(stream, 400),
            accumulator,
            path,
            flush_at=math.inf,
            fingerprint=FINGERPRINT,
        )
    except _Interrupt:
        pass
    assert path.exists()
    with pytest.raises(CheckpointError, match="not a sharded-replay manifest"):
        run_sharded_checkpointed(
            TRACE, path, SPEC, workers=2, fingerprint=FINGERPRINT
        )


def test_manifest_at_single_checkpoint_path_is_rejected(tmp_path):
    """The reverse confusion: load_checkpoint on a manifest says so."""
    path = tmp_path / "ckpt.json"
    write_manifest(path, 2, {"app-0": 0}, FINGERPRINT)
    with pytest.raises(CheckpointError, match="sharded-replay manifest"):
        load_checkpoint(path)


def test_unsupported_manifest_format_is_rejected(tmp_path):
    path = tmp_path / "ckpt.json"
    write_manifest(path, 2, {"app-0": 0}, FINGERPRINT)
    data = json.loads(path.read_text())
    data["format"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="unsupported manifest format"):
        load_manifest(path)


# -- kill at any point: the property -----------------------------------------


@settings(max_examples=6, deadline=None)
@given(
    workers=st.sampled_from([1, 2, 4]),
    kill_at=st.integers(min_value=0, max_value=600),
)
def test_kill_anywhere_resume_is_bit_identical(workers, kill_at):
    """Killing every shard after *any* number of arrivals and resuming in
    fresh processes still merges to the unsharded reference."""
    with tempfile.TemporaryDirectory() as tmp:
        path = kill_all_shards(tmp, workers, kill_at)
        summary = run_sharded_checkpointed(
            TRACE, path, SPEC, workers=workers, fingerprint=FINGERPRINT
        )
        assert summary == REFERENCE
