"""Shared workload for the observability suite.

One small-but-busy trace and spec, replayed a handful of ways (plain,
journaled, checkpointed, sharded) by the tests in this package.  Kept
deliberately independent of ``tests/workloads/test_shard_checkpoint.py``
(importing that module replays its reference at import time).
"""

import math

import pytest

from repro.faas.cluster import FleetConfig
from repro.faas.sim import SimPlatformConfig
from repro.obs.journal import JournalWriter
from repro.workloads import TraceGenerator
from repro.workloads.shard import ShardReplaySpec, build_shard_replay

TRACE = TraceGenerator(
    app_count=3,
    duration_hours=12.0,
    window_hours=3.0,
    mean_requests_per_window=150.0,
    seed=21,
).generate()

SPEC = ShardReplaySpec(
    platform=SimPlatformConfig(record_traces=False, jitter_sigma=0.05),
    fleet=FleetConfig(max_containers=3, keep_alive_s=60.0, queue_capacity=2),
    seed=13,
    replay_seed=3,
    scale=0.3,
    window_s=3600.0,
)

FINGERPRINT = {"apps": 3, "scale": 0.3, "seed": 13}

TRACE_SAMPLE = 0.02


def journaled_run(path, trace_sample=TRACE_SAMPLE, spec=SPEC, trace=TRACE):
    """Replay the shared workload with a journal at ``path``."""
    platform, stream, accumulator = build_shard_replay(spec, trace)
    journal = JournalWriter(
        path,
        window_s=spec.window_s,
        fingerprint=FINGERPRINT,
        trace_sample=trace_sample,
    )
    with journal.begin():
        summary = platform.run_stream(
            stream, accumulator, flush_at=math.inf, obs=journal
        )
    return summary


@pytest.fixture(scope="session")
def journal_path(tmp_path_factory):
    """A sealed journal of the shared workload (built once per session)."""
    path = tmp_path_factory.mktemp("obs") / "run.jsonl"
    journaled_run(path)
    return path
