"""PhaseProfiler: the arithmetic behind ``slimstart replay --profile``."""

from repro.obs.profile import PhaseProfiler


class TestPhaseProfiler:
    def test_add_accumulates(self):
        profiler = PhaseProfiler()
        profiler.add("compile", 1.5)
        profiler.add("compile", 0.5)
        assert profiler.seconds("compile") == 2.0

    def test_unknown_phase_is_zero(self):
        assert PhaseProfiler().seconds("nothing") == 0.0

    def test_phase_context_times_the_block(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            sum(range(1000))
        assert profiler.seconds("work") > 0.0

    def test_phase_records_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("doomed"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert profiler.seconds("doomed") > 0.0

    def test_wrap_iter_passes_items_through(self):
        profiler = PhaseProfiler()
        assert list(profiler.wrap_iter(iter(range(5)), "compile")) == [
            0, 1, 2, 3, 4,
        ]
        assert profiler.seconds("compile") > 0.0

    def test_wrap_iter_counts_producer_time_only(self):
        import time

        def slow_producer():
            time.sleep(0.02)
            yield 1

        profiler = PhaseProfiler()
        for _ in profiler.wrap_iter(slow_producer(), "compile"):
            time.sleep(0.05)  # consumer time must NOT be credited
        assert 0.01 < profiler.seconds("compile") < 0.05

    def test_derive_is_total_minus_parts(self):
        profiler = PhaseProfiler()
        profiler.add("total", 10.0)
        profiler.add("compile", 3.0)
        profiler.add("checkpoint-write", 2.0)
        profiler.derive("event-loop", "total", "compile", "checkpoint-write")
        assert profiler.seconds("event-loop") == 5.0

    def test_derive_floors_at_zero(self):
        profiler = PhaseProfiler()
        profiler.add("total", 1.0)
        profiler.add("compile", 2.0)
        profiler.derive("event-loop", "total", "compile")
        assert profiler.seconds("event-loop") == 0.0

    def test_report_is_sorted_with_rates(self):
        profiler = PhaseProfiler()
        profiler.add("merge", 2.0)
        profiler.add("compile", 4.0)
        report = profiler.report(requests=1000)
        assert list(report) == ["compile", "merge"]
        assert report["compile"] == {"seconds": 4.0, "requests_per_s": 250.0}

    def test_report_omits_rates_without_requests(self):
        profiler = PhaseProfiler()
        profiler.add("merge", 2.0)
        assert profiler.report() == {"merge": {"seconds": 2.0}}

    def test_report_skips_rate_for_zero_second_phase(self):
        profiler = PhaseProfiler()
        profiler.add("idle", 0.0)
        assert profiler.report(requests=10) == {"idle": {"seconds": 0.0}}
