"""The read side: stream queries, tails, and run summaries.

``slimstart obs`` must answer questions about a journal without loading
it — these tests pin the filters' conjunctive semantics (including the
hypothesis property that adding a filter never adds rows), the bounded
tail, and the summary totals' agreement with the run's own report.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.obs.journal import row_time
from repro.obs.query import query_rows, read_rows, summarize_journal, tail_rows

from tests.obs.conftest import SPEC, TRACE, journaled_run
from repro.workloads.shard import build_shard_replay

import math


class TestReadRows:
    def test_skips_header_and_control_rows(self, journal_path):
        rows = list(read_rows(journal_path))
        assert rows
        assert not [
            r for r in rows if r["kind"] in ("journal", "boundary", "end")
        ]

    def test_control_flag_includes_markers(self, journal_path):
        kinds = {r["kind"] for r in read_rows(journal_path, control=True)}
        assert "boundary" in kinds and "end" in kinds

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="not found"):
            list(read_rows(tmp_path / "absent.jsonl"))

    def test_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "checkpoint"}\n')
        with pytest.raises(WorkloadError, match="not a run journal"):
            list(read_rows(path))

    def test_torn_tail_ends_the_stream(self, journal_path, tmp_path):
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(journal_path.read_bytes() + b'{"kind": "win')
        assert list(read_rows(torn)) == list(read_rows(journal_path))


class TestQueryRows:
    def test_kind_filter(self, journal_path):
        rows = list(query_rows(journal_path, kind="scale"))
        assert rows
        assert all(r["kind"] == "scale" for r in rows)

    def test_app_filter(self, journal_path):
        apps = {r["app"] for r in read_rows(journal_path) if "app" in r}
        target = sorted(apps)[0]
        rows = list(query_rows(journal_path, app=target))
        assert rows
        assert all(r["app"] == target for r in rows)

    def test_time_window_is_inclusive_exclusive(self, journal_path):
        times = sorted(row_time(r) for r in read_rows(journal_path))
        lo, hi = times[len(times) // 4], times[3 * len(times) // 4]
        rows = list(query_rows(journal_path, since=lo, until=hi))
        assert rows
        assert all(lo <= row_time(r) < hi for r in rows)

    @settings(max_examples=30, deadline=None)
    @given(
        kind=st.sampled_from(
            [None, "window", "scale", "shed", "provision", "span"]
        ),
        app=st.sampled_from([None, "app000", "app001", "app002", "ghost"]),
        since=st.one_of(st.none(), st.floats(0.0, 48 * 3600.0)),
        until=st.one_of(st.none(), st.floats(0.0, 48 * 3600.0)),
    )
    def test_filters_compose_conjunctively(
        self, journal_path, kind, app, since, until
    ):
        """query(A ∧ B) ⊆ query(A): adding a filter never adds rows."""

        def keyed(rows):
            return [json.dumps(r, sort_keys=True) for r in rows]

        both = set(
            keyed(
                query_rows(
                    journal_path, kind=kind, app=app, since=since, until=until
                )
            )
        )
        for loosened in (
            query_rows(journal_path, kind=kind, app=app),
            query_rows(journal_path, kind=kind, since=since, until=until),
            query_rows(journal_path, app=app, since=since, until=until),
        ):
            assert both <= set(keyed(loosened))


class TestTailRows:
    def test_returns_last_n_data_rows(self, journal_path):
        everything = list(read_rows(journal_path))
        assert tail_rows(journal_path, 5) == everything[-5:]

    def test_count_larger_than_journal_returns_all(self, journal_path):
        everything = list(read_rows(journal_path))
        assert tail_rows(journal_path, 10**6) == everything

    def test_nonpositive_count_is_empty(self, journal_path):
        assert tail_rows(journal_path, 0) == []
        assert tail_rows(journal_path, -3) == []


class TestSummarize:
    def test_totals_match_the_run_report(self, journal_path):
        platform, stream, accumulator = build_shard_replay(SPEC, TRACE)
        report = platform.run_stream(stream, accumulator, flush_at=math.inf)
        summary = summarize_journal(journal_path)
        assert summary["arrivals"] == report.arrivals
        assert summary["completed"] == report.completed
        assert summary["shed"] == report.shed
        assert summary["windows"] >= 1
        assert summary["start_s"] is not None
        assert summary["end_s"] >= summary["start_s"]

    def test_per_app_rates_are_population_rates(self, journal_path):
        summary = summarize_journal(journal_path)
        assert summary["apps"]
        for app in summary["apps"].values():
            assert app["arrivals"] == app["completed"] + app["shed"]
            if app["completed"]:
                assert (
                    app["cold_start_rate"]
                    == app["cold_starts"] / app["completed"]
                )

    def test_counts_follow_the_event_rows(self, journal_path):
        rows = list(read_rows(journal_path))
        summary = summarize_journal(journal_path)
        by_kind = {}
        for row in rows:
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + 1
        assert summary["scaling_decisions"] == by_kind.get("scale", 0)
        assert summary["spans"] == by_kind.get("span", 0)
        assert summary["provisions"] == by_kind.get("provision", 0)
        assert summary["containers_booted"] == sum(
            r["booted"] for r in rows if r["kind"] == "scale"
        )

    def test_summary_survives_kill_and_resume_decomposition(self, tmp_path):
        # Two delta rows for one (window, app) must sum exactly like one.
        journaled_run(tmp_path / "run.jsonl")
        reference = summarize_journal(tmp_path / "run.jsonl")
        # Rewrite the journal with every window row split into two deltas.
        split = tmp_path / "split.jsonl"
        with open(split, "w", encoding="utf-8") as out:
            for line in (tmp_path / "run.jsonl").read_text().splitlines():
                row = json.loads(line)
                if row.get("kind") == "window" and row["completed"] >= 2:
                    half = dict(row)
                    half["completed"] = row["completed"] // 2
                    half["arrivals"] = half["completed"] + half["shed"]
                    rest = dict(row)
                    rest["completed"] = row["completed"] - half["completed"]
                    rest["arrivals"] = rest["completed"] + rest["shed"]
                    rest["cold_starts"] = 0
                    half["queue_ms_sum"] = 0.0
                    out.write(json.dumps(half, sort_keys=True) + "\n")
                    out.write(json.dumps(rest, sort_keys=True) + "\n")
                else:
                    out.write(line + "\n")
        recomposed = summarize_journal(split)
        for field in ("arrivals", "completed", "shed", "cold_starts"):
            assert recomposed[field] == reference[field]
