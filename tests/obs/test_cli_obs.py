"""``slimstart replay --journal`` and the ``slimstart obs`` surface."""

import json

import pytest

from repro.cli import build_parser, main

REPLAY = [
    "replay",
    "--apps", "3",
    "--duration-hours", "24",
    "--window-hours", "12",
    "--scale", "0.05",
    "--seed", "7",
]


def journaled_replay(tmp_path, capsys, extra=()):
    journal = tmp_path / "run.jsonl"
    assert main(REPLAY + ["--journal", str(journal), *extra]) == 0
    return journal, capsys.readouterr().out


class TestReplayFlags:
    def test_journal_flag_writes_and_announces(self, tmp_path, capsys):
        journal, out = journaled_replay(tmp_path, capsys)
        assert journal.exists()
        assert f"journal written to {journal}" in out
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["kind"] == "journal"

    def test_journaled_report_matches_plain(self, tmp_path, capsys):
        assert main(REPLAY) == 0
        plain = capsys.readouterr().out
        _, journaled = journaled_replay(tmp_path, capsys)
        stop = journaled.index("journal written to")
        assert journaled[:stop].rstrip() == plain.rstrip()

    def test_trace_sample_requires_journal(self, capsys):
        assert main(REPLAY + ["--trace-sample", "0.5"]) == 1
        assert "--journal" in capsys.readouterr().err

    def test_trace_sample_range_is_validated(self, capsys):
        assert main(REPLAY + ["--trace-sample", "1.5"]) == 1
        assert "[0, 1]" in capsys.readouterr().err

    def test_journal_with_workers_needs_checkpoint(self, capsys):
        assert main(REPLAY + ["--journal", "j.jsonl", "--workers", "2"]) == 1
        assert "--checkpoint" in capsys.readouterr().err

    def test_profile_is_single_process_only(self, capsys):
        assert main(REPLAY + ["--profile", "--workers", "2"]) == 1
        assert "--profile" in capsys.readouterr().err

    def test_profile_prints_phase_table(self, capsys, tmp_path):
        assert main(
            REPLAY
            + ["--profile", "--checkpoint", str(tmp_path / "replay.ckpt")]
        ) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        for phase in ("compile", "event-loop", "checkpoint-write", "total"):
            assert phase in out

    def test_progress_heartbeats_on_stderr(self, capsys):
        assert main(REPLAY + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "window(s) flushed" in err
        assert "events/s" in err

    def test_federated_journal_records_hop_phases(self, tmp_path, capsys):
        journal, _ = journaled_replay(
            tmp_path,
            capsys,
            extra=["--regions", "us,eu", "--trace-sample", "0.1"],
        )
        rows = [
            json.loads(line)
            for line in journal.read_text().splitlines()[1:]
        ]
        spans = [r for r in rows if r["kind"] == "span"]
        assert spans, "federated replay journaled no spans"
        assert all("hop_ms" in s for s in spans)
        assert any(r["kind"] == "window" for r in rows)

    def test_sharded_journal_composes_with_checkpoint(self, tmp_path, capsys):
        journal, out = journaled_replay(
            tmp_path,
            capsys,
            extra=[
                "--workers", "2",
                "--checkpoint", str(tmp_path / "replay.ckpt"),
            ],
        )
        assert journal.exists()
        # Scratch (per-shard journals, checkpoints, manifest) is gone.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.jsonl"]


class TestObsCommands:
    @pytest.fixture()
    def journal(self, tmp_path, capsys):
        journal, _ = journaled_replay(
            tmp_path, capsys, extra=["--trace-sample", "0.05"]
        )
        return journal

    def test_summarize_prints_per_app_table(self, journal, capsys):
        assert main(["obs", "summarize", str(journal)]) == 0
        out = capsys.readouterr().out
        assert f"journal  : {journal}" in out
        for field in (
            "arrivals", "completed", "scaling decisions",
            "containers booted", "GB-seconds", "trace spans",
        ):
            assert field in out

    def test_summarize_json_round_trips(self, journal, capsys):
        assert main(["obs", "summarize", str(journal), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["arrivals"] == payload["completed"] + payload["shed"]

    def test_query_filters_by_kind_and_app(self, journal, capsys):
        assert main(
            ["obs", "query", str(journal), "--kind", "window", "--json"]
        ) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert rows and all(r["kind"] == "window" for r in rows)
        app = rows[0]["app"]
        assert main(
            ["obs", "query", str(journal), "--kind", "window", "--app", app]
        ) == 0
        out = capsys.readouterr().out
        assert out and all(app in line for line in out.splitlines())

    def test_query_field_projection(self, journal, capsys):
        assert main(
            ["obs", "query", str(journal), "--kind", "scale",
             "--field", "booted"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out and all(line.isdigit() for line in out)

    def test_query_time_bounds(self, journal, capsys):
        assert main(
            ["obs", "query", str(journal), "--kind", "window", "--json",
             "--since", "0", "--until", "43200"]
        ) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert rows and all(0 <= r["start_s"] < 43200 for r in rows)

    def test_tail_returns_last_lines(self, journal, capsys):
        assert main(["obs", "tail", str(journal), "-n", "3", "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3

    def test_missing_journal_fails_loudly(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_kind_choices_are_validated_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["obs", "query", "j.jsonl", "--kind", "bogus"]
            )

    def test_obs_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])
