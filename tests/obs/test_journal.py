"""The journal's contract: exact rows, durable boundaries, zero drift.

Everything observability promises hangs off three properties pinned
here: a journaled replay reports *exactly* what a plain one does, a
killed-and-resumed journaled run leaves a byte-identical journal, and a
sharded run's merged journal matches the 1-worker one row for row.
"""

import json
import math

import pytest

from repro.common.errors import CheckpointError
from repro.faas.autoscale import make_scaling_policy
from repro.faas.cluster import FleetConfig
from repro.faas.snapshot import run_stream_checkpointed
from repro.obs.journal import (
    JOURNAL_FORMAT,
    JournalWriter,
    merge_journals,
    row_time,
    shard_journal_path,
)
from repro.workloads.shard import (
    build_shard_replay,
    prepare_sharded_checkpoint,
    run_sharded_checkpointed,
)

from tests.obs.conftest import (
    FINGERPRINT,
    SPEC,
    TRACE,
    TRACE_SAMPLE,
    journaled_run,
)


def rows_of(path, control=False):
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    if control:
        return rows
    return [r for r in rows if r["kind"] not in ("journal", "boundary", "end")]


class _Interrupt(Exception):
    """Simulated kill: raised from inside the arrival stream."""


def interrupt_after(stream, count):
    for fed, item in enumerate(stream):
        if fed == count:
            raise _Interrupt
        yield item


class TestBehaviourIdentity:
    def test_journaled_summary_equals_plain(self, tmp_path):
        platform, stream, accumulator = build_shard_replay(SPEC, TRACE)
        plain = platform.run_stream(stream, accumulator, flush_at=math.inf)
        assert journaled_run(tmp_path / "run.jsonl") == plain

    def test_forced_slow_path_journal_is_byte_identical(self, tmp_path):
        """The tier-1 warm-hit fast path is invisible to observability:
        a TargetUtilization replay journals byte-for-byte the same rows
        (scaling decisions, windows, spans) whether the fast path is on
        or forced off — the skipped consultations are exactly the ones
        that journal nothing."""
        import dataclasses

        def tu_spec():
            return dataclasses.replace(
                SPEC,
                fleet=FleetConfig(
                    max_containers=3,
                    keep_alive_s=60.0,
                    queue_capacity=2,
                    policy=make_scaling_policy("target-utilization"),
                ),
            )

        fast_summary = journaled_run(tmp_path / "fast.jsonl", spec=tu_spec())
        platform, stream, accumulator = build_shard_replay(tu_spec(), TRACE)
        for fleet in platform._fleets.values():
            assert fleet.fast_path == 1
            fleet.fast_path = 0
        journal = JournalWriter(
            tmp_path / "slow.jsonl",
            window_s=SPEC.window_s,
            fingerprint=FINGERPRINT,
            trace_sample=TRACE_SAMPLE,
        )
        with journal.begin():
            slow_summary = platform.run_stream(
                stream, accumulator, flush_at=math.inf, obs=journal
            )
        assert slow_summary == fast_summary
        assert (tmp_path / "slow.jsonl").read_bytes() == (
            tmp_path / "fast.jsonl"
        ).read_bytes()

    def test_checkpointed_journal_is_byte_identical_to_plain(self, tmp_path):
        journaled_run(tmp_path / "plain.jsonl")
        platform, stream, accumulator = build_shard_replay(SPEC, TRACE)
        journal = JournalWriter(
            tmp_path / "ckpt.jsonl",
            window_s=SPEC.window_s,
            fingerprint=FINGERPRINT,
            trace_sample=TRACE_SAMPLE,
        )
        run_stream_checkpointed(
            platform,
            stream,
            accumulator,
            tmp_path / "replay.ckpt",
            every_s=SPEC.window_s,
            flush_at=math.inf,
            fingerprint=FINGERPRINT,
            journal=journal,
        )
        assert (tmp_path / "ckpt.jsonl").read_bytes() == (
            tmp_path / "plain.jsonl"
        ).read_bytes()


class TestStructure:
    def test_header_and_kinds(self, journal_path):
        rows = rows_of(journal_path, control=True)
        header = rows[0]
        assert header["kind"] == "journal"
        assert header["format"] == JOURNAL_FORMAT
        assert header["window_s"] == SPEC.window_s
        assert header["trace_sample"] == TRACE_SAMPLE
        assert rows[-1] == {"kind": "end"}
        kinds = {r["kind"] for r in rows}
        assert {"window", "scale", "provision", "span", "boundary"} <= kinds

    def test_boundary_markers_are_strictly_monotonic(self, journal_path):
        markers = [
            r for r in rows_of(journal_path, control=True)
            if r["kind"] == "boundary"
        ]
        boundaries = [m["boundary"] for m in markers]
        consumed = [m["consumed"] for m in markers]
        assert boundaries == sorted(set(boundaries))
        assert consumed == sorted(consumed)

    def test_window_rows_conserve_arrivals(self, journal_path):
        windows = [r for r in rows_of(journal_path) if r["kind"] == "window"]
        assert windows, "no window rows journaled"
        for row in windows:
            assert row["arrivals"] == row["completed"] + row["shed"]
            assert row["start_s"] == row["window"] * SPEC.window_s

    def test_every_data_row_has_a_time(self, journal_path):
        for row in rows_of(journal_path):
            assert row_time(row) is not None

    def test_span_rows_sample_the_token_stream(self, journal_path):
        spans = [r for r in rows_of(journal_path) if r["kind"] == "span"]
        assert spans, "no spans sampled"
        interval = max(1, round(1.0 / TRACE_SAMPLE))
        assert all(s["trace_id"] % interval == 0 for s in spans)
        for span in spans:
            assert {
                "app", "entry", "arrival_s", "queue_ms", "cold",
                "cold_boot_ms", "execute_ms", "hop_ms",
            } <= span.keys()

    def test_zero_sample_rate_journals_no_spans(self, tmp_path):
        journaled_run(tmp_path / "run.jsonl", trace_sample=0.0)
        assert not [
            r for r in rows_of(tmp_path / "run.jsonl") if r["kind"] == "span"
        ]


class TestScalingDecisions:
    @pytest.mark.parametrize(
        "policy, extras",
        [
            ("per-request", set()),
            ("target-utilization", {"target", "desired"}),
            ("panic-window", {"stable_rate", "panic_rate", "panicking"}),
            ("predictive", {"ratio", "forecast", "prewarm"}),
        ],
    )
    def test_policy_records_reach_the_journal(self, tmp_path, policy, extras):
        import dataclasses

        spec = dataclasses.replace(
            SPEC,
            fleet=FleetConfig(
                max_containers=3,
                keep_alive_s=60.0,
                policy=make_scaling_policy(policy),
            ),
        )
        journaled_run(tmp_path / "run.jsonl", spec=spec)
        scales = [
            r for r in rows_of(tmp_path / "run.jsonl") if r["kind"] == "scale"
        ]
        assert scales, f"{policy} journaled no scaling decisions"
        base = {"policy", "queued", "in_flight", "live", "want", "booted"}
        for row in scales:
            assert row["policy"] == policy
            assert base | extras <= row.keys()
            assert 0 <= row["booted"] <= row["want"]


class TestKillAndResume:
    @pytest.mark.parametrize("kill_at", [40, 300, 900])
    def test_resumed_journal_is_byte_identical(self, tmp_path, kill_at):
        def checkpointed(journal_file, stream_wrap=lambda s: s, keep=False):
            platform, stream, accumulator = build_shard_replay(SPEC, TRACE)
            journal = JournalWriter(
                journal_file,
                window_s=SPEC.window_s,
                fingerprint=FINGERPRINT,
                trace_sample=TRACE_SAMPLE,
            )
            return run_stream_checkpointed(
                platform,
                stream_wrap(stream),
                accumulator,
                tmp_path / "replay.ckpt",
                every_s=SPEC.window_s,
                flush_at=math.inf,
                fingerprint=FINGERPRINT,
                journal=journal,
                keep=keep,
            )

        reference = checkpointed(tmp_path / "ref.jsonl")
        with pytest.raises(_Interrupt):
            checkpointed(
                tmp_path / "killed.jsonl",
                stream_wrap=lambda s: interrupt_after(s, kill_at),
                keep=True,
            )
        resumed = checkpointed(tmp_path / "killed.jsonl")
        assert resumed == reference
        assert (tmp_path / "killed.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()

    def test_resume_rejects_foreign_journal(self, tmp_path):
        journaled_run(tmp_path / "run.jsonl")
        journal = JournalWriter(
            tmp_path / "run.jsonl",
            window_s=SPEC.window_s,
            fingerprint=FINGERPRINT,
            trace_sample=TRACE_SAMPLE,
        )
        with pytest.raises(CheckpointError) as err:
            journal.resume(consumed=10**9)
        assert "run.jsonl" in str(err.value)
        assert str(10**9) in str(err.value)

    def test_abort_keeps_only_durable_boundaries(self, tmp_path):
        platform, stream, accumulator = build_shard_replay(SPEC, TRACE)
        journal = JournalWriter(
            tmp_path / "run.jsonl",
            window_s=SPEC.window_s,
            fingerprint=FINGERPRINT,
        )
        journal.begin()
        try:
            platform.run_stream(
                interrupt_after(stream, 500),
                accumulator,
                flush_at=math.inf,
                obs=journal,
            )
        except _Interrupt:
            platform.stream_abort()
            journal.abort()
        rows = rows_of(tmp_path / "run.jsonl", control=True)
        assert rows[-1]["kind"] == "boundary"  # no tail, no end row


class TestHeaderValidation:
    @pytest.mark.parametrize(
        "override, fragment",
        [
            ({"window_s": 60.0}, "window_s"),
            ({"fingerprint": {"other": 1}}, "fingerprint"),
            ({"trace_sample": 0.5}, "trace_sample"),
        ],
    )
    def test_mismatched_config_names_field_and_values(
        self, journal_path, override, fragment
    ):
        config = dict(
            window_s=SPEC.window_s,
            fingerprint=FINGERPRINT,
            trace_sample=TRACE_SAMPLE,
        )
        config.update(override)
        journal = JournalWriter(journal_path, **config)
        with pytest.raises(CheckpointError) as err:
            journal.resume(consumed=1)
        message = str(err.value)
        assert str(journal_path) in message
        assert fragment in message
        # expected-vs-found: both values appear in the message
        assert repr(override[fragment]) in message

    def test_non_journal_file_is_named(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "checkpoint"}) + "\n")
        journal = JournalWriter(path, window_s=SPEC.window_s)
        with pytest.raises(CheckpointError) as err:
            journal.resume(consumed=1)
        assert "'checkpoint'" in str(err.value)
        assert "'journal'" in str(err.value)


class TestShardedMerge:
    def test_merged_journal_matches_single_worker(self, tmp_path):
        single = run_sharded_checkpointed(
            TRACE,
            tmp_path / "one.ckpt",
            SPEC,
            workers=1,
            fingerprint=FINGERPRINT,
            journal=tmp_path / "one.jsonl",
            trace_sample=TRACE_SAMPLE,
        )
        sharded = run_sharded_checkpointed(
            TRACE,
            tmp_path / "two.ckpt",
            SPEC,
            workers=2,
            fingerprint=FINGERPRINT,
            journal=tmp_path / "two.jsonl",
            trace_sample=TRACE_SAMPLE,
        )
        assert sharded == single
        # Shard scratch journals are cleaned up with the checkpoints.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "one.jsonl",
            "two.jsonl",
        ]
        # Scale/shed/provision rows are partition-independent (each app
        # lives wholly in one shard, so its fleet's event history does
        # not depend on the worker count).  Window *delta* rows decompose
        # differently — each shard flushes on its own stream's
        # boundaries — but their per-(window, app) sums are exact.  Span
        # rows sample per-shard token streams and are only compared at a
        # fixed worker count (kill/resume identity, pinned below).
        def events(path):
            return sorted(
                json.dumps(r, sort_keys=True)
                for r in rows_of(path)
                if r["kind"] in ("scale", "shed", "provision")
            )

        def window_sums(path):
            sums = {}
            for r in rows_of(path):
                if r["kind"] != "window":
                    continue
                tally = sums.setdefault((r["window"], r["app"]), [0, 0, 0.0])
                tally[0] += r["completed"]
                tally[1] += r["shed"]
                tally[2] += r["queue_ms_sum"]
            return sums

        assert events(tmp_path / "two.jsonl") == events(tmp_path / "one.jsonl")
        assert window_sums(tmp_path / "two.jsonl") == window_sums(
            tmp_path / "one.jsonl"
        )

    def test_sharded_kill_resume_merges_byte_identical(self, tmp_path):
        workers = 2
        reference = run_sharded_checkpointed(
            TRACE,
            tmp_path / "ref.ckpt",
            SPEC,
            workers=workers,
            fingerprint=FINGERPRINT,
            journal=tmp_path / "ref.jsonl",
            trace_sample=TRACE_SAMPLE,
        )
        # Kill every shard mid-trace, in-process, exactly as the pool
        # workers would die: per-shard checkpoints and journals survive.
        path = tmp_path / "bench.ckpt"
        shards, shard_paths, fingerprints, resumed = prepare_sharded_checkpoint(
            TRACE, path, SPEC, workers, FINGERPRINT
        )
        assert not resumed
        for shard_index, (shard, shard_path, shard_fp) in enumerate(
            zip(shards, shard_paths, fingerprints)
        ):
            platform, stream, accumulator = build_shard_replay(SPEC, shard)
            journal = JournalWriter(
                shard_journal_path(tmp_path / "bench.jsonl", shard_index, workers),
                window_s=SPEC.window_s,
                fingerprint=shard_fp,
                trace_sample=TRACE_SAMPLE,
            )
            with pytest.raises(_Interrupt):
                run_stream_checkpointed(
                    platform,
                    interrupt_after(stream, 150),
                    accumulator,
                    shard_path,
                    flush_at=math.inf,
                    keep=True,
                    fingerprint=shard_fp,
                    journal=journal,
                )
        summary = run_sharded_checkpointed(
            TRACE,
            path,
            SPEC,
            workers=workers,
            fingerprint=FINGERPRINT,
            journal=tmp_path / "bench.jsonl",
            trace_sample=TRACE_SAMPLE,
        )
        assert summary == reference
        assert (tmp_path / "bench.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()

    def test_merge_validates_shard_headers(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text(json.dumps({"kind": "nope"}) + "\n")
        with pytest.raises(CheckpointError) as err:
            merge_journals(
                [bogus], tmp_path / "out.jsonl", window_s=SPEC.window_s
            )
        assert "bogus.jsonl" in str(err.value)


class TestWriterValidation:
    def test_rejects_nonpositive_window(self, tmp_path):
        with pytest.raises(ValueError):
            JournalWriter(tmp_path / "j.jsonl", window_s=0.0)

    def test_rejects_out_of_range_sample_rate(self, tmp_path):
        with pytest.raises(ValueError):
            JournalWriter(tmp_path / "j.jsonl", window_s=1.0, trace_sample=1.5)

    def test_sample_rate_rounds_to_span_interval(self, tmp_path):
        journal = JournalWriter(
            tmp_path / "j.jsonl", window_s=1.0, trace_sample=0.01
        )
        assert journal.span_interval == 100
        assert journal.samples_spans()
        off = JournalWriter(tmp_path / "k.jsonl", window_s=1.0)
        assert off.span_interval == 0
        assert not off.samples_spans()
