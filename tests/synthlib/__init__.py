"""Tests for repro.synthlib (package file keeps duplicate basenames importable)."""
