"""Tests for the flagship stand-in libraries (paper-informed structure)."""

import pytest

from repro.synthlib.catalog import (
    FLAGSHIP_FACTORIES,
    generic_library,
    igraph_like,
    nltk_like,
    sklearn_like,
    xmlschema_like,
)
from repro.synthlib.spec import Ecosystem, ModuleKey


class TestFlagshipStructure:
    def test_all_factories_build_and_validate(self):
        eco = Ecosystem()
        for factory in FLAGSHIP_FACTORIES.values():
            eco.add(factory())
        eco.validate()

    def test_igraph_module_count_matches_table2(self):
        assert igraph_like().module_count == 86

    def test_igraph_drawing_share_matches_table1(self):
        library = igraph_like()
        share = library.subtree_init_cost_ms("drawing") / library.total_init_cost_ms
        assert share == pytest.approx(0.37, abs=0.005)

    def test_nltk_table4_clusters_exist(self):
        library = nltk_like()
        for cluster in ("sem", "stem", "parse", "tag", "tokenize"):
            assert library.has_module(cluster)

    def test_nltk_sem_share_matches_table4(self):
        library = nltk_like()
        share = library.subtree_init_cost_ms("sem") / library.total_init_cost_ms
        # Table IV: sem is 8.25 % of app init where nltk is ~70 % => ~11.8 %.
        assert share == pytest.approx(0.118, abs=0.005)

    def test_xmlschema_depends_on_elementpath(self):
        library = xmlschema_like()
        assert "slelementpath" in library.module("").external_imports

    def test_sklearn_dependency_override(self):
        library = sklearn_like(dependencies=("slnumpy",))
        assert library.module("").external_imports == ("slnumpy",)

    def test_factories_are_deterministic(self):
        assert igraph_like() == igraph_like()


class TestGenericLibrary:
    def test_exact_module_count(self):
        library = generic_library(
            "gen",
            module_count=37,
            depth=5,
            total_init_cost_ms=100.0,
            total_memory_kb=1000.0,
        )
        assert library.module_count == 37

    def test_tiny_library(self):
        library = generic_library(
            "tiny",
            module_count=3,
            depth=3,
            total_init_cost_ms=10.0,
            total_memory_kb=100.0,
        )
        assert library.module_count == 3

    def test_dependencies_are_root_external_imports(self):
        library = generic_library(
            "gen",
            module_count=10,
            depth=3,
            total_init_cost_ms=10.0,
            total_memory_kb=100.0,
            dependencies=("slnumpy",),
        )
        assert library.module("").external_imports == ("slnumpy",)

    def test_init_cost_preserved(self):
        library = generic_library(
            "gen",
            module_count=25,
            depth=4,
            total_init_cost_ms=321.0,
            total_memory_kb=1000.0,
        )
        assert library.total_init_cost_ms == pytest.approx(321.0)

    def test_whole_library_loads_from_root(self):
        library = generic_library(
            "gen",
            module_count=30,
            depth=4,
            total_init_cost_ms=50.0,
            total_memory_kb=500.0,
        )
        eco = Ecosystem([library])
        assert len(eco.import_closure([ModuleKey("gen", "")])) == 30
