"""Tests for the cost model."""

import pytest

from repro.synthlib.costmodel import CostModel, env_scale
from repro.synthlib.spec import Ecosystem, ModuleKey

from tests.conftest import make_small_library


@pytest.fixture()
def model(small_ecosystem) -> CostModel:
    return CostModel(ecosystem=small_ecosystem, scale=0.5)


def test_scale_must_be_positive(small_ecosystem):
    with pytest.raises(ValueError):
        CostModel(ecosystem=small_ecosystem, scale=0.0)


def test_init_cost_scaled(model):
    keys = [ModuleKey("libx", ""), ModuleKey("libx", "core")]
    assert model.init_cost_ms(keys) == pytest.approx((10 + 20) * 0.5)


def test_memory_not_scaled(model):
    keys = [ModuleKey("libx", "core")]
    assert model.memory_kb(keys) == 2000.0


def test_cold_start_closure_cost(model):
    assert model.cold_start_init_ms([ModuleKey("libx", "")]) == pytest.approx(50.0)


def test_cold_start_with_deferral(model):
    cost = model.cold_start_init_ms(
        [ModuleKey("libx", "")],
        deferred=frozenset({ModuleKey("libx", "extra")}),
    )
    assert cost == pytest.approx((100 - 65) * 0.5)


def test_function_cost(model):
    assert model.function_cost_ms("libx.core.fast:work") == pytest.approx(1.0)


class TestEnvScale:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("SLIMSTART_COST_SCALE", raising=False)
        assert env_scale(2.0) == 2.0

    def test_reads_env(self, monkeypatch):
        monkeypatch.setenv("SLIMSTART_COST_SCALE", "0.25")
        assert env_scale() == 0.25

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("SLIMSTART_COST_SCALE", "fast")
        with pytest.raises(ValueError):
            env_scale()

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("SLIMSTART_COST_SCALE", "0")
        with pytest.raises(ValueError):
            env_scale()
