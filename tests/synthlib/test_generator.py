"""Tests for on-disk materialization of synthetic libraries."""

import subprocess
import sys
import textwrap

import pytest

from repro.synthlib.generator import materialize_ecosystem
from repro.synthlib.spec import Ecosystem, ModuleKey

from tests.conftest import make_dependent_library, make_small_library


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    eco = Ecosystem([make_small_library(), make_dependent_library()])
    ws = tmp_path_factory.mktemp("genws")
    materialize_ecosystem(eco, ws, scale=0.02)
    return ws


def _run_in_subprocess(workspace, code: str) -> str:
    """Run code with the workspace on sys.path in a clean interpreter."""
    script = textwrap.dedent(code)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=workspace,
        check=True,
    )
    return result.stdout.strip()


class TestLayout:
    def test_runtime_module_written(self, workspace):
        assert (workspace / "_slimstart_runtime.py").is_file()

    def test_package_layout(self, workspace):
        assert (workspace / "libx" / "__init__.py").is_file()
        assert (workspace / "libx" / "core" / "__init__.py").is_file()
        assert (workspace / "libx" / "core" / "fast.py").is_file()
        assert (workspace / "libx" / "extra" / "heavy.py").is_file()

    def test_bytecode_precompiled(self, workspace):
        assert list((workspace / "libx").glob("__pycache__/*.pyc"))

    def test_import_lines_are_single_statements(self, workspace):
        source = (workspace / "libx" / "__init__.py").read_text()
        assert "import libx.core\n" in source
        assert "import libx.extra\n" in source


class TestRuntimeBehavior:
    def test_import_registers_all_modules(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import libx
            import _slimstart_runtime as rt
            print(len(rt.loaded_modules()))
            """,
        )
        assert out == "5"

    def test_memory_accounting_matches_spec(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import libx
            import _slimstart_runtime as rt
            print(rt.memory_kb())
            """,
        )
        assert float(out) == 10_000.0

    def test_external_import_loads_dependency(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import liby
            import _slimstart_runtime as rt
            mods = rt.loaded_modules()
            print('libx' in mods, len(mods))
            """,
        )
        assert out == "True 7"

    def test_function_calls_recorded_and_cascaded(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import libx
            libx.use_core()
            import _slimstart_runtime as rt
            counts = rt.call_counts()
            print(counts.get('libx:use_core'), counts.get('libx.core:run'),
                  counts.get('libx.core.fast:work'))
            """,
        )
        assert out == "1 1 1"

    def test_resolve_walks_attributes(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import _slimstart_runtime as rt
            module = rt.resolve('libx.core.fast')
            print(module.__name__)
            """,
        )
        assert out == "libx.core.fast"

    def test_import_burns_scaled_time(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import time
            t0 = time.perf_counter()
            import libx
            elapsed_ms = (time.perf_counter() - t0) * 1000
            # 100 ms of spec cost at scale 0.02 -> at least 2 ms of burn.
            print(elapsed_ms >= 2.0)
            """,
        )
        assert out == "True"

    def test_cost_scale_env_override(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import os
            os.environ['SLIMSTART_COST_SCALE'] = '0.5'
            import _slimstart_runtime as rt
            print(rt.COST_SCALE)
            """,
        )
        assert out == "0.5"

    def test_registry_reset(self, workspace):
        out = _run_in_subprocess(
            workspace,
            """
            import libx
            import _slimstart_runtime as rt
            rt.reset()
            print(len(rt.loaded_modules()), rt.memory_kb())
            """,
        )
        assert out == "0 0"


class TestValidationAtMaterialize:
    def test_rejects_nonpositive_scale(self, tmp_path):
        eco = Ecosystem([make_small_library()])
        with pytest.raises(Exception):
            materialize_ecosystem(eco, tmp_path / "w", scale=0.0)

    def test_load_order_matches_spec_closure(self, workspace):
        eco = Ecosystem([make_small_library(), make_dependent_library()])
        expected = [
            key.dotted for key in eco.import_closure([ModuleKey("liby", "")])
        ]
        out = _run_in_subprocess(
            workspace,
            """
            import liby
            import _slimstart_runtime as rt
            print(','.join(rt.load_order()))
            """,
        )
        # The runtime records module_begin before child imports (pre-order),
        # while the spec closure is post-order; compare sets plus the root
        # ordering guarantee instead of exact sequences.
        actual = out.split(",")
        assert set(actual) == set(expected)
        assert actual[0] == "liby"  # root's top-level code starts first
