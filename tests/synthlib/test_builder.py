"""Tests for procedural library construction."""

import pytest

from repro.common.errors import SpecError
from repro.synthlib.builder import ClusterPlan, build_library, _level_counts


class TestClusterPlan:
    def test_rejects_bad_share(self):
        with pytest.raises(SpecError):
            ClusterPlan("c", module_count=3, init_share=1.5)

    def test_rejects_nested_modules_at_depth_two(self):
        with pytest.raises(SpecError):
            ClusterPlan("c", module_count=5, init_share=0.2, depth=2)

    def test_rejects_zero_modules(self):
        with pytest.raises(SpecError):
            ClusterPlan("c", module_count=0, init_share=0.2)


class TestLevelCounts:
    def test_total_preserved(self):
        counts = _level_counts(100, 4)
        assert sum(counts) == 100

    def test_deeper_levels_heavier(self):
        counts = _level_counts(100, 4)
        assert counts == sorted(counts)

    def test_no_empty_intermediate_levels(self):
        counts = _level_counts(7, 5)
        deepest = max(i for i, c in enumerate(counts) if c)
        assert all(counts[i] >= 1 for i in range(deepest))

    def test_zero_levels(self):
        assert _level_counts(5, 0) == []


class TestBuildLibrary:
    @pytest.fixture(scope="class")
    def library(self):
        return build_library(
            "genlib",
            total_init_cost_ms=400.0,
            total_memory_kb=20_000.0,
            seed=3,
            clusters=[
                ClusterPlan("alpha", module_count=12, init_share=0.5, depth=4),
                ClusterPlan("beta", module_count=6, init_share=0.3, depth=3),
                ClusterPlan("util", module_count=1, init_share=0.1, depth=2),
            ],
            shared_utility="util",
        )

    def test_module_count(self, library):
        assert library.module_count == 1 + 12 + 6 + 1

    def test_total_init_cost_preserved(self, library):
        assert library.total_init_cost_ms == pytest.approx(400.0)

    def test_total_memory_preserved(self, library):
        assert library.total_memory_kb == pytest.approx(20_000.0)

    def test_cluster_share_respected(self, library):
        assert library.subtree_init_cost_ms("alpha") == pytest.approx(200.0)
        assert library.subtree_init_cost_ms("beta") == pytest.approx(120.0)

    def test_root_gets_remainder(self, library):
        assert library.module("").init_cost_ms == pytest.approx(40.0)

    def test_root_imports_every_cluster(self, library):
        assert set(library.module("").imports) == {"alpha", "beta", "util"}

    def test_whole_library_loads_from_root(self, library):
        from repro.synthlib.spec import Ecosystem, ModuleKey

        eco = Ecosystem([library])
        closure = eco.import_closure([ModuleKey("genlib", "")])
        assert len(closure) == library.module_count

    def test_orchestrator_calls_all_children(self, library):
        run = next(f for f in library.module("alpha").functions if f.name == "run")
        children = library.children("alpha")
        called = {call.partition(":")[0] for call in run.calls}
        for child in children:
            assert f"genlib.{child}" in called

    def test_shared_utility_called_by_other_clusters(self, library):
        run = next(f for f in library.module("alpha").functions if f.name == "run")
        assert any("genlib.util" in call for call in run.calls)

    def test_package_f0_cascades_to_all_children(self, library):
        for name in library.module_names():
            children = library.children(name)
            if not children or name == "":
                continue
            f0 = next(f for f in library.module(name).functions if f.name == "f0")
            called = {call.partition(":")[0] for call in f0.calls}
            assert called == {f"genlib.{child}" for child in children}

    def test_full_coverage_cascade(self, library):
        """Calling every cluster run must touch every cluster module."""
        from repro.synthlib.spec import Ecosystem

        eco = Ecosystem([library])
        touched = set()

        def walk(qualified, stack):
            if qualified in stack:
                return
            ref = eco.parse_function(qualified)
            touched.add(ref.key.dotted)
            for target in eco.call_targets(ref):
                walk(target.qualified, stack | {qualified})

        for cluster in ("alpha", "beta", "util"):
            walk(f"genlib.{cluster}:run", set())
        cluster_modules = {
            f"genlib.{name}"
            for name in library.module_names()
            if name  # root is exercised via use_* functions instead
        }
        assert cluster_modules <= touched

    def test_deterministic_given_seed(self):
        kwargs = dict(
            total_init_cost_ms=100.0,
            total_memory_kb=1000.0,
            seed=9,
            clusters=[ClusterPlan("a", module_count=5, init_share=0.9, depth=3)],
        )
        one = build_library("det", **kwargs)
        two = build_library("det", **kwargs)
        assert one == two

    def test_shares_over_one_rejected(self):
        with pytest.raises(SpecError):
            build_library(
                "bad",
                total_init_cost_ms=10.0,
                total_memory_kb=10.0,
                clusters=[
                    ClusterPlan("a", module_count=2, init_share=0.7, depth=3),
                    ClusterPlan("b", module_count=2, init_share=0.7, depth=3),
                ],
            )

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(SpecError):
            build_library(
                "bad",
                total_init_cost_ms=10.0,
                total_memory_kb=10.0,
                clusters=[
                    ClusterPlan("a", module_count=2, init_share=0.2, depth=3),
                    ClusterPlan("a", module_count=2, init_share=0.2, depth=3),
                ],
            )

    def test_unknown_shared_utility_rejected(self):
        with pytest.raises(SpecError):
            build_library(
                "bad",
                total_init_cost_ms=10.0,
                total_memory_kb=10.0,
                clusters=[ClusterPlan("a", module_count=2, init_share=0.2, depth=3)],
                shared_utility="ghost",
            )
