"""Tests for the synthetic library specification model."""

import pytest

from repro.common.errors import SpecError
from repro.synthlib.spec import (
    Ecosystem,
    FunctionRef,
    FunctionSpec,
    LibrarySpec,
    ModuleKey,
    ModuleSpec,
)

from tests.conftest import make_dependent_library, make_small_library


class TestModuleKey:
    def test_dotted_root(self):
        assert ModuleKey("libx", "").dotted == "libx"

    def test_dotted_nested(self):
        assert ModuleKey("libx", "a.b").dotted == "libx.a.b"

    def test_ancestors_of_root_is_empty(self):
        assert list(ModuleKey("libx", "").ancestors()) == []

    def test_ancestors_ordered_root_first(self):
        ancestors = list(ModuleKey("libx", "a.b.c").ancestors())
        assert ancestors == [
            ModuleKey("libx", ""),
            ModuleKey("libx", "a"),
            ModuleKey("libx", "a.b"),
        ]

    def test_is_ancestor_of(self):
        assert ModuleKey("libx", "a").is_ancestor_of(ModuleKey("libx", "a.b"))
        assert ModuleKey("libx", "").is_ancestor_of(ModuleKey("libx", "a"))
        assert not ModuleKey("libx", "a").is_ancestor_of(ModuleKey("libx", "ab"))
        assert not ModuleKey("libx", "a").is_ancestor_of(ModuleKey("liby", "a.b"))


class TestFunctionRef:
    def test_parse_root_function(self):
        ref = FunctionRef.parse("libx:ping", ["libx"])
        assert ref.key == ModuleKey("libx", "")
        assert ref.function == "ping"

    def test_parse_nested(self):
        ref = FunctionRef.parse("libx.core.fast:work", ["libx"])
        assert ref.key == ModuleKey("libx", "core.fast")

    def test_missing_colon(self):
        with pytest.raises(SpecError):
            FunctionRef.parse("libx.core", ["libx"])

    def test_unknown_library(self):
        with pytest.raises(SpecError):
            FunctionRef.parse("nope:fn", ["libx"])

    def test_qualified_roundtrip(self):
        text = "libx.core:run"
        assert FunctionRef.parse(text, ["libx"]).qualified == text


class TestSpecValidation:
    def test_function_duplicate_name_rejected(self):
        with pytest.raises(SpecError):
            ModuleSpec(
                name="m",
                functions=(FunctionSpec("f"), FunctionSpec("f")),
            )

    def test_negative_init_cost_rejected(self):
        with pytest.raises(SpecError):
            ModuleSpec(name="m", init_cost_ms=-1.0)

    def test_missing_root_rejected(self):
        with pytest.raises(SpecError):
            LibrarySpec(name="l", modules=(ModuleSpec(name="a"),))

    def test_missing_package_prefix_rejected(self):
        with pytest.raises(SpecError):
            LibrarySpec(
                name="l",
                modules=(ModuleSpec(name=""), ModuleSpec(name="a.b")),
            )

    def test_unknown_import_rejected(self):
        with pytest.raises(SpecError):
            LibrarySpec(
                name="l",
                modules=(ModuleSpec(name="", imports=("ghost",)),),
            )

    def test_self_import_rejected(self):
        with pytest.raises(SpecError):
            LibrarySpec(
                name="l",
                modules=(
                    ModuleSpec(name=""),
                    ModuleSpec(name="a", imports=("a",)),
                ),
            )

    def test_import_cycle_rejected(self):
        with pytest.raises(SpecError, match="cycle"):
            LibrarySpec(
                name="l",
                modules=(
                    ModuleSpec(name=""),
                    ModuleSpec(name="a", imports=("b",)),
                    ModuleSpec(name="b", imports=("a",)),
                ),
            )

    def test_parent_importing_children_is_legal(self):
        # The igraph pattern: packages eagerly import their children.
        spec = LibrarySpec(
            name="l",
            modules=(
                ModuleSpec(name="", imports=("a",)),
                ModuleSpec(name="a", imports=("a.b",)),
                ModuleSpec(name="a.b"),
            ),
        )
        assert spec.module_count == 3


class TestLibraryAccessors:
    def test_children(self, small_library):
        assert small_library.children("") == ["core", "extra"]
        assert small_library.children("core") == ["core.fast"]

    def test_subtree(self, small_library):
        assert small_library.subtree("extra") == ["extra", "extra.heavy"]

    def test_subtree_of_root_is_everything(self, small_library):
        assert len(small_library.subtree("")) == 5

    def test_is_package(self, small_library):
        assert small_library.is_package("core")
        assert not small_library.is_package("core.fast")

    def test_totals(self, small_library):
        assert small_library.total_init_cost_ms == 100.0
        assert small_library.total_memory_kb == 10_000.0

    def test_subtree_init_cost(self, small_library):
        assert small_library.subtree_init_cost_ms("extra") == 65.0

    def test_average_depth(self, small_library):
        # depths: root 1, core 2, core.fast 3, extra 2, extra.heavy 3
        assert small_library.average_depth == pytest.approx(11 / 5)

    def test_unknown_module_raises(self, small_library):
        with pytest.raises(SpecError):
            small_library.module("ghost")


class TestEcosystem:
    def test_duplicate_library_rejected(self, small_library):
        eco = Ecosystem([small_library])
        with pytest.raises(SpecError):
            eco.add(make_small_library())

    def test_parse_module(self, small_ecosystem):
        key = small_ecosystem.parse_module("libx.core.fast")
        assert key == ModuleKey("libx", "core.fast")

    def test_parse_unknown_module(self, small_ecosystem):
        with pytest.raises(SpecError):
            small_ecosystem.parse_module("libx.ghost")

    def test_validate_checks_cross_library_calls(self):
        bad = LibrarySpec(
            name="libz",
            modules=(
                ModuleSpec(
                    name="",
                    functions=(FunctionSpec("f", calls=("libz:ghost",)),),
                ),
            ),
        )
        eco = Ecosystem([bad])
        with pytest.raises(SpecError):
            eco.validate()

    def test_validate_rejects_same_library_external_import(self):
        bad = LibrarySpec(
            name="libz",
            modules=(
                ModuleSpec(name="", external_imports=("libz.sub",)),
                ModuleSpec(name="sub"),
            ),
        )
        eco = Ecosystem([bad])
        with pytest.raises(SpecError):
            eco.validate()


class TestImportClosure:
    def test_root_closure_loads_everything(self, small_ecosystem):
        closure = small_ecosystem.import_closure([ModuleKey("libx", "")])
        assert len(closure) == 5

    def test_closure_includes_external_deps(self, small_ecosystem):
        closure = small_ecosystem.import_closure([ModuleKey("liby", "")])
        dotted = {key.dotted for key in closure}
        assert "libx" in dotted  # liby's root eagerly imports libx
        assert len(closure) == 7

    def test_importing_nested_loads_ancestors(self, small_ecosystem):
        closure = small_ecosystem.import_closure([ModuleKey("libx", "core.fast")])
        dotted = {key.dotted for key in closure}
        # Ancestor packages execute too (and here the root's own imports
        # cascade to the whole library, like real igraph/nltk roots do).
        assert {"libx", "libx.core", "libx.core.fast"} <= dotted

    def test_closure_order_is_completion_order(self, small_ecosystem):
        # A package that imports its children *completes* after them —
        # CPython semantics; the root therefore appears last.
        closure = small_ecosystem.import_closure([ModuleKey("libx", "")])
        dotted = [key.dotted for key in closure]
        assert dotted[-1] == "libx"
        assert dotted.index("libx.core.fast") < dotted.index("libx.core")

    def test_deferred_module_is_skipped(self, small_ecosystem):
        deferred = frozenset({ModuleKey("libx", "extra")})
        closure = small_ecosystem.import_closure(
            [ModuleKey("libx", "")], deferred=deferred
        )
        dotted = {key.dotted for key in closure}
        assert "libx.extra" not in dotted
        assert "libx.extra.heavy" not in dotted  # only reachable via extra

    def test_deferred_module_loads_when_forced(self, small_ecosystem):
        deferred = frozenset({ModuleKey("libx", "extra")})
        closure = small_ecosystem.import_closure(
            [ModuleKey("libx", "extra")], deferred=deferred
        )
        dotted = {key.dotted for key in closure}
        assert "libx.extra" in dotted

    def test_already_loaded_modules_are_not_reloaded(self, small_ecosystem):
        first = small_ecosystem.import_closure([ModuleKey("libx", "")])
        second = small_ecosystem.import_closure(
            [ModuleKey("libx", "")], already_loaded=first
        )
        assert second == []

    def test_closure_costs(self, small_ecosystem):
        closure = small_ecosystem.import_closure([ModuleKey("libx", "")])
        assert small_ecosystem.total_init_cost_ms(closure) == 100.0
        assert small_ecosystem.total_memory_kb(closure) == 10_000.0

    def test_deferral_savings_match_subtree_cost(self, small_ecosystem):
        full = small_ecosystem.import_closure([ModuleKey("libx", "")])
        lazy = small_ecosystem.import_closure(
            [ModuleKey("libx", "")],
            deferred=frozenset({ModuleKey("libx", "extra")}),
        )
        saved = small_ecosystem.total_init_cost_ms(
            full
        ) - small_ecosystem.total_init_cost_ms(lazy)
        assert saved == 65.0  # extra (40) + extra.heavy (25)

    def test_load_order_is_postorder(self, small_ecosystem):
        closure = small_ecosystem.import_closure([ModuleKey("liby", "")])
        dotted = [key.dotted for key in closure]
        # liby's root finishes loading last (its imports complete first).
        assert dotted[-1] == "liby"


class TestCallTargets:
    def test_call_targets_resolution(self, small_ecosystem):
        ref = small_ecosystem.parse_function("libx:use_core")
        targets = small_ecosystem.call_targets(ref)
        assert [t.qualified for t in targets] == ["libx.core:run"]
