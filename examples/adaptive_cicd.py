#!/usr/bin/env python
"""Adaptive CI/CD loop (Fig. 4): re-optimizing under workload drift.

Simulates a graph-processing service whose traffic shifts from BFS queries
to rendering requests.  The workload monitor (Eqs. 5-7) watches per-entry
invocation probabilities; when the aggregate shift exceeds ε it triggers
re-profiling and redeployment with a refreshed deferral plan.

Run:  python examples/adaptive_cicd.py
"""

from repro.apps import benchmark_apps
from repro.apps.model import bench_platform_config
from repro.core.adaptive import WorkloadMonitor
from repro.core.pipeline import CICDPipeline, PipelineConfig, SlimStart
from repro.faas.sim import SimPlatform
from repro.workloads.arrival import poisson_schedule
from repro.workloads.popularity import EntryMix

WINDOW_S = 900.0


def main() -> None:
    app = benchmark_apps(("R-GB",))[0]
    config = app.sim_config()
    platform = SimPlatform(config=bench_platform_config())
    platform.deploy(config)
    tool = SlimStart(PipelineConfig(measure_cold_starts=50, measure_runs=1))
    monitor = WorkloadMonitor(window_s=WINDOW_S, epsilon=0.002)
    pipeline = CICDPipeline(tool, platform, config, monitor)

    render_entry = next(
        entry.name for entry in app.entries if entry.name.startswith("admin_")
    )
    phases = [
        ("BFS-dominated", EntryMix(("handle", "process"), (0.9, 0.1)), 0),
        ("render takeover", EntryMix((render_entry, "handle"), (0.85, 0.15)), 4),
        ("render steady state", EntryMix((render_entry,), (1.0,)), 8),
    ]

    print(f"{'phase':22s} {'windows':>8s} {'re-profiled':>12s} {'plan size':>10s}")
    for label, mix, start_window in phases:
        schedule = poisson_schedule(
            mix,
            rate_per_s=0.02,
            duration_s=4 * WINDOW_S,
            seed=5 + start_window,
            start_s=start_window * WINDOW_S,
        )
        events = []
        for arrival, entry in schedule:
            at = max(arrival, platform.clock.now())
            record = platform.invoke(config.name, entry, at=at)
            events.extend(pipeline.observe([record]))
        reprofiled = sum(1 for event in events if event.reprofiled)
        plan = platform.plan_for(config.name)
        print(
            f"{label:22s} {len(events):>8d} {reprofiled:>12d} "
            f"{len(plan.all_deferred):>10d}"
        )
        if reprofiled:
            print(f"{'':22s} new plan: {sorted(plan.all_deferred)}")

    print(f"\ntotal fine-grained profiling runs: {pipeline.profile_count}")
    print("(a periodic policy would have profiled every window)")


if __name__ == "__main__":
    main()
