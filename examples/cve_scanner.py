#!/usr/bin/env python
"""The Table V case study: the CVE binary analyzer.

The scanner's hot path checks binaries against CVE databases; only SBOM
(XML) inputs need the heavyweight xmlschema/elementpath stack.  SLIMSTART
detects the 'rarely used but expensive' import from runtime profiles and
defers it — along with the cascading elementpath dependency — at the
handler level, then replays the paper's 500-cold-start protocol.

Run:  python examples/cve_scanner.py
"""

from repro.apps import benchmark_apps
from repro.apps.model import bench_platform_config
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.core.report import render_report
from repro.faas.sim import SimPlatform
from repro.workloads.arrival import poisson_schedule


def main() -> None:
    app = benchmark_apps(("CVE",))[0]
    print(f"application : {app.name} ({app.definition.description})")
    print(f"libraries   : {', '.join(app.loaded_libraries())}")
    print(f"entry mix   : "
          + ", ".join(
              f"{entry}={app.mix.probability(entry):.1%}"
              for entry in app.mix.entries
          ))

    tool = SlimStart(PipelineConfig(measure_cold_starts=500, measure_runs=5))
    platform = SimPlatform(config=bench_platform_config())
    workload = poisson_schedule(app.mix, rate_per_s=0.3, duration_s=3600, seed=7)
    result = tool.run_simulated_cycle(
        app.sim_config(), workload, app.mix, platform=platform
    )

    print()
    print(render_report(result.report))

    xmlschema = result.report.row("slxmlschema")
    print()
    print(f"xmlschema utilization : {xmlschema.utilization:.2%} "
          f"(paper: 0.78 %)")
    print(f"xmlschema init share  : {xmlschema.init_share:.2%} "
          f"(paper: 8.27 %)")
    s = result.speedups
    print(f"init speedup          : {s.init_speedup:.2f}x (paper: 1.27x)")
    print(f"e2e speedup           : {s.e2e_speedup:.2f}x (paper: 1.20x)")
    print(f"memory reduction      : {s.memory_reduction:.2f}x (paper: 1.21x)")

    # The rare path still works — it pays the lazy load on first use.
    rare = [r for r in result.after_records if r.entry.startswith("aux_")]
    hot = [r for r in result.after_records if r.entry == "handle"]
    print(f"\nrare SBOM requests served: {len(rare)} "
          f"(mean exec {sum(r.exec_ms for r in rare) / len(rare):.0f} ms, "
          f"hot path {sum(r.exec_ms for r in hot) / len(hot):.0f} ms)")


if __name__ == "__main__":
    main()
