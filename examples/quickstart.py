#!/usr/bin/env python
"""Quickstart: define an app, profile it, optimize it, measure the win.

Builds a small serverless application on the synthetic-library substrate,
runs one full SLIMSTART cycle on the virtual-time simulator, and prints the
inefficiency report plus the measured speedups.

Run:  python examples/quickstart.py
"""

from repro.core.pipeline import PipelineConfig, SlimStart
from repro.core.report import render_report
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatform
from repro.synthlib import ClusterPlan, Ecosystem, build_library
from repro.workloads.arrival import poisson_schedule
from repro.workloads.popularity import zipf_mix


def build_app() -> SimAppConfig:
    """A thumbnail service with an eager-everything imaging library."""
    imaging = build_library(
        "slimaging",
        total_init_cost_ms=600.0,
        total_memory_kb=40_000.0,
        seed=1,
        clusters=[
            ClusterPlan("decode", module_count=20, init_share=0.25, depth=4),
            ClusterPlan("resize", module_count=15, init_share=0.15, depth=4),
            ClusterPlan("filters", module_count=30, init_share=0.30, depth=5),
            ClusterPlan("raw_formats", module_count=25, init_share=0.25, depth=4),
        ],
    )
    ecosystem = Ecosystem([imaging])
    ecosystem.validate()
    return SimAppConfig(
        name="thumbnailer",
        ecosystem=ecosystem,
        handler_imports=("slimaging",),
        entries=(
            # The hot path: decode + resize.
            EntryBehavior(
                "thumbnail",
                calls=("slimaging.decode:run", "slimaging.resize:run"),
                handler_self_ms=3.0,
            ),
            # Rarely used: artistic filters.
            EntryBehavior(
                "stylize", calls=("slimaging.filters:run",), handler_self_ms=3.0
            ),
            # Never used in this deployment: RAW camera formats.
            EntryBehavior(
                "develop_raw",
                calls=("slimaging.raw_formats:run",),
                handler_self_ms=3.0,
            ),
        ),
    )


def main() -> None:
    config = build_app()
    # Typical workload: thumbnails dominate, stylize is ~1 % of traffic,
    # develop_raw never happens.
    mix = zipf_mix(["thumbnail", "stylize"], exponent=6.0)
    workload = poisson_schedule(mix, rate_per_s=0.5, duration_s=3600, seed=42)

    tool = SlimStart(PipelineConfig(measure_cold_starts=200, measure_runs=3))
    platform = SimPlatform()
    result = tool.run_simulated_cycle(config, workload, mix, platform=platform)

    print(render_report(result.report))
    print()
    print(f"cold-start init : {result.before.init.mean_ms:7.1f} ms "
          f"-> {result.after.init.mean_ms:7.1f} ms "
          f"({result.speedups.init_speedup:.2f}x)")
    print(f"end-to-end      : {result.before.e2e.mean_ms:7.1f} ms "
          f"-> {result.after.e2e.mean_ms:7.1f} ms "
          f"({result.speedups.e2e_speedup:.2f}x)")
    print(f"peak memory     : {result.before.memory.peak_mb:7.1f} MB "
          f"-> {result.after.memory.peak_mb:7.1f} MB "
          f"({result.speedups.memory_reduction:.2f}x)")


if __name__ == "__main__":
    main()
