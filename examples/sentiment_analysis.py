#!/usr/bin/env python
"""The Table IV case study on real execution: Sentiment Analysis (R-SA).

Materializes the R-SA application (nltk/TextBlob stand-ins) as a real
Python workspace, executes it on the in-process FaaS testbed with the
sampling profiler and import-time recorder attached, applies the generated
optimization by actually rewriting source files, and measures real cold
starts before and after.

Run:  python examples/sentiment_analysis.py
"""

import tempfile
from pathlib import Path

from repro.apps import benchmark_apps
from repro.core.pipeline import SlimStart
from repro.core.report import render_report
from repro.faas.local import FunctionDeployment, LocalPlatform

#: Real-execution cost scale: the nltk stand-in's 650 ms import runs in
#: ~160 ms so the example finishes quickly; every *ratio* is unaffected.
SCALE = 0.25


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="slimstart_rsa_"))
    app = benchmark_apps(("R-SA",))[0]
    deployment = app.build_real_workspace(base / "v1", scale=SCALE)
    print(f"workspace: {deployment.workspace}")
    print(f"libraries: {', '.join(app.loaded_libraries())} "
          f"({app.module_count} modules)")

    platform = LocalPlatform()
    platform.deploy(deployment)
    tool = SlimStart()

    # Typical workload: tokenization + sentiment; the semantic-parsing
    # entries exist but are never invoked.
    entries = ["handle"] * 40 + ["process"] * 8
    libraries = set(app.loaded_libraries())
    print(f"\nprofiling {len(entries)} real invocations ...")
    bundle = tool.profile_real_invocations(
        platform, deployment, entries, libraries, interval_ms=1.0
    )
    attributor = tool.workspace_attributor(deployment.workspace, libraries)
    report = tool.analyze(bundle, attributor)
    print()
    print(render_report(report))

    print("\napplying the optimization (rewriting source files) ...")
    optimized = tool.optimize_workspace(
        deployment.workspace, report.plan, base / "v2"
    )
    for file, statement in optimized.stub_result.commented_edges[:6]:
        print(f"  {file}: '{statement}' -> lazy")
    if len(optimized.stub_result.commented_edges) > 6:
        print(f"  ... and {len(optimized.stub_result.commented_edges) - 6} more")

    new_deployment = FunctionDeployment(
        name=app.name, workspace=optimized.workspace, entries=deployment.entries
    )
    platform.redeploy(new_deployment)
    platform.force_cold(app.name)
    after = platform.invoke(app.name, "handle")

    before_platform = LocalPlatform()
    before_platform.deploy(
        FunctionDeployment(
            name="baseline",
            workspace=deployment.workspace,
            entries=deployment.entries,
        )
    )
    before = before_platform.invoke("baseline", "handle")

    print()
    print(f"real cold-start init : {before.init_ms:7.1f} ms -> "
          f"{after.init_ms:7.1f} ms ({before.init_ms / after.init_ms:.2f}x, "
          f"paper: 1.35x)")
    print(f"real memory          : {before.memory_mb:7.1f} MB -> "
          f"{after.memory_mb:7.1f} MB "
          f"({before.memory_mb / after.memory_mb:.2f}x, paper: 1.07x)")


if __name__ == "__main__":
    main()
