#!/usr/bin/env python
"""Using the profiling primitives directly on really-executing code.

Demonstrates the two collectors of Fig. 7 stand-alone — the import-time
recorder (meta-path hook) and the sampling call-path profiler — plus CCT
construction and the utilization metric, without the FaaS testbed around
them.

Run:  python examples/real_profiler_demo.py
"""

import importlib
import tempfile
from pathlib import Path

from repro.core.analyzer import Analyzer
from repro.core.cct import CallingContextTree
from repro.core.import_recorder import ImportTimeRecorder
from repro.core.profiler import ThreadSampler
from repro.core.samples import LibraryAttributor
from repro.faas.container import ModuleSandbox
from repro.synthlib import Ecosystem, materialize_ecosystem
from repro.synthlib.catalog import igraph_like


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="slimstart_demo_"))
    ecosystem = Ecosystem([igraph_like()])
    materialize_ecosystem(ecosystem, workspace, scale=0.5)
    ModuleSandbox.mount(workspace)

    # 1. Import-time recording: who loads what, and how long it takes.
    with ImportTimeRecorder(["sligraph"]) as recorder:
        sligraph = importlib.import_module("sligraph")
    profile = recorder.profile()
    print(f"imported {len(profile)} modules, "
          f"total init {profile.total_init_ms:.1f} ms")
    print("heaviest direct sub-packages:")
    children = sorted(
        profile.children_of("sligraph"),
        key=profile.subtree_init_ms,
        reverse=True,
    )
    for child in children[:4]:
        share = profile.subtree_init_ms(child) / profile.total_init_ms
        print(f"  {child:24s} {profile.subtree_init_ms(child):8.1f} ms "
              f"({share:.0%})")

    # 2. Sampling call-path profiling of runtime work.
    sampler = ThreadSampler(interval_ms=1.0)
    sampler.start()
    for _ in range(60):
        sligraph.use_core()
    samples = sampler.stop()
    print(f"\ncollected {len(samples)} samples "
          f"({samples.runtime_weight():.0f} runtime / "
          f"{samples.init_weight():.0f} init)")

    # 3. The CCT with escalated attribution.
    tree = CallingContextTree.from_samples(samples)
    print("\nheaviest calling contexts:")
    print(tree.render(max_depth=4, min_weight=tree.total_runtime() * 0.1))

    # 4. Utilization per sub-package (Eq. 4 with escalation).
    attributor = LibraryAttributor(
        workspace_prefixes=(str(workspace),), library_names=frozenset({"sligraph"})
    )
    analyzer = Analyzer()
    module_util = {}
    for sample in samples:
        for module in attributor.modules_in(sample.path):
            module_util[module] = module_util.get(module, 0) + sample.weight
    print("\nsub-package utilization (touch weight):")
    for child in children[:4]:
        total = sum(
            weight
            for module, weight in module_util.items()
            if module == child or module.startswith(child + ".")
        )
        print(f"  {child:24s} {total:8.1f}")

    ModuleSandbox.unmount(workspace)


if __name__ == "__main__":
    main()
