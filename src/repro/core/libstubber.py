"""Library-level lazy loading via PEP 562 module ``__getattr__`` stubs.

The optimizer in :mod:`repro.core.optimizer` handles *application* imports.
Some inefficiencies, however, live inside library code: igraph's
``__init__`` eagerly imports its drawing stack, nltk's root imports
``sem``/``stem``/``parse``/``tag`` (Table IV).  This module rewrites the
*library* side of a workspace:

1. every module-level ``import <target>`` edge into a deferred module is
   commented out, and
2. the deferred module's parent package gains a ``__getattr__`` stub that
   imports it on first attribute access,

so ``lib.subpkg.fn()`` still works — the subpackage just loads when first
touched instead of at cold start.  Top-level deferred libraries (a library
imported eagerly by *another* library) need no stub: commenting the edge
suffices, because any runtime access goes through ``importlib`` anyway.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import OptimizationError

COMMENT_PREFIX = "# [slimstart] lazy edge: "
STUB_BEGIN = "# [slimstart] lazy-stub-begin"
STUB_END = "# [slimstart] lazy-stub-end"


@dataclass
class StubResult:
    """What the stubber changed."""

    commented_edges: list[tuple[str, str]] = field(default_factory=list)
    # (file, import statement)
    stubbed_packages: dict[str, list[str]] = field(default_factory=dict)
    # package dotted name -> lazily provided attribute names

    @property
    def changed(self) -> bool:
        return bool(self.commented_edges) or bool(self.stubbed_packages)


def _iter_python_files(workspace: Path):
    for path in sorted(workspace.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def _drop_stale_bytecode(path: Path) -> None:
    cache = path.parent / "__pycache__"
    if cache.is_dir():
        for stale in cache.glob(f"{path.stem}.*.pyc"):
            stale.unlink()


def _comment_import_edges(path: Path, targets: frozenset[str]) -> list[str]:
    """Comment module-level imports of exactly the target modules.

    Only exact-name edges count: ``import lib.sub`` is an edge into
    ``lib.sub``; ``import lib.sub.child`` is an edge into the child (it
    would load ``lib.sub`` implicitly, so deferring the parent while such
    an edge survives simply yields a partial deferral, mirroring CPython).
    """
    source = path.read_text()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        raise OptimizationError(f"cannot parse {path}: {error}") from error
    lines = source.splitlines()
    commented: list[str] = []
    ranges: list[tuple[int, int, str]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in targets:
                    statement = f"import {alias.name}" + (
                        f" as {alias.asname}" if alias.asname else ""
                    )
                    ranges.append(
                        (node.lineno, node.end_lineno or node.lineno, statement)
                    )
        elif isinstance(node, ast.ImportFrom) and not node.level:
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                if f"{module}.{alias.name}" in targets:
                    statement = f"from {module} import {alias.name}"
                    ranges.append(
                        (node.lineno, node.end_lineno or node.lineno, statement)
                    )
    if not ranges:
        return []
    for start, end, statement in sorted(ranges, key=lambda item: -item[0]):
        for index in range(start - 1, end):
            if not lines[index].startswith(COMMENT_PREFIX):
                lines[index] = COMMENT_PREFIX + lines[index]
        commented.append(statement)
    new_source = "\n".join(lines)
    if source.endswith("\n"):
        new_source += "\n"
    path.write_text(new_source)
    _drop_stale_bytecode(path)
    return commented


def _stub_block(lazy_map: dict[str, str]) -> str:
    entries = ",\n".join(
        f"    {attribute!r}: {module!r}" for attribute, module in sorted(lazy_map.items())
    )
    return (
        f"{STUB_BEGIN}\n"
        "_SLIMSTART_LAZY = {\n"
        f"{entries},\n"
        "}\n"
        "\n"
        "\n"
        "def __getattr__(name):\n"
        "    if name in _SLIMSTART_LAZY:\n"
        "        import importlib\n"
        "\n"
        "        return importlib.import_module(_SLIMSTART_LAZY[name])\n"
        "    raise AttributeError(\n"
        '        f"module {__name__!r} has no attribute {name!r}"\n'
        "    )\n"
        f"{STUB_END}\n"
    )


def _existing_lazy_map(source: str) -> dict[str, str]:
    """Parse a previously written stub block's mapping (idempotence)."""
    if STUB_BEGIN not in source:
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_SLIMSTART_LAZY"
        ):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return {}
            if isinstance(value, dict):
                return {str(k): str(v) for k, v in value.items()}
    return {}


def _remove_stub_block(source: str) -> str:
    if STUB_BEGIN not in source:
        return source
    lines = source.splitlines()
    try:
        begin = next(i for i, line in enumerate(lines) if line.strip() == STUB_BEGIN)
        end = next(i for i, line in enumerate(lines) if line.strip() == STUB_END)
    except StopIteration:
        raise OptimizationError("corrupt lazy-stub block markers") from None
    del lines[begin : end + 1]
    new_source = "\n".join(lines)
    if source.endswith("\n"):
        new_source += "\n"
    return new_source


def _write_stub(package_init: Path, additions: dict[str, str]) -> list[str]:
    source = package_init.read_text()
    lazy_map = _existing_lazy_map(source)
    lazy_map.update(additions)
    source = _remove_stub_block(source)
    if not source.endswith("\n"):
        source += "\n"
    source += "\n\n" + _stub_block(lazy_map)
    package_init.write_text(source)
    _drop_stale_bytecode(package_init)
    return sorted(lazy_map)


def apply_library_deferrals(
    workspace: str | Path, targets: set[str] | frozenset[str]
) -> StubResult:
    """Defer ``targets`` (dotted module names) across a whole workspace.

    Idempotent: re-applying with the same or additional targets extends
    existing stub blocks instead of duplicating them.
    """
    workspace_path = Path(workspace)
    if not workspace_path.is_dir():
        raise OptimizationError(f"workspace does not exist: {workspace_path}")
    target_set = frozenset(targets)
    result = StubResult()
    if not target_set:
        return result

    for path in _iter_python_files(workspace_path):
        if path.name == "handler.py" and path.parent == workspace_path:
            continue  # application code belongs to the app-level optimizer
        for statement in _comment_import_edges(path, target_set):
            result.commented_edges.append(
                (str(path.relative_to(workspace_path)), statement)
            )

    by_parent: dict[str, dict[str, str]] = {}
    for dotted in sorted(target_set):
        parent, _, attribute = dotted.rpartition(".")
        if not parent:
            continue  # top-level library: commenting the edge is enough
        by_parent.setdefault(parent, {})[attribute] = dotted

    for parent, additions in by_parent.items():
        init_path = workspace_path.joinpath(*parent.split(".")) / "__init__.py"
        if not init_path.is_file():
            raise OptimizationError(
                f"cannot stub {parent!r}: no package __init__ at {init_path}"
            )
        result.stubbed_packages[parent] = _write_stub(init_path, additions)
    return result
