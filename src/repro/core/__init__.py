"""SLIMSTART itself: profiler, analyzer, optimizer, adaptive monitor.

Import submodules directly (``from repro.core.analyzer import Analyzer``);
this package intentionally re-exports only the small, stable facade.
"""

from repro.core.samples import Frame, Sample, SampleSet
from repro.core.cct import CallingContextTree

__all__ = ["Frame", "Sample", "SampleSet", "CallingContextTree"]
