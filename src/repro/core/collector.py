"""Profile collection: local buffering + asynchronous batch transfer.

Implements Fig. 7 steps 4-5: function instances buffer profile bundles
locally and a background uploader ships them in batches to cloud storage,
so profiling never adds synchronous network time to an invocation.  The
analyzer later fetches and merges everything under the app's prefix.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable

from repro.common.errors import ProfilingError
from repro.core.profiles import ProfileBundle
from repro.faas.storage import CloudStorage

_PREFIX = "profiles"
_STOP = object()


def bundle_key(app: str, sequence: int) -> str:
    return f"{_PREFIX}/{app}/{sequence:06d}"


class ProfileCollector:
    """Buffers bundles per function instance and uploads them in batches."""

    def __init__(
        self,
        storage: CloudStorage,
        app: str,
        batch_size: int = 8,
        asynchronous: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ProfilingError(f"batch size must be >= 1: {batch_size}")
        self.storage = storage
        self.app = app
        self.batch_size = batch_size
        self.asynchronous = asynchronous
        self._buffer: list[ProfileBundle] = []
        self._sequence = 0
        self._uploads: "queue.Queue[object]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._closed = False
        if asynchronous:
            self._worker = threading.Thread(
                target=self._upload_loop, name="slimstart-uploader", daemon=True
            )
            self._worker.start()

    # -- producer side -------------------------------------------------------

    def record(self, bundle: ProfileBundle) -> None:
        """Buffer one invocation's profile; flushes on a full batch."""
        if self._closed:
            raise ProfilingError("collector is closed")
        if bundle.app != self.app:
            raise ProfilingError(
                f"collector for {self.app!r} got bundle for {bundle.app!r}"
            )
        self._buffer.append(bundle)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Merge the buffer into one object and hand it to the uploader."""
        if not self._buffer:
            return
        merged = self._buffer[0]
        for bundle in self._buffer[1:]:
            merged = merged.merged_with(bundle)
        self._buffer = []
        key = bundle_key(self.app, self._sequence)
        self._sequence += 1
        if self.asynchronous:
            self._uploads.put((key, merged.to_dict()))
        else:
            self.storage.put(key, merged.to_dict())

    def close(self) -> None:
        """Flush remaining data and stop the uploader thread."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self._worker is not None:
            self._uploads.put(_STOP)
            self._worker.join(timeout=10.0)
            self._worker = None

    def __enter__(self) -> "ProfileCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- uploader thread ---------------------------------------------------------

    def _upload_loop(self) -> None:
        while True:
            item = self._uploads.get()
            if item is _STOP:
                return
            key, payload = item
            self.storage.put(key, payload)


def fetch_bundles(storage: CloudStorage, app: str) -> list[ProfileBundle]:
    """All uploaded bundles for one app, in upload order."""
    keys = storage.list_keys(prefix=f"{_PREFIX}/{app}/")
    return [ProfileBundle.from_dict(storage.get(key)) for key in keys]


def fetch_merged(storage: CloudStorage, app: str) -> ProfileBundle:
    """Merge every uploaded bundle for ``app`` into one analyzer input."""
    bundles = fetch_bundles(storage, app)
    if not bundles:
        raise ProfilingError(f"no profiles uploaded for app {app!r}")
    merged = bundles[0]
    for bundle in bundles[1:]:
        merged = merged.merged_with(bundle)
    return merged


def merge_all(bundles: Iterable[ProfileBundle]) -> ProfileBundle:
    """Merge an in-memory bundle sequence (multi-instance aggregation)."""
    iterator = iter(bundles)
    try:
        merged = next(iterator)
    except StopIteration:
        raise ProfilingError("cannot merge zero bundles") from None
    for bundle in iterator:
        merged = merged.merged_with(bundle)
    return merged
