"""Sampling call-path profilers (the "Call Path Collector" of Fig. 7).

Two interchangeable back ends:

* :class:`ThreadSampler` — a daemon thread periodically snapshots the
  target thread's stack via ``sys._current_frames``.  Works on every
  platform and thread, and exposes :meth:`ThreadSampler.take_sample` so
  tests can capture deterministically.
* :class:`SignalSampler` — ``signal.setitimer`` + ``SIGPROF``, the classic
  low-overhead approach the paper describes (§IV-A2); main thread only.

Both return a :class:`SampleSet` of cleaned, classified samples: import
machinery frames are stripped and stacks caught inside module top-level
code are tagged ``init`` so they can be separated from runtime utilization.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from types import FrameType

from repro.common.errors import ProfilingError
from repro.core.samples import Frame, Sample, SampleSet, classify_stack


def _stack_from_frame(frame: FrameType | None) -> tuple[Frame, ...]:
    """Walk a leaf frame's back-chain; returns root-first frames."""
    frames: list[Frame] = []
    current = frame
    while current is not None:
        frames.append(
            Frame(
                file=current.f_code.co_filename,
                function=current.f_code.co_name,
                line=current.f_lineno,
            )
        )
        current = current.f_back
    frames.reverse()
    return tuple(frames)


class ThreadSampler:
    """Background-thread statistical sampler.

    ``interval_ms`` controls the sampling frequency (the paper exposes the
    same knob through its API).  Stop returns the accumulated samples.
    """

    def __init__(
        self,
        interval_ms: float = 5.0,
        target_thread_id: int | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ProfilingError(f"interval must be positive: {interval_ms}")
        self.interval_ms = interval_ms
        self._target_thread_id = target_thread_id
        self._samples = SampleSet()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    @property
    def samples(self) -> SampleSet:
        return self._samples

    def take_sample(self) -> Sample | None:
        """Capture the target thread's stack right now (or None if gone)."""
        target = self._target_thread_id
        if target is None:
            target = threading.main_thread().ident
        frame = sys._current_frames().get(target)
        if frame is None:
            return None
        raw = _stack_from_frame(frame)
        path, kind = classify_stack(raw)
        sample = Sample(path=path, weight=1.0, kind=kind)
        self._samples.add(sample)
        return sample

    def start(self) -> "ThreadSampler":
        if self._thread is not None:
            raise ProfilingError("sampler already running")
        self._stop_event.clear()

        def loop() -> None:
            interval_s = self.interval_ms / 1000.0
            while not self._stop_event.wait(interval_s):
                self.take_sample()

        self._thread = threading.Thread(
            target=loop, name="slimstart-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> SampleSet:
        if self._thread is None:
            raise ProfilingError("sampler is not running")
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        return self._samples

    def __enter__(self) -> "ThreadSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._thread is not None:
            self.stop()


class SignalSampler:
    """``setitimer``-driven sampler (main thread only).

    Uses ``ITIMER_REAL``/``SIGALRM`` by default: wall-clock pacing matches
    the thread sampler's semantics and, unlike ``ITIMER_PROF``, also fires
    while the process waits on I/O.
    """

    def __init__(self, interval_ms: float = 5.0) -> None:
        if interval_ms <= 0:
            raise ProfilingError(f"interval must be positive: {interval_ms}")
        self.interval_ms = interval_ms
        self._samples = SampleSet()
        self._previous_handler = None
        self._running = False

    @property
    def samples(self) -> SampleSet:
        return self._samples

    def _handle(self, signum, frame) -> None:
        raw = _stack_from_frame(frame)
        path, kind = classify_stack(raw)
        # Drop the signal handler's own frame if it is the leaf.
        if path and path[-1].function == "_handle":
            path = path[:-1] or path
        self._samples.add(Sample(path=path, weight=1.0, kind=kind))

    def start(self) -> "SignalSampler":
        if self._running:
            raise ProfilingError("sampler already running")
        if threading.current_thread() is not threading.main_thread():
            raise ProfilingError("signal sampler requires the main thread")
        self._previous_handler = signal.signal(signal.SIGALRM, self._handle)
        interval_s = self.interval_ms / 1000.0
        signal.setitimer(signal.ITIMER_REAL, interval_s, interval_s)
        self._running = True
        return self

    def stop(self) -> SampleSet:
        if not self._running:
            raise ProfilingError("sampler is not running")
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, self._previous_handler)
        self._previous_handler = None
        self._running = False
        return self._samples

    def __enter__(self) -> "SignalSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if self._running:
            self.stop()


def profile_callable(
    fn,
    *args,
    interval_ms: float = 2.0,
    min_duration_ms: float = 0.0,
    **kwargs,
):
    """Run ``fn`` under a thread sampler; returns ``(result, samples)``."""
    sampler = ThreadSampler(interval_ms=interval_ms)
    sampler.start()
    start = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        samples = sampler.stop()
    if elapsed_ms < min_duration_ms:
        raise ProfilingError(
            f"profiled callable finished in {elapsed_ms:.1f} ms "
            f"(< {min_duration_ms} ms); samples are unreliable"
        )
    return result, samples
