"""Profile data model: import timings, sample sets, and bundles.

A :class:`ProfileBundle` is the unit the collector ships to cloud storage
and the analyzer consumes: one application's merged import-time profile,
call-path samples, entry-point counts, and latency context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.common.errors import ProfilingError
from repro.core.samples import SampleSet


@dataclass
class ImportRecord:
    """Measured initialization of one module (Eq. 2/3 leaf data)."""

    module: str  # dotted path, e.g. "sligraph.drawing.colors"
    self_ms: float  # top-level execution time excluding child imports
    cumulative_ms: float  # including imports it triggered
    parent: str | None  # module whose import triggered this one
    order: int  # load sequence number

    def __post_init__(self) -> None:
        if self.self_ms < 0 or self.cumulative_ms < 0:
            raise ProfilingError(f"negative import time for {self.module!r}")


class ImportProfile:
    """Per-module import timings with hierarchical aggregation (Eqs. 1-3)."""

    def __init__(self, records: Iterable[ImportRecord] = ()) -> None:
        self._records: dict[str, ImportRecord] = {}
        for record in records:
            self.add(record)

    def add(self, record: ImportRecord) -> None:
        if record.module in self._records:
            raise ProfilingError(f"duplicate import record: {record.module!r}")
        self._records[record.module] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, module: str) -> bool:
        return module in self._records

    def record(self, module: str) -> ImportRecord:
        try:
            return self._records[module]
        except KeyError:
            raise ProfilingError(f"no import record for {module!r}") from None

    def modules(self) -> list[str]:
        return sorted(self._records)

    @property
    def total_init_ms(self) -> float:
        """Eq. 1: total initialization across all loaded modules."""
        return sum(record.self_ms for record in self._records.values())

    def library_names(self) -> list[str]:
        return sorted({module.partition(".")[0] for module in self._records})

    def library_init_ms(self, library: str) -> float:
        """Eq. 2: cumulative init of one library (sum over its modules)."""
        return self.subtree_init_ms(library)

    def subtree_init_ms(self, dotted_prefix: str) -> float:
        """Eq. 3: init of a package subtree (prefix itself included)."""
        prefix = dotted_prefix + "."
        return sum(
            record.self_ms
            for module, record in self._records.items()
            if module == dotted_prefix or module.startswith(prefix)
        )

    def children_of(self, dotted: str) -> list[str]:
        """Direct sub-modules of a package that were actually loaded."""
        prefix = f"{dotted}." if dotted else ""
        result = set()
        for module in self._records:
            if not module.startswith(prefix) or module == dotted:
                continue
            remainder = module[len(prefix):]
            result.add(prefix + remainder.split(".")[0])
        result.discard(dotted)
        return sorted(result)

    def scaled(self, factor: float) -> "ImportProfile":
        """A copy with every timing multiplied by ``factor``."""
        return ImportProfile(
            ImportRecord(
                module=record.module,
                self_ms=record.self_ms * factor,
                cumulative_ms=record.cumulative_ms * factor,
                parent=record.parent,
                order=record.order,
            )
            for record in self._records.values()
        )

    # -- merging across invocations/instances --------------------------------

    @classmethod
    def average(cls, profiles: list["ImportProfile"]) -> "ImportProfile":
        """Average self/cumulative times per module over multiple profiles.

        Modules missing from some profiles are averaged over the profiles
        that did load them (a module's cost, not its load frequency, is
        what the hierarchy report needs).
        """
        if not profiles:
            raise ProfilingError("cannot average zero import profiles")
        sums: dict[str, list] = {}
        for profile in profiles:
            for module in profile.modules():
                record = profile.record(module)
                entry = sums.setdefault(
                    module, [0.0, 0.0, 0, record.parent, record.order]
                )
                entry[0] += record.self_ms
                entry[1] += record.cumulative_ms
                entry[2] += 1
        merged = cls()
        for module, (self_sum, cumulative_sum, count, parent, order) in sorted(
            sums.items()
        ):
            merged.add(
                ImportRecord(
                    module=module,
                    self_ms=self_sum / count,
                    cumulative_ms=cumulative_sum / count,
                    parent=parent,
                    order=order,
                )
            )
        return merged

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "records": [
                [r.module, r.self_ms, r.cumulative_ms, r.parent, r.order]
                for r in self._records.values()
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ImportProfile":
        return cls(
            ImportRecord(
                module=module,
                self_ms=self_ms,
                cumulative_ms=cumulative_ms,
                parent=parent,
                order=order,
            )
            for module, self_ms, cumulative_ms, parent, order in payload["records"]
        )


@dataclass
class ProfileBundle:
    """Everything the analyzer needs about one profiled application."""

    app: str
    import_profile: ImportProfile
    samples: SampleSet
    entry_counts: dict[str, int] = field(default_factory=dict)
    handler_imports: tuple[str, ...] = ()  # dotted modules the handler imports
    mean_cold_e2e_ms: float = 0.0
    mean_cold_init_ms: float = 0.0
    cold_starts: int = 0

    @property
    def init_ratio(self) -> float:
        """Library-init share of cold end-to-end time (Fig. 1's metric)."""
        if self.mean_cold_e2e_ms <= 0:
            return 0.0
        return self.mean_cold_init_ms / self.mean_cold_e2e_ms

    def merged_with(self, other: "ProfileBundle") -> "ProfileBundle":
        """Merge a second bundle for the same app (multi-instance profiles)."""
        if other.app != self.app:
            raise ProfilingError(
                f"cannot merge bundles of different apps: {self.app!r}, {other.app!r}"
            )
        counts = dict(self.entry_counts)
        for entry, count in other.entry_counts.items():
            counts[entry] = counts.get(entry, 0) + count
        total_cold = self.cold_starts + other.cold_starts
        if total_cold > 0:
            mean_e2e = (
                self.mean_cold_e2e_ms * self.cold_starts
                + other.mean_cold_e2e_ms * other.cold_starts
            ) / total_cold
            mean_init = (
                self.mean_cold_init_ms * self.cold_starts
                + other.mean_cold_init_ms * other.cold_starts
            ) / total_cold
        else:
            mean_e2e = max(self.mean_cold_e2e_ms, other.mean_cold_e2e_ms)
            mean_init = max(self.mean_cold_init_ms, other.mean_cold_init_ms)
        return ProfileBundle(
            app=self.app,
            import_profile=ImportProfile.average(
                [self.import_profile, other.import_profile]
            ),
            samples=self.samples.merged_with(other.samples),
            entry_counts=counts,
            handler_imports=tuple(
                dict.fromkeys(self.handler_imports + other.handler_imports)
            ),
            mean_cold_e2e_ms=mean_e2e,
            mean_cold_init_ms=mean_init,
            cold_starts=total_cold,
        )

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "import_profile": self.import_profile.to_dict(),
            "samples": self.samples.to_dict(),
            "entry_counts": self.entry_counts,
            "handler_imports": list(self.handler_imports),
            "mean_cold_e2e_ms": self.mean_cold_e2e_ms,
            "mean_cold_init_ms": self.mean_cold_init_ms,
            "cold_starts": self.cold_starts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileBundle":
        return cls(
            app=payload["app"],
            import_profile=ImportProfile.from_dict(payload["import_profile"]),
            samples=SampleSet.from_dict(payload["samples"]),
            entry_counts=dict(payload["entry_counts"]),
            handler_imports=tuple(payload["handler_imports"]),
            mean_cold_e2e_ms=payload["mean_cold_e2e_ms"],
            mean_cold_init_ms=payload["mean_cold_init_ms"],
            cold_starts=payload["cold_starts"],
        )
