"""Automated code optimizer: global imports become deferred imports.

Given the analyzer's plan, this module rewrites *application* source: each
flagged global import is commented out and re-inserted at the top of every
function that uses the imported name, so the library loads on the first
request that needs it instead of on every cold start (§IV-B).

Correctness-preserving by construction: an import is only deferred when the
bound name is provably safe to bind late —

* never referenced at module level (including class bodies, decorators,
  default argument values and annotations, all of which execute at import
  time),
* never re-assigned or deleted anywhere in the module, and
* not introduced by a star import.

Anything unsafe is skipped and reported, never silently transformed.
Rewrites are line-surgical (comment + insert) so surrounding formatting and
line-oriented tooling survive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.common.errors import OptimizationError

COMMENT_PREFIX = "# [slimstart] deferred: "


@dataclass(frozen=True)
class DeferredImport:
    """One import binding moved from module level into functions."""

    bound_name: str
    import_statement: str  # e.g. "import sligraph" / "from x import y as z"
    target: str  # the plan module that matched
    lineno: int
    inserted_into: tuple[str, ...]  # function names that received the import


@dataclass(frozen=True)
class SkippedImport:
    """An import the optimizer refused to touch, with the reason."""

    lineno: int
    text: str
    reason: str


@dataclass
class OptimizationResult:
    source: str
    deferred: list[DeferredImport] = field(default_factory=list)
    skipped: list[SkippedImport] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.deferred)


@dataclass
class _Binding:
    node: ast.stmt
    alias: ast.alias
    bound_name: str
    import_statement: str
    target: str


def _matches(module_name: str, targets: frozenset[str]) -> str | None:
    """Return the matching target when ``module_name`` is it or inside it."""
    for target in targets:
        if module_name == target or module_name.startswith(target + "."):
            return target
    return None


def _statement_bindings(
    node: ast.stmt, targets: frozenset[str]
) -> tuple[list[_Binding], list[ast.alias], str | None]:
    """Split an import statement into deferred bindings and kept aliases.

    Returns ``(bindings, kept_aliases, skip_reason)``; a non-None skip
    reason means the whole statement must be left alone.
    """
    bindings: list[_Binding] = []
    kept: list[ast.alias] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            target = _matches(alias.name, targets)
            if target is None:
                kept.append(alias)
                continue
            statement = f"import {alias.name}"
            if alias.asname:
                statement += f" as {alias.asname}"
            bound = alias.asname or alias.name.partition(".")[0]
            bindings.append(_Binding(node, alias, bound, statement, target))
        return bindings, kept, None
    if isinstance(node, ast.ImportFrom):
        if node.level and node.level > 0:
            return [], list(node.names), "relative import"
        module = node.module or ""
        target = _matches(module, targets)
        if target is None:
            return [], list(node.names), None
        for alias in node.names:
            if alias.name == "*":
                return [], list(node.names), "star import cannot be deferred"
        for alias in node.names:
            statement = f"from {module} import {alias.name}"
            if alias.asname:
                statement += f" as {alias.asname}"
            bound = alias.asname or alias.name
            bindings.append(_Binding(node, alias, bound, statement, target))
        return bindings, kept, None
    return [], [], None


class _NameUsage(ast.NodeVisitor):
    """Collects loaded/stored names, separating module level from functions.

    "Module level" here means everything that executes at import time:
    plain statements, class bodies, decorators, default values, and
    annotations — the regions where a deferred name would be missing.
    """

    def __init__(self) -> None:
        self.module_loads: set[str] = set()
        self.stores: set[str] = set()
        self.function_loads: dict[str, set[str]] = {}
        self._function_stack: list[str] = []

    # -- names -----------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if self._function_stack:
                self.function_loads[self._function_stack[0]].add(node.id)
            else:
                self.module_loads.add(node.id)
        else:
            self.stores.add(node.id)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.stores.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.stores.update(node.names)

    # -- function scoping ---------------------------------------------------

    def _visit_function(self, node) -> None:
        # Decorators, defaults and annotations evaluate at definition time,
        # i.e. in the enclosing scope.
        for decorator in node.decorator_list:
            self.visit(decorator)
        if node.args:
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self.visit(default)
            for argument in (
                node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
                + ([node.args.vararg] if node.args.vararg else [])
                + ([node.args.kwarg] if node.args.kwarg else [])
            ):
                if argument.annotation is not None:
                    self.visit(argument.annotation)
        if node.returns is not None:
            self.visit(node.returns)
        if not self._function_stack:
            self.function_loads.setdefault(node.name, set())
        self._function_stack.append(
            self._function_stack[0] if self._function_stack else node.name
        )
        for statement in node.body:
            self.visit(statement)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body does not execute at import time, but treating its
        # loads as belonging to the enclosing region keeps the analysis
        # conservative when the lambda sits at module level.
        self.generic_visit(node)


def _top_level_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Module functions plus methods of module-level classes."""
    functions: list = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(node)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(sub)
    return functions


def _insert_line_for(function: ast.FunctionDef) -> tuple[int, str]:
    """(1-based line to insert before, indentation) for a function body."""
    body = function.body
    first = body[0]
    if (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
        and len(body) > 1
    ):
        first = body[1]
    indent = " " * first.col_offset
    return first.lineno, indent


def optimize_source(source: str, targets: frozenset[str] | set[str]) -> OptimizationResult:
    """Defer global imports of ``targets`` in ``source``.

    Returns the rewritten source plus a record of what was deferred and
    what was skipped (with reasons).  Raises :class:`OptimizationError`
    only when the input does not parse.
    """
    targets = frozenset(targets)
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        raise OptimizationError(f"cannot parse source: {error}") from error

    usage = _NameUsage()
    usage.visit(tree)
    functions = _top_level_functions(tree)
    lines = source.splitlines()
    result = OptimizationResult(source=source)

    # Collect rewrite operations first, apply bottom-up afterwards.
    comment_ranges: list[tuple[int, int, str | None]] = []  # (start, end, kept stmt)
    insertions: dict[int, list[str]] = {}  # lineno -> lines to insert before
    deferred_bindings: list[tuple[_Binding, tuple[str, ...]]] = []

    for node in tree.body:
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        bindings, kept, skip_reason = _statement_bindings(node, targets)
        if skip_reason is not None and _matches(
            getattr(node, "module", None) or "", targets
        ):
            result.skipped.append(
                SkippedImport(
                    lineno=node.lineno,
                    text=ast.get_source_segment(source, node) or "",
                    reason=skip_reason,
                )
            )
            continue
        if not bindings:
            continue

        safe_bindings: list[_Binding] = []
        for binding in bindings:
            reason = _safety_reason(binding, usage)
            if reason is None:
                safe_bindings.append(binding)
            else:
                result.skipped.append(
                    SkippedImport(
                        lineno=node.lineno,
                        text=binding.import_statement,
                        reason=reason,
                    )
                )
        if not safe_bindings:
            continue

        kept_aliases = kept + [
            binding.alias for binding in bindings if binding not in safe_bindings
        ]
        kept_statement = None
        if kept_aliases and isinstance(node, ast.Import):
            kept_statement = "import " + ", ".join(
                alias.name + (f" as {alias.asname}" if alias.asname else "")
                for alias in kept_aliases
            )
        elif kept_aliases and isinstance(node, ast.ImportFrom):
            kept_statement = f"from {node.module} import " + ", ".join(
                alias.name + (f" as {alias.asname}" if alias.asname else "")
                for alias in kept_aliases
            )
        comment_ranges.append(
            (node.lineno, node.end_lineno or node.lineno, kept_statement)
        )

        for binding in safe_bindings:
            receivers = []
            for function in functions:
                loads = usage.function_loads.get(function.name, set())
                if binding.bound_name in loads:
                    insert_at, indent = _insert_line_for(function)
                    insertions.setdefault(insert_at, []).append(
                        f"{indent}{binding.import_statement}"
                    )
                    receivers.append(function.name)
            deferred_bindings.append((binding, tuple(receivers)))

    if not deferred_bindings:
        return result

    # Apply edits bottom-up so line numbers stay valid.
    edits: list[tuple[int, str, object]] = []
    for start, end, kept_statement in comment_ranges:
        edits.append((start, "comment", (start, end, kept_statement)))
    for lineno, new_lines in insertions.items():
        edits.append((lineno, "insert", new_lines))
    edits.sort(key=lambda item: -item[0])

    for lineno, action, payload in edits:
        if action == "comment":
            start, end, kept_statement = payload  # type: ignore[misc]
            for index in range(start - 1, end):
                lines[index] = COMMENT_PREFIX + lines[index]
            if kept_statement is not None:
                lines.insert(end, kept_statement)
        else:
            unique = list(dict.fromkeys(payload))  # type: ignore[arg-type]
            for offset, text in enumerate(unique):
                lines.insert(lineno - 1 + offset, text)

    new_source = "\n".join(lines)
    if source.endswith("\n"):
        new_source += "\n"
    try:
        ast.parse(new_source)
    except SyntaxError as error:  # pragma: no cover - defensive
        raise OptimizationError(
            f"optimizer produced invalid source (bug): {error}"
        ) from error

    result.source = new_source
    result.deferred = [
        DeferredImport(
            bound_name=binding.bound_name,
            import_statement=binding.import_statement,
            target=binding.target,
            lineno=binding.node.lineno,
            inserted_into=receivers,
        )
        for binding, receivers in deferred_bindings
    ]
    return result


def _safety_reason(binding: _Binding, usage: _NameUsage) -> str | None:
    """None when deferring is safe, else a human-readable refusal reason."""
    name = binding.bound_name
    if name in usage.module_loads:
        return f"name {name!r} is used at module level"
    if name in usage.stores:
        return f"name {name!r} is re-assigned in the module"
    return None
