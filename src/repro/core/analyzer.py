"""Profile analyzer: utilization metric, hierarchical breakdown, planning.

This is the "SLIMSTART Analyzer" of Fig. 7.  It consumes one merged
:class:`ProfileBundle` and produces an :class:`InefficiencyReport`:

1. Gate on the initialization ratio (only applications whose library init
   exceeds 10 % of end-to-end time are worth optimizing — Fig. 6, step 1).
2. Compute per-library runtime utilization ``U(L)`` (Eq. 4) with CCT-style
   escalation: a sample credits every library its stack touches, once.
3. Classify libraries: *unused* (no runtime samples), *rarely used*
   (``U(L)`` below the 2 % threshold), or *active*.
4. Plan deferrals: unused/rare libraries are lazily imported at the
   handler level; inside active libraries, loaded subtrees with zero
   runtime samples but measurable init cost are deferred at the library
   level (the nltk.sem/stem/parse/tag case of Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cct import CallingContextTree
from repro.core.profiles import ProfileBundle
from repro.core.samples import RUNTIME, LibraryAttributor
from repro.plan import DeferralPlan

UNUSED = "unused"
RARE = "rarely-used"
ACTIVE = "active"


@dataclass(frozen=True)
class AnalyzerConfig:
    """Thresholds, defaulted to the paper's values."""

    init_ratio_threshold: float = 0.10  # profile only apps above 10 % init share
    rare_utilization_threshold: float = 0.02  # <2 % of samples = rarely used
    min_library_init_share: float = 0.01  # ignore libraries below 1 % of init
    min_subtree_init_share: float = 0.01  # defer subtrees above 1 % of init
    #: How deep below a library root the hierarchical scan may flag
    #: subtrees.  1 = direct sub-packages, the granularity of the paper's
    #: own optimizations (``nltk.sem``, ``igraph.drawing``).  Deeper scans
    #: flag individual modules whose *time share* is tiny even though they
    #: run on every request — cheap code is not rare code.
    max_subtree_depth: int = 1

    def __post_init__(self) -> None:
        if self.max_subtree_depth < 1:
            raise ValueError(
                f"max_subtree_depth must be >= 1: {self.max_subtree_depth}"
            )
        for name in (
            "init_ratio_threshold",
            "rare_utilization_threshold",
            "min_library_init_share",
            "min_subtree_init_share",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")


@dataclass(frozen=True)
class LibraryRow:
    """One library's line in the SLIMSTART summary (Tables IV/V)."""

    library: str
    utilization: float  # U(L), fraction of runtime samples
    init_ms: float
    init_share: float  # fraction of total library init time
    classification: str  # unused / rarely-used / active
    deferral: str  # "handler", "library", or "none"


@dataclass(frozen=True)
class SubtreeFlag:
    """A loaded-but-unused package subtree inside an active library."""

    module: str  # dotted subtree root, e.g. "slnltk.sem"
    init_ms: float
    init_share: float
    utilization: float


@dataclass
class InefficiencyReport:
    """Analyzer output: findings plus the machine-applicable plan."""

    app: str
    profiled: bool  # False when the init-ratio gate said "skip"
    init_ratio: float
    total_init_ms: float
    total_runtime_weight: float
    rows: list[LibraryRow] = field(default_factory=list)
    subtree_flags: list[SubtreeFlag] = field(default_factory=list)
    plan: DeferralPlan = None  # type: ignore[assignment]
    call_paths: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.plan is None:
            self.plan = DeferralPlan.empty(self.app)

    @property
    def flagged_modules(self) -> list[str]:
        return sorted(self.plan.all_deferred)

    def row(self, library: str) -> LibraryRow:
        for candidate in self.rows:
            if candidate.library == library:
                return candidate
        raise KeyError(f"no analyzer row for library {library!r}")


class Analyzer:
    """Turns profile bundles into inefficiency reports."""

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()

    # -- utilization ---------------------------------------------------------

    def library_utilization(
        self, bundle: ProfileBundle, attributor: LibraryAttributor
    ) -> tuple[dict[str, float], float]:
        """Escalated ``U(L)`` per library plus the sample denominator.

        Runtime samples only (init samples are execution of module
        top-level code and must not count as usage — §III TC-2(3)).  The
        denominator is the weight of runtime samples that touch *library*
        code: handler-local work (request parsing, model math written in
        the handler itself) does not dilute library utilization, so an
        execution-heavy application cannot push a genuinely hot library
        under the rare threshold.
        """
        touched: dict[str, float] = {}
        denominator = 0.0
        for sample in bundle.samples:
            if sample.kind != RUNTIME:
                continue
            libraries = attributor.libraries_in(sample.path)
            if not libraries:
                continue
            denominator += sample.weight
            for library in libraries:
                touched[library] = touched.get(library, 0.0) + sample.weight
        if denominator <= 0:
            return {}, 0.0
        return (
            {library: weight / denominator for library, weight in touched.items()},
            denominator,
        )

    def module_utilization(
        self, bundle: ProfileBundle, attributor: LibraryAttributor
    ) -> dict[str, float]:
        """Per-module escalated touch weight (same denominator as U(L))."""
        touched: dict[str, float] = {}
        denominator = 0.0
        for sample in bundle.samples:
            if sample.kind != RUNTIME:
                continue
            modules = attributor.modules_in(sample.path)
            if not modules:
                continue
            denominator += sample.weight
            for module in modules:
                touched[module] = touched.get(module, 0.0) + sample.weight
        if denominator <= 0:
            return {}
        return {module: weight / denominator for module, weight in touched.items()}

    def subtree_utilization(
        self, module_util: dict[str, float], subtree_root: str
    ) -> float:
        """Upper bound on a subtree's utilization (sum of touch fractions)."""
        prefix = subtree_root + "."
        return sum(
            value
            for module, value in module_util.items()
            if module == subtree_root or module.startswith(prefix)
        )

    # -- main entry ------------------------------------------------------------

    def analyze(
        self, bundle: ProfileBundle, attributor: LibraryAttributor
    ) -> InefficiencyReport:
        profile = bundle.import_profile
        total_init = profile.total_init_ms
        report = InefficiencyReport(
            app=bundle.app,
            profiled=bundle.init_ratio >= self.config.init_ratio_threshold,
            init_ratio=bundle.init_ratio,
            total_init_ms=total_init,
            total_runtime_weight=0.0,
        )
        if not report.profiled or total_init <= 0:
            return report

        library_util, denominator = self.library_utilization(bundle, attributor)
        module_util = self.module_utilization(bundle, attributor)
        report.total_runtime_weight = denominator

        deferred_handler: set[str] = set()
        deferred_edges: set[str] = set()
        libraries = [
            library
            for library in profile.library_names()
            if library in attributor.library_names
        ]
        handler_tops = {
            dotted.partition(".")[0]: dotted for dotted in bundle.handler_imports
        }

        for library in sorted(
            libraries, key=lambda name: -profile.library_init_ms(name)
        ):
            init_ms = profile.library_init_ms(library)
            init_share = init_ms / total_init
            utilization = library_util.get(library, 0.0)
            if utilization <= 0.0:
                classification = UNUSED
            elif utilization < self.config.rare_utilization_threshold:
                classification = RARE
            else:
                classification = ACTIVE

            deferral = "none"
            if (
                classification in (UNUSED, RARE)
                and init_share >= self.config.min_library_init_share
            ):
                if library in handler_tops:
                    deferred_handler.add(handler_tops[library])
                    deferral = "handler"
                else:
                    # Loaded transitively by another library: stub the edge.
                    deferred_edges.add(library)
                    deferral = "library"
            elif classification == ACTIVE:
                flags = self._scan_subtrees(
                    profile, module_util, library, total_init
                )
                if flags:
                    deferral = "library"
                for flag in flags:
                    report.subtree_flags.append(flag)
                    deferred_edges.add(flag.module)

            report.rows.append(
                LibraryRow(
                    library=library,
                    utilization=utilization,
                    init_ms=init_ms,
                    init_share=init_share,
                    classification=classification,
                    deferral=deferral,
                )
            )

        report.plan = DeferralPlan(
            app=bundle.app,
            deferred_handler_imports=frozenset(deferred_handler),
            deferred_library_edges=frozenset(deferred_edges),
        )
        report.call_paths = self._call_paths(bundle, attributor, report)
        return report

    def _scan_subtrees(
        self,
        profile,
        module_util: dict[str, float],
        library: str,
        total_init: float,
    ) -> list[SubtreeFlag]:
        """Hierarchical top-down scan for cold subtrees (Fig. 6 policy).

        Starting from the library's direct children: a loaded subtree whose
        runtime utilization falls below the rare threshold (Table IV's
        ``nltk.sem``, utilization 0; Table V's rarely-needed validators)
        and whose init cost is worth saving is flagged whole; a subtree
        with mixed usage is descended into.
        """
        flags: list[SubtreeFlag] = []

        def visit(subtree_root: str, depth: int) -> None:
            init_ms = profile.subtree_init_ms(subtree_root)
            init_share = init_ms / total_init
            if init_share < self.config.min_subtree_init_share:
                return
            utilization = self.subtree_utilization(module_util, subtree_root)
            if utilization < self.config.rare_utilization_threshold:
                flags.append(
                    SubtreeFlag(
                        module=subtree_root,
                        init_ms=init_ms,
                        init_share=init_share,
                        utilization=utilization,
                    )
                )
                return  # flag whole subtree; no need to descend
            if depth < self.config.max_subtree_depth:
                for child in profile.children_of(subtree_root):
                    visit(child, depth + 1)

        for child in profile.children_of(library):
            visit(child, 1)
        return flags

    def _call_paths(
        self,
        bundle: ProfileBundle,
        attributor: LibraryAttributor,
        report: InefficiencyReport,
    ) -> dict[str, list[str]]:
        """Representative call paths for every flagged module (Tables IV/V)."""
        tree = CallingContextTree.from_samples(bundle.samples)
        paths: dict[str, list[str]] = {}
        for dotted in report.flagged_modules:
            prefix = dotted + "."

            def matches(frame) -> bool:
                module = attributor.module_of(frame)
                return module is not None and (
                    module == dotted or module.startswith(prefix)
                )

            rendered = [
                " -> ".join(
                    f"{frame.file.rsplit('/', 1)[-1]}:{frame.function}"
                    for frame in path
                )
                for path, _ in tree.paths_to(matches, limit=3)
            ]
            if rendered:
                paths[dotted] = rendered
        return paths


def dynamic_categorization(
    bundle: ProfileBundle,
    attributor: LibraryAttributor,
    rare_threshold: float = 0.02,
) -> dict[str, float]:
    """Fig. 2's DYN columns: init overhead split by observed usage.

    Init overhead is categorized at the same granularity the analyzer
    optimizes — libraries and their direct sub-packages — into buckets:
    **no-sample** (never observed executing), **0-2 %** of samples
    (rarely observed), and **> 2 %** (hot).  The no-sample plus rare
    fractions bound the latency reduction lazy loading can achieve
    (§II-B); per-module bucketing would be meaningless here because a
    hot package's individual modules each hold a sliver of time.
    """
    analyzer = Analyzer()
    module_util = analyzer.module_utilization(bundle, attributor)
    library_util, _ = analyzer.library_utilization(bundle, attributor)
    profile = bundle.import_profile
    total = profile.total_init_ms
    if total <= 0:
        return {"no_sample": 0.0, "rare": 0.0, "hot": 0.0}
    buckets = {"no_sample": 0.0, "rare": 0.0, "hot": 0.0}

    def bucket_for(utilization: float) -> str:
        if utilization <= 0.0:
            return "no_sample"
        if utilization < rare_threshold:
            return "rare"
        return "hot"

    for library in profile.library_names():
        if library not in attributor.library_names:
            continue
        children = profile.children_of(library)
        accounted = 0.0
        for child in children:
            share = profile.subtree_init_ms(child) / total
            accounted += share
            utilization = analyzer.subtree_utilization(module_util, child)
            buckets[bucket_for(utilization)] += share
        # The library root module's own init follows the library verdict.
        root_share = profile.library_init_ms(library) / total - accounted
        buckets[bucket_for(library_util.get(library, 0.0))] += max(0.0, root_share)
    return buckets
