"""Sample records and library attribution.

A :class:`Sample` is one observation of the application's call stack, root
(handler) first.  Samples carry a ``kind``: ``"runtime"`` for ordinary
execution and ``"init"`` for stacks caught inside module top-level code —
the distinction §III (TC-2) requires so initialization activity never
inflates a library's runtime-utilization metric.

Attribution maps stack frames to synthetic-library modules via file paths,
which works identically for frames captured from real execution (files live
under a workspace directory) and frames synthesized by the simulator (files
live under the virtual ``<sim>`` prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

RUNTIME = "runtime"
INIT = "init"

#: Function name CPython gives to module top-level code.
MODULE_TOPLEVEL = "<module>"

#: Substrings identifying interpreter import machinery frames.
_IMPORT_MACHINERY_MARKERS = ("importlib", "<frozen importlib")


@dataclass(frozen=True, order=True)
class Frame:
    """One stack frame: file path, function name, line number."""

    file: str
    function: str
    line: int = 0


@dataclass(frozen=True)
class Sample:
    """One stack observation, root-first, with a statistical weight.

    Real profilers emit weight-1 samples; the simulator emits fractional
    expected weights (self-time divided by the sampling interval), which
    makes simulated profiles deterministic instead of merely unbiased.
    """

    path: tuple[Frame, ...]
    weight: float = 1.0
    kind: str = RUNTIME

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("sample must contain at least one frame")
        if self.weight <= 0:
            raise ValueError(f"sample weight must be positive: {self.weight}")
        if self.kind not in (RUNTIME, INIT):
            raise ValueError(f"unknown sample kind: {self.kind!r}")


def is_import_machinery(frame: Frame) -> bool:
    """True for CPython's importlib bootstrap frames."""
    return any(marker in frame.file for marker in _IMPORT_MACHINERY_MARKERS)


def classify_stack(path: tuple[Frame, ...]) -> tuple[tuple[Frame, ...], str]:
    """Clean a raw captured stack and classify it as init or runtime.

    Drops interpreter import-machinery frames (they carry no attribution
    value) and returns ``kind=INIT`` when any such frame was present: in
    CPython every executing import statement has importlib bootstrap
    frames on the stack, so their presence is exactly "module top-level
    code is running below an import" (§IV-A: samples originating from
    ``__init__``).  Merely *seeing* a ``<module>`` frame is not enough —
    process runners (runpy, pytest's ``__main__``) put module-level frames
    at the bottom of every stack.
    """
    cleaned = tuple(frame for frame in path if not is_import_machinery(frame))
    had_machinery = len(cleaned) != len(path)
    kind = INIT if had_machinery else RUNTIME
    if not cleaned:
        cleaned = (Frame(file="<import>", function=MODULE_TOPLEVEL),)
    return cleaned, kind


class SampleSet:
    """A weighted collection of samples with aggregate views."""

    def __init__(self, samples: Iterable[Sample] = ()) -> None:
        self._samples: list[Sample] = list(samples)

    def add(self, sample: Sample) -> None:
        self._samples.append(sample)

    def extend(self, samples: Iterable[Sample]) -> None:
        self._samples.extend(samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    @property
    def total_weight(self) -> float:
        return sum(sample.weight for sample in self._samples)

    def runtime_weight(self) -> float:
        return sum(s.weight for s in self._samples if s.kind == RUNTIME)

    def init_weight(self) -> float:
        return sum(s.weight for s in self._samples if s.kind == INIT)

    def of_kind(self, kind: str) -> "SampleSet":
        return SampleSet(s for s in self._samples if s.kind == kind)

    def merged_with(self, other: "SampleSet") -> "SampleSet":
        merged = SampleSet(self._samples)
        merged.extend(other)
        return merged

    # -- serialization (for the collector) ---------------------------------

    def to_dict(self) -> dict:
        return {
            "samples": [
                {
                    "path": [[f.file, f.function, f.line] for f in sample.path],
                    "weight": sample.weight,
                    "kind": sample.kind,
                }
                for sample in self._samples
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SampleSet":
        samples = [
            Sample(
                path=tuple(
                    Frame(file=file, function=function, line=line)
                    for file, function, line in entry["path"]
                ),
                weight=entry["weight"],
                kind=entry["kind"],
            )
            for entry in payload["samples"]
        ]
        return cls(samples)


@dataclass
class LibraryAttributor:
    """Maps frames to library modules using file-path structure.

    ``workspace_prefixes`` are directory prefixes under which library code
    lives (a real workspace path, the simulator's ``<sim>`` prefix, or
    both); ``library_names`` restricts attribution to known top-level
    packages so application/handler frames map to ``None``.
    """

    workspace_prefixes: tuple[str, ...]
    library_names: frozenset[str]
    _cache: dict[str, str | None] = field(default_factory=dict, repr=False)

    def module_of(self, frame: Frame) -> str | None:
        """Dotted module path for a library frame, else ``None``."""
        cached = self._cache.get(frame.file, "?")
        if cached != "?":
            return cached
        result = self._resolve(frame.file)
        self._cache[frame.file] = result
        return result

    def _resolve(self, file: str) -> str | None:
        relative: str | None = None
        for prefix in self.workspace_prefixes:
            normalized = prefix.rstrip("/")
            if file.startswith(normalized + "/"):
                relative = file[len(normalized) + 1 :]
                break
        if relative is None or not relative.endswith(".py"):
            return None
        parts = relative[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if not parts or parts[0] not in self.library_names:
            return None
        return ".".join(parts)

    def library_of(self, frame: Frame) -> str | None:
        module = self.module_of(frame)
        if module is None:
            return None
        return module.partition(".")[0]

    def libraries_in(self, path: tuple[Frame, ...]) -> set[str]:
        """Every library touched anywhere in a stack."""
        return {
            library
            for library in (self.library_of(frame) for frame in path)
            if library is not None
        }

    def modules_in(self, path: tuple[Frame, ...]) -> set[str]:
        """Every library module touched anywhere in a stack."""
        return {
            module
            for module in (self.module_of(frame) for frame in path)
            if module is not None
        }

    def touches_workspace(self, path: tuple[Frame, ...]) -> bool:
        """True when any frame's file lives under a workspace prefix.

        Samples that never touch the workspace were caught in platform or
        profiler plumbing between requests; they are excluded from Eq. 4's
        denominator (which ranges over "all functions in the application").
        """
        for frame in path:
            for prefix in self.workspace_prefixes:
                if frame.file.startswith(prefix.rstrip("/") + "/"):
                    return True
        return False
