"""Import time recorder: measures per-module initialization cost.

Installs a meta-path finder that wraps the loader of every monitored module
with a timing shim, producing an :class:`ImportProfile` with self and
cumulative times plus the import-parent relationship (who triggered whom) —
the data behind the paper's hierarchical initialization breakdown (Fig. 6,
Eqs. 1-3).  The recorder is the "Import Time Recorder" box of Fig. 7.
"""

from __future__ import annotations

import importlib.abc
import importlib.machinery
import sys
import time
from typing import Any, Iterable, Sequence

from repro.common.errors import ProfilingError
from repro.core.profiles import ImportProfile, ImportRecord


class _TimingLoader(importlib.abc.Loader):
    """Delegating loader that times ``exec_module``."""

    def __init__(self, inner: Any, recorder: "ImportTimeRecorder", name: str) -> None:
        self._inner = inner
        self._recorder = recorder
        self._name = name

    def create_module(self, spec):  # noqa: D102 - importlib protocol
        return self._inner.create_module(spec)

    def exec_module(self, module):  # noqa: D102 - importlib protocol
        self._recorder._enter(self._name)
        start = time.perf_counter()
        try:
            self._inner.exec_module(module)
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self._recorder._exit(self._name, elapsed_ms)

    def __getattr__(self, attribute: str) -> Any:
        # Preserve loader capabilities (get_code, resource readers, ...).
        return getattr(self._inner, attribute)


class _RecorderFinder(importlib.abc.MetaPathFinder):
    def __init__(self, recorder: "ImportTimeRecorder") -> None:
        self._recorder = recorder
        self._resolving: set[str] = set()

    def find_spec(self, fullname, path=None, target=None):  # noqa: D102
        if fullname in self._resolving:
            return None
        if not self._recorder.monitors(fullname):
            return None
        self._resolving.add(fullname)
        try:
            spec = importlib.machinery.PathFinder.find_spec(fullname, path)
        finally:
            self._resolving.discard(fullname)
        if spec is None or spec.loader is None:
            return None
        spec.loader = _TimingLoader(spec.loader, self._recorder, fullname)
        return spec


class ImportTimeRecorder:
    """Context manager measuring monitored modules' import times.

    ``prefixes`` are top-level module names to monitor (library names plus
    the handler module); everything else imports untouched.  Usage::

        with ImportTimeRecorder(["sligraph", "handler"]) as recorder:
            importlib.import_module("handler")
        profile = recorder.profile()
    """

    def __init__(self, prefixes: Iterable[str]) -> None:
        self._prefixes = tuple(dict.fromkeys(prefixes))
        if not self._prefixes:
            raise ProfilingError("import recorder needs at least one prefix")
        self._finder = _RecorderFinder(self)
        self._stack: list[list] = []  # [name, child_cumulative_ms]
        self._records: dict[str, ImportRecord] = {}
        self._order = 0
        self._installed = False

    def monitors(self, fullname: str) -> bool:
        top = fullname.partition(".")[0]
        return top in self._prefixes

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "ImportTimeRecorder":
        if self._installed:
            raise ProfilingError("import recorder already installed")
        sys.meta_path.insert(0, self._finder)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        try:
            sys.meta_path.remove(self._finder)
        except ValueError:
            pass
        self._installed = False

    def __enter__(self) -> "ImportTimeRecorder":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- loader callbacks ------------------------------------------------------

    def _enter(self, name: str) -> None:
        self._stack.append([name, 0.0])

    def _exit(self, name: str, cumulative_ms: float) -> None:
        entry = self._stack.pop()
        if entry[0] != name:
            # Imports are strictly nested; a mismatch means our bookkeeping
            # broke (e.g. an exception unwound through several imports).
            self._stack.clear()
            raise ProfilingError(
                f"import nesting mismatch: expected {entry[0]!r}, got {name!r}"
            )
        child_ms = entry[1]
        self_ms = max(0.0, cumulative_ms - child_ms)
        parent = self._stack[-1][0] if self._stack else None
        if self._stack:
            self._stack[-1][1] += cumulative_ms
        if name not in self._records:
            self._order += 1
            self._records[name] = ImportRecord(
                module=name,
                self_ms=self_ms,
                cumulative_ms=cumulative_ms,
                parent=parent,
                order=self._order,
            )

    # -- results -----------------------------------------------------------------

    def profile(self) -> ImportProfile:
        return ImportProfile(self._records.values())

    def reset(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._order = 0


def record_import(
    module_name: str, prefixes: Sequence[str]
) -> tuple[Any, ImportProfile]:
    """Convenience: import ``module_name`` fresh while recording.

    The module must not already be in ``sys.modules`` (use the container
    sandbox purge first); returns ``(module, profile)``.
    """
    if module_name in sys.modules:
        raise ProfilingError(
            f"{module_name!r} is already imported; purge before recording"
        )
    import importlib as _importlib

    with ImportTimeRecorder(list(prefixes) + [module_name]) as recorder:
        module = _importlib.import_module(module_name)
    return module, recorder.profile()
