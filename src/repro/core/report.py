"""Rendering of SLIMSTART summary reports (the shape of Tables IV and V).

The analyzer produces structured data; this module formats it for humans:
a package table (utilization vs. initialization overhead) followed by the
representative call paths of every flagged package.
"""

from __future__ import annotations

from repro.core.analyzer import InefficiencyReport

_RULE = "-" * 72


def render_report(report: InefficiencyReport) -> str:
    """Render one application's inefficiency report as text."""
    lines = [
        "SLIMSTART Summary",
        f"Application: {report.app}",
        f"Initialization ratio: {report.init_ratio:.1%}"
        + ("" if report.profiled else "  (below threshold; not profiled)"),
        f"Total library initialization: {report.total_init_ms:.1f} ms",
        _RULE,
    ]
    if not report.profiled:
        lines.append("No optimization performed.")
        return "\n".join(lines)

    lines.append(
        f"{'':2}{'Package':<34}{'Util.':>8}{'Init.Overhead':>15}  Class"
    )
    for row in report.rows:
        marker = "-" if row.deferral == "none" else "+"
        lines.append(
            f"{marker:2}{row.library:<34}{row.utilization:>7.2%}"
            f"{row.init_share:>14.2%}  {row.classification}"
            + (f" [{row.deferral}]" if row.deferral != "none" else "")
        )
        for flag in report.subtree_flags:
            if flag.module.partition(".")[0] != row.library:
                continue
            lines.append(
                f"{'+':2}{'  ' + flag.module:<34}{flag.utilization:>7.2%}"
                f"{flag.init_share:>14.2%}  deferred subtree"
            )
    if report.plan.is_empty:
        lines.append(_RULE)
        lines.append("No inefficiencies found; plan is empty.")
        return "\n".join(lines)

    lines.append(_RULE)
    lines.append("Deferral plan:")
    for dotted in sorted(report.plan.deferred_handler_imports):
        lines.append(f"  handler-level lazy import: {dotted}")
    for dotted in sorted(report.plan.deferred_library_edges):
        lines.append(f"  library-level lazy stub:   {dotted}")

    if report.call_paths:
        lines.append(_RULE)
        lines.append("Call paths:")
        for dotted, paths in sorted(report.call_paths.items()):
            lines.append(f"  Package: {dotted}")
            for path in paths:
                lines.append(f"    {path}")
    return "\n".join(lines)


def render_comparison_row(
    label: str,
    before_memory_mb: float,
    after_memory_mb: float,
    before_e2e_ms: float,
    after_e2e_ms: float,
) -> str:
    """One before/after line in the Table III layout."""
    memory_ratio = before_memory_mb / after_memory_mb if after_memory_mb else 0.0
    latency_ratio = before_e2e_ms / after_e2e_ms if after_e2e_ms else 0.0
    return (
        f"{label:<28} mem {before_memory_mb:8.2f} -> {after_memory_mb:8.2f} MB"
        f" ({memory_ratio:4.2f}x)   e2e {before_e2e_ms:9.2f} -> "
        f"{after_e2e_ms:9.2f} ms ({latency_ratio:4.2f}x)"
    )
