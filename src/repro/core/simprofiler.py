"""Deterministic profile synthesis from simulator execution traces.

The simulator records exactly what each invocation executed (module init
segments and call-path segments with self-times).  This module converts
those traces into the same :class:`ProfileBundle` the real profiler
produces — with one deliberate difference: instead of drawing random
samples at a rate, each segment yields a *fractional expected sample
weight* (``self_ms / interval_ms``).  Profiles are therefore exactly the
expectation of statistical sampling, which makes every downstream number
in the evaluation bit-reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import ProfilingError
from repro.core.profiles import ImportProfile, ImportRecord, ProfileBundle
from repro.core.samples import INIT, RUNTIME, Frame, Sample, SampleSet
from repro.faas.events import InvocationRecord, entry_counts
from repro.faas.sim import ExecutionTrace, SimAppConfig

#: Virtual path prefix for simulator-synthesized frames.
SIM_PREFIX = "<sim>"


_FRAME_CACHE: dict[tuple[str, str], Frame] = {}


def frame_for_ref(qualified: str) -> Frame:
    """Synthesize a frame for a qualified function ref ``lib.mod:fn``."""
    cached = _FRAME_CACHE.get((qualified, ""))
    if cached is not None:
        return cached
    dotted, _, function = qualified.partition(":")
    path = dotted.replace(".", "/")
    frame = Frame(file=f"{SIM_PREFIX}/{path}.py", function=function, line=1)
    _FRAME_CACHE[(qualified, "")] = frame
    return frame


def frame_for_module(dotted: str) -> Frame:
    """Synthesize a module top-level frame for init attribution."""
    cached = _FRAME_CACHE.get((dotted, "<module>"))
    if cached is not None:
        return cached
    path = dotted.replace(".", "/")
    frame = Frame(file=f"{SIM_PREFIX}/{path}.py", function="<module>", line=1)
    _FRAME_CACHE[(dotted, "<module>")] = frame
    return frame


def samples_from_traces(
    traces: Iterable[ExecutionTrace],
    interval_ms: float = 5.0,
) -> SampleSet:
    """Expected-value samples for every trace segment.

    Identical call paths recur across invocations of the same entry, so
    self-times are accumulated per unique ``(entry, path)`` first and each
    unique path becomes one weighted sample — semantically identical to
    per-trace samples (weights are additive) but orders of magnitude
    smaller for realistic workloads.
    """
    if interval_ms <= 0:
        raise ProfilingError(f"interval must be positive: {interval_ms}")
    runtime_ms: dict[tuple, float] = {}
    init_ms: dict[tuple, float] = {}
    for trace in traces:
        entry_key = (trace.app, trace.entry)
        for segment in trace.call_segments:
            if segment.self_ms <= 0:
                continue
            key = (entry_key, segment.path)
            runtime_ms[key] = runtime_ms.get(key, 0.0) + segment.self_ms
        for segment in trace.init_segments:
            if segment.self_ms > 0:
                key = (entry_key, segment.module)
                init_ms[key] = init_ms.get(key, 0.0) + segment.self_ms
        for segment in trace.lazy_init_segments:
            if segment.self_ms > 0:
                key = (entry_key, segment.module)
                init_ms[key] = init_ms.get(key, 0.0) + segment.self_ms

    samples = SampleSet()
    for ((app, entry), path), total_ms in runtime_ms.items():
        handler_frame = Frame(
            file=f"{SIM_PREFIX}/{app}/handler.py", function=entry, line=1
        )
        frames = tuple(frame_for_ref(ref) for ref in path[1:])
        samples.add(
            Sample(
                path=(handler_frame,) + frames,
                weight=total_ms / interval_ms,
                kind=RUNTIME,
            )
        )
    for ((app, entry), module), total_ms in init_ms.items():
        handler_frame = Frame(
            file=f"{SIM_PREFIX}/{app}/handler.py", function=entry, line=1
        )
        samples.add(
            Sample(
                path=(handler_frame, frame_for_module(module)),
                weight=total_ms / interval_ms,
                kind=INIT,
            )
        )
    return samples


def import_profile_from_traces(
    traces: Sequence[ExecutionTrace],
) -> ImportProfile:
    """Average per-module init times over the traces that loaded them.

    Cold-start init segments and runtime lazy-load segments both count:
    a module deferred by the currently-deployed plan still surfaces in
    the import profile when some request loads it at first use, so
    re-profiling an already-optimized application sees its real costs.
    """
    cold = [trace for trace in traces if trace.cold]
    if not cold:
        raise ProfilingError("no cold-start traces to derive an import profile")
    totals: dict[str, float] = {}
    loads: dict[str, int] = {}
    for trace in traces:
        segments = list(trace.lazy_init_segments)
        if trace.cold:
            segments.extend(trace.init_segments)
        for segment in segments:
            totals[segment.module] = totals.get(segment.module, 0.0) + segment.self_ms
            loads[segment.module] = loads.get(segment.module, 0) + 1
    profile = ImportProfile()
    order = 0
    for module in sorted(totals):
        order += 1
        parent, _, _ = module.rpartition(".")
        self_ms = totals[module] / loads[module]
        profile.add(
            ImportRecord(
                module=module,
                self_ms=self_ms,
                cumulative_ms=self_ms,  # refined below
                parent=parent or None,
                order=order,
            )
        )
    return profile


def bundle_from_simulation(
    config: SimAppConfig,
    traces: Sequence[ExecutionTrace],
    records: Sequence[InvocationRecord],
    interval_ms: float = 5.0,
) -> ProfileBundle:
    """Assemble the full analyzer input from one simulated workload run."""
    cold_records = [record for record in records if record.cold]
    if not cold_records:
        raise ProfilingError("workload produced no cold starts to profile")
    mean_e2e = sum(r.e2e_ms for r in cold_records) / len(cold_records)
    mean_init = sum(r.init_ms for r in cold_records) / len(cold_records)
    return ProfileBundle(
        app=config.name,
        import_profile=import_profile_from_traces(traces),
        samples=samples_from_traces(traces, interval_ms=interval_ms),
        entry_counts=entry_counts(records),
        handler_imports=tuple(config.handler_imports),
        mean_cold_e2e_ms=mean_e2e,
        mean_cold_init_ms=mean_init,
        cold_starts=len(cold_records),
    )
