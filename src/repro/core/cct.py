"""Calling Context Tree (CCT) with upward sample escalation.

The CCT (Ammons/Ball/Larus [21]; §IV-A of the paper) stores every sampled
call path as a root-to-leaf chain.  Two properties matter for SLIMSTART:

* **Escalation** — a node's *total* weight includes everything sampled in
  its subtree, so an orchestrator library that delegates all real work to
  callees (Fig. 5's ``Lib-1``, 1 % of raw samples) still shows the full
  activity it coordinates.
* **Context preservation** — the same function reached through different
  call paths occupies different nodes, so per-path usage of a multi-path
  library (Fig. 5's ``Lib-6``) is never conflated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.core.samples import Frame, Sample, SampleSet

_ROOT_FRAME = Frame(file="<root>", function="<root>")


@dataclass
class CCTNode:
    """One calling context: a frame plus per-kind self weights."""

    frame: Frame
    children: dict[Frame, "CCTNode"] = field(default_factory=dict)
    self_runtime: float = 0.0
    self_init: float = 0.0

    @property
    def self_weight(self) -> float:
        return self.self_runtime + self.self_init

    def child(self, frame: Frame) -> "CCTNode":
        node = self.children.get(frame)
        if node is None:
            node = CCTNode(frame=frame)
            self.children[frame] = node
        return node

    def total_runtime(self) -> float:
        """Escalated runtime weight: self plus the entire subtree."""
        return self.self_runtime + sum(
            child.total_runtime() for child in self.children.values()
        )

    def total_init(self) -> float:
        return self.self_init + sum(
            child.total_init() for child in self.children.values()
        )

    def total_weight(self) -> float:
        return self.total_runtime() + self.total_init()


class CallingContextTree:
    """The profiler's accumulated view of where time is spent."""

    def __init__(self) -> None:
        self.root = CCTNode(frame=_ROOT_FRAME)

    # -- construction ------------------------------------------------------

    def add_sample(self, sample: Sample) -> None:
        """Insert one root-first stack; weight lands on the leaf node."""
        node = self.root
        for frame in sample.path:
            node = node.child(frame)
        if sample.kind == "init":
            node.self_init += sample.weight
        else:
            node.self_runtime += sample.weight

    @classmethod
    def from_samples(cls, samples: Iterable[Sample] | SampleSet) -> "CallingContextTree":
        tree = cls()
        for sample in samples:
            tree.add_sample(sample)
        return tree

    def merge(self, other: "CallingContextTree") -> None:
        """Fold another CCT into this one (profile aggregation, §IV-D)."""

        def fold(target: CCTNode, source: CCTNode) -> None:
            target.self_runtime += source.self_runtime
            target.self_init += source.self_init
            for frame, source_child in source.children.items():
                fold(target.child(frame), source_child)

        fold(self.root, other.root)

    # -- traversal -----------------------------------------------------------

    def walk(self) -> Iterator[tuple[tuple[Frame, ...], CCTNode]]:
        """Yield ``(path, node)`` for every node below the root."""

        def visit(
            node: CCTNode, path: tuple[Frame, ...]
        ) -> Iterator[tuple[tuple[Frame, ...], CCTNode]]:
            for frame, child in node.children.items():
                child_path = path + (frame,)
                yield child_path, child
                yield from visit(child, child_path)

        yield from visit(self.root, ())

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def total_runtime(self) -> float:
        return self.root.total_runtime()

    def total_init(self) -> float:
        return self.root.total_init()

    # -- queries -------------------------------------------------------------

    def escalated_weights(
        self, key: Callable[[Frame], str | None]
    ) -> dict[str, float]:
        """Escalated *runtime* weight per attribution key.

        A sample's weight counts toward key ``k`` when any frame on its
        path maps to ``k`` — and exactly once, however many of the path's
        frames map to ``k``.  This is the CCT-escalation semantics of
        §IV-A: callee activity propagates to every distinct caller group
        above it, without double counting inside one group.
        """
        totals: dict[str, float] = {}

        def visit(node: CCTNode, active: frozenset[str]) -> None:
            frame_key = key(node.frame)
            here = active
            if frame_key is not None and frame_key not in here:
                here = here | {frame_key}
            if node.self_runtime > 0:
                for group in here:
                    totals[group] = totals.get(group, 0.0) + node.self_runtime
            for child in node.children.values():
                visit(child, here)

        for child in self.root.children.values():
            visit(child, frozenset())
        return totals

    def paths_to(
        self, predicate: Callable[[Frame], bool], limit: int = 5
    ) -> list[tuple[tuple[Frame, ...], float]]:
        """Heaviest call paths whose final frame satisfies ``predicate``.

        Returns ``(path, escalated weight)`` pairs, heaviest first — the
        "Call Path" section of the SLIMSTART summary reports (Tables IV/V).
        """
        matches: list[tuple[tuple[Frame, ...], float]] = []
        for path, node in self.walk():
            if predicate(path[-1]):
                matches.append((path, node.total_runtime() + node.total_init()))
        matches.sort(key=lambda item: (-item[1], item[0]))
        return matches[:limit]

    # -- rendering / serialization --------------------------------------------

    def render(self, max_depth: int = 6, min_weight: float = 0.0) -> str:
        """Human-readable tree (heaviest subtrees first)."""
        lines: list[str] = []

        def visit(node: CCTNode, depth: int) -> None:
            if depth > max_depth:
                return
            ordered = sorted(
                node.children.values(),
                key=lambda child: -child.total_weight(),
            )
            for child in ordered:
                weight = child.total_weight()
                if weight < min_weight:
                    continue
                frame = child.frame
                lines.append(
                    f"{'  ' * depth}{frame.function} "
                    f"({frame.file}:{frame.line}) "
                    f"total={weight:.1f} self={child.self_weight:.1f}"
                )
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        def encode(node: CCTNode) -> dict:
            return {
                "frame": [node.frame.file, node.frame.function, node.frame.line],
                "runtime": node.self_runtime,
                "init": node.self_init,
                "children": [encode(child) for child in node.children.values()],
            }

        return encode(self.root)

    @classmethod
    def from_dict(cls, payload: dict) -> "CallingContextTree":
        tree = cls()

        def decode(data: dict) -> CCTNode:
            file, function, line = data["frame"]
            node = CCTNode(frame=Frame(file=file, function=function, line=line))
            node.self_runtime = data["runtime"]
            node.self_init = data["init"]
            for child_data in data["children"]:
                child = decode(child_data)
                node.children[child.frame] = child
            return node

        tree.root = decode(payload)
        return tree
