"""Adaptive workload monitor (Eqs. 5-7 and Fig. 10).

Tracks per-entry invocation probabilities over fixed windows and triggers
re-profiling when the aggregate probability shift between consecutive
windows exceeds ``epsilon``.  Works both online (observe invocations as
they arrive) and offline (feed per-window counts from a production trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import WorkloadError

#: Paper defaults: 12-hour windows, epsilon = 0.002.
DEFAULT_WINDOW_S = 12 * 3600.0
DEFAULT_EPSILON = 0.002


def invocation_probabilities(counts: Mapping[str, int]) -> dict[str, float]:
    """Eq. 5: ``p_i(t)`` from a window's per-entry invocation counts."""
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {entry: count / total for entry, count in counts.items()}


def probability_shift(
    previous: Mapping[str, float], current: Mapping[str, float]
) -> float:
    """Eq. 6/7 aggregate: ``sum_i |p_i(t) - p_i(t - dt)|``.

    Entries absent from a window have probability 0 there, so appearing or
    disappearing entry points register as shift — exactly the workload
    changes the adaptive mechanism must catch.  Summation runs in sorted
    entry order so the result is deterministic and exactly symmetric in
    its arguments (set iteration order would vary float rounding).
    """
    entries = sorted(set(previous) | set(current))
    return sum(
        abs(current.get(entry, 0.0) - previous.get(entry, 0.0)) for entry in entries
    )


@dataclass(frozen=True)
class WindowDecision:
    """One window's monitoring outcome."""

    window_index: int
    window_end_s: float
    probabilities: dict[str, float]
    shift: float
    triggered: bool


class WorkloadMonitor:
    """Online monitor: feed invocations, harvest profiling triggers."""

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        epsilon: float = DEFAULT_EPSILON,
        start_time_s: float = 0.0,
    ) -> None:
        if window_s <= 0:
            raise WorkloadError(f"window must be positive: {window_s}")
        if epsilon < 0:
            raise WorkloadError(f"epsilon must be non-negative: {epsilon}")
        self.window_s = window_s
        self.epsilon = epsilon
        self._window_start = start_time_s
        self._counts: dict[str, int] = {}
        self._previous: dict[str, float] | None = None
        self._decisions: list[WindowDecision] = []

    def observe(self, entry: str, timestamp_s: float) -> list[WindowDecision]:
        """Record one invocation; returns any window decisions closed by it.

        Invocations must arrive in non-decreasing time order (they come
        from a single platform's record stream, which guarantees that).
        """
        if timestamp_s < self._window_start:
            raise WorkloadError(
                f"out-of-order invocation at {timestamp_s} "
                f"(window starts {self._window_start})"
            )
        closed: list[WindowDecision] = []
        while timestamp_s >= self._window_start + self.window_s:
            closed.append(self._close_window())
        self._counts[entry] = self._counts.get(entry, 0) + 1
        return closed

    def flush(self) -> WindowDecision:
        """Force-close the current window (end of a trace replay)."""
        return self._close_window()

    def _close_window(self) -> WindowDecision:
        probabilities = invocation_probabilities(self._counts)
        if self._previous is None:
            shift = 0.0  # first window has no baseline to compare with
        else:
            shift = probability_shift(self._previous, probabilities)
        decision = WindowDecision(
            window_index=len(self._decisions),
            window_end_s=self._window_start + self.window_s,
            probabilities=probabilities,
            shift=shift,
            triggered=self._previous is not None and shift > self.epsilon,
        )
        self._decisions.append(decision)
        if probabilities or self._previous is None:
            self._previous = probabilities
        self._window_start += self.window_s
        self._counts = {}
        return decision

    @property
    def decisions(self) -> list[WindowDecision]:
        return list(self._decisions)

    def triggers(self) -> list[WindowDecision]:
        return [decision for decision in self._decisions if decision.triggered]


def shifts_from_window_counts(
    windows: Iterable[Mapping[str, int]],
) -> list[float]:
    """Offline Eq. 6 series from consecutive per-window entry counts."""
    shifts: list[float] = []
    previous: dict[str, float] | None = None
    for counts in windows:
        probabilities = invocation_probabilities(counts)
        if previous is not None:
            shifts.append(probability_shift(previous, probabilities))
        if probabilities or previous is None:
            previous = probabilities
    return shifts
