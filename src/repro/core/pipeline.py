"""SLIMSTART facade: profile → analyze → optimize → redeploy (Fig. 4).

:class:`SlimStart` wires the profiler, analyzer, optimizer and adaptive
monitor together for both back ends:

* the **simulated** path (``run_simulated_cycle``) replays a profiling
  workload on a :class:`SimPlatform`, measures the paper's 500-cold-start
  protocol before and after optimization, and returns speedups;
* the **real** path (``profile_real_invocations`` / ``optimize_workspace``)
  attaches the sampling profiler and import recorder to really-executing
  code and rewrites actual source files.

:class:`CICDPipeline` adds the adaptive loop: it watches entry-point
probability shifts (Eqs. 5-7) and re-triggers the cycle on real workload
change.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ProfilingError
from repro.core.analyzer import Analyzer, AnalyzerConfig, InefficiencyReport
from repro.core.adaptive import WorkloadMonitor, WindowDecision
from repro.core.import_recorder import ImportTimeRecorder
from repro.core.libstubber import StubResult, apply_library_deferrals
from repro.core.optimizer import OptimizationResult, optimize_source
from repro.core.profiler import ThreadSampler
from repro.core.profiles import ProfileBundle
from repro.core.samples import LibraryAttributor
from repro.core.simprofiler import SIM_PREFIX, bundle_from_simulation
from repro.faas.deployment import clone_workspace, read_handler, write_handler
from repro.faas.events import InvocationRecord, InvocationStats, entry_counts
from repro.faas.local import FunctionDeployment, LocalPlatform
from repro.faas.sim import SimAppConfig, SimPlatform, replay_workload
from repro.metrics import SpeedupReport
from repro.plan import DeferralPlan
from repro.workloads.arrival import burst_entries
from repro.workloads.popularity import EntryMix


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end knobs, defaulted to the paper's protocol."""

    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    sample_interval_ms: float = 5.0
    measure_cold_starts: int = 500  # concurrent requests per measurement run
    measure_runs: int = 5  # results averaged over five iterative runs


@dataclass
class SimCycleResult:
    """Everything one optimize cycle produced on the simulator."""

    app: str
    report: InefficiencyReport
    plan: DeferralPlan
    before: InvocationStats
    after: InvocationStats
    speedups: SpeedupReport
    before_records: list[InvocationRecord]
    after_records: list[InvocationRecord]
    bundle: ProfileBundle | None = None  # the profile that drove the plan


@dataclass
class WorkspaceOptimization:
    """Result of rewriting a real workspace."""

    workspace: Path
    handler_result: OptimizationResult
    stub_result: StubResult

    @property
    def changed(self) -> bool:
        return self.handler_result.changed or self.stub_result.changed


def handler_imports_from_source(
    source: str, library_names: frozenset[str] | set[str]
) -> tuple[str, ...]:
    """Dotted library modules a handler imports at module level."""
    tree = ast.parse(source)
    found: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.partition(".")[0] in library_names:
                    found.append(alias.name)
        elif isinstance(node, ast.ImportFrom) and not node.level:
            module = node.module or ""
            if module.partition(".")[0] in library_names:
                found.append(module)
    return tuple(dict.fromkeys(found))


class SlimStart:
    """The tool: one object wiring profiling, analysis and optimization."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self.analyzer = Analyzer(self.config.analyzer)

    # -- attribution ----------------------------------------------------------

    def sim_attributor(self, app_config: SimAppConfig) -> LibraryAttributor:
        return LibraryAttributor(
            workspace_prefixes=(SIM_PREFIX,),
            library_names=frozenset(app_config.ecosystem.library_names()),
        )

    def workspace_attributor(
        self, workspace: str | Path, library_names: set[str] | frozenset[str]
    ) -> LibraryAttributor:
        return LibraryAttributor(
            workspace_prefixes=(str(Path(workspace).resolve()),),
            library_names=frozenset(library_names),
        )

    # -- simulated path ----------------------------------------------------------

    def profile_simulated(
        self,
        platform: SimPlatform,
        app_config: SimAppConfig,
        workload: list[tuple[float, str]],
    ) -> ProfileBundle:
        """Replay a typical workload and assemble the profile bundle."""
        platform.clear_history(app_config.name)
        replay_workload(platform, app_config.name, workload)
        bundle = bundle_from_simulation(
            app_config,
            platform.traces(app_config.name),
            platform.records(app_config.name),
            interval_ms=self.config.sample_interval_ms,
        )
        return bundle

    def analyze(
        self, bundle: ProfileBundle, attributor: LibraryAttributor
    ) -> InefficiencyReport:
        return self.analyzer.analyze(bundle, attributor)

    def refine_plan(
        self,
        previous: DeferralPlan,
        report: InefficiencyReport,
        bundle: ProfileBundle,
        attributor: LibraryAttributor,
    ) -> DeferralPlan:
        """Merge a fresh analysis with still-valid previous deferrals.

        A module the *current* plan defers and that nothing loaded during
        re-profiling leaves no trace in the new profile, so the fresh
        report cannot re-flag it.  Such deferrals are carried forward;
        previously-deferred modules that the new workload does exercise
        (utilization at or above the rare threshold) are dropped and
        become eager again.
        """
        threshold = self.config.analyzer.rare_utilization_threshold
        module_util = self.analyzer.module_utilization(bundle, attributor)
        library_util, _ = self.analyzer.library_utilization(bundle, attributor)
        kept_edges = frozenset(
            dotted
            for dotted in previous.deferred_library_edges
            if self.analyzer.subtree_utilization(module_util, dotted) < threshold
        )
        kept_handler = frozenset(
            dotted
            for dotted in previous.deferred_handler_imports
            if library_util.get(dotted.partition(".")[0], 0.0) < threshold
        )
        carried = DeferralPlan(
            app=previous.app,
            deferred_handler_imports=kept_handler,
            deferred_library_edges=kept_edges,
        )
        return report.plan.merged_with(carried)

    def measure_cold_starts(
        self,
        platform: SimPlatform,
        app: str,
        mix: EntryMix,
    ) -> list[InvocationRecord]:
        """The paper's protocol: N concurrent requests × R runs, all cold.

        Trace recording is suspended during measurement — traces exist for
        profiling, and materializing per-segment traces for thousands of
        measurement invocations would only burn memory.
        """
        from dataclasses import replace as _replace

        platform.clear_history(app)
        saved_config = platform.config
        platform.config = _replace(saved_config, record_traces=False)
        try:
            for _ in range(self.config.measure_runs):
                platform.reset_pool(app)
                entries = burst_entries(mix, self.config.measure_cold_starts)
                platform.invoke_burst(app, entries)
        finally:
            platform.config = saved_config
        records = platform.records(app)
        platform.reset_pool(app)
        return records

    def run_simulated_cycle(
        self,
        app_config: SimAppConfig,
        profile_workload: list[tuple[float, str]],
        mix: EntryMix,
        platform: SimPlatform | None = None,
    ) -> SimCycleResult:
        """Full cycle on one app: profile, analyze, optimize, re-measure."""
        platform = platform or SimPlatform()
        if app_config.name not in platform.app_names():
            platform.deploy(app_config)
        bundle = self.profile_simulated(platform, app_config, profile_workload)
        report = self.analyze(bundle, self.sim_attributor(app_config))

        before_records = self.measure_cold_starts(platform, app_config.name, mix)
        platform.clear_history(app_config.name)
        platform.redeploy(app_config.name, report.plan)
        after_records = self.measure_cold_starts(platform, app_config.name, mix)

        before = InvocationStats.from_records(before_records)
        after = InvocationStats.from_records(after_records)
        speedups = SpeedupReport.compare(
            before.init, after.init, before.e2e, after.e2e,
            before.memory, after.memory,
        )
        return SimCycleResult(
            app=app_config.name,
            report=report,
            plan=report.plan,
            before=before,
            after=after,
            speedups=speedups,
            before_records=before_records,
            after_records=after_records,
            bundle=bundle,
        )

    # -- real path ------------------------------------------------------------------

    def profile_real_invocations(
        self,
        platform: LocalPlatform,
        deployment: FunctionDeployment,
        entries: list[str],
        library_names: set[str] | frozenset[str],
        interval_ms: float | None = None,
    ) -> ProfileBundle:
        """Profile really-executing invocations (cold start + workload).

        Installs the import recorder around a forced cold start, keeps the
        thread sampler running across the whole invocation sequence, and
        assembles the same bundle shape the simulator produces.
        """
        if not entries:
            raise ProfilingError("need at least one invocation to profile")
        interval = interval_ms or self.config.sample_interval_ms
        name = deployment.name
        handler_source = read_handler(
            deployment.workspace, deployment.handler_module
        )
        handler_imports = handler_imports_from_source(handler_source, library_names)

        platform.force_cold(name)
        recorder = ImportTimeRecorder(
            list(library_names) + [deployment.handler_module]
        )
        sampler = ThreadSampler(interval_ms=interval)
        records: list[InvocationRecord] = []
        sampler.start()
        try:
            with recorder:
                records.append(platform.invoke(name, entries[0]))
            for entry in entries[1:]:
                records.append(platform.invoke(name, entry))
        finally:
            samples = sampler.stop()

        profile = recorder.profile()
        cold = [record for record in records if record.cold]
        return ProfileBundle(
            app=name,
            import_profile=profile,
            samples=samples,
            entry_counts=entry_counts(records),
            handler_imports=handler_imports,
            mean_cold_e2e_ms=sum(r.e2e_ms for r in cold) / len(cold),
            mean_cold_init_ms=sum(r.init_ms for r in cold) / len(cold),
            cold_starts=len(cold),
        )

    def optimize_workspace(
        self,
        workspace: str | Path,
        plan: DeferralPlan,
        dest: str | Path,
        handler_module: str = "handler",
    ) -> WorkspaceOptimization:
        """Clone ``workspace`` to ``dest`` and apply ``plan`` to the clone."""
        new_workspace = clone_workspace(workspace, dest)
        handler_source = read_handler(new_workspace, handler_module)
        handler_result = optimize_source(
            handler_source, plan.deferred_handler_imports
        )
        if handler_result.changed:
            write_handler(new_workspace, handler_result.source, handler_module)
        stub_result = apply_library_deferrals(
            new_workspace, plan.deferred_library_edges
        )
        return WorkspaceOptimization(
            workspace=new_workspace,
            handler_result=handler_result,
            stub_result=stub_result,
        )


@dataclass
class AdaptiveEvent:
    """One adaptive-loop action: a window closed, possibly re-optimizing."""

    decision: WindowDecision
    reprofiled: bool
    plan: DeferralPlan | None = None


class CICDPipeline:
    """Adaptive CI/CD loop on the simulator (Fig. 4's decision diamonds).

    Feed invocation records window by window; when the workload monitor
    reports a shift beyond epsilon, the pipeline re-profiles the app on the
    simulator and redeploys with the fresh plan.
    """

    def __init__(
        self,
        slimstart: SlimStart,
        platform: SimPlatform,
        app_config: SimAppConfig,
        monitor: WorkloadMonitor,
    ) -> None:
        self.slimstart = slimstart
        self.platform = platform
        self.app_config = app_config
        self.monitor = monitor
        self.events: list[AdaptiveEvent] = []
        self.profile_count = 0

    def observe(self, records: list[InvocationRecord]) -> list[AdaptiveEvent]:
        """Feed new records; returns events for any windows that closed."""
        produced: list[AdaptiveEvent] = []
        for record in records:
            for decision in self.monitor.observe(record.entry, record.timestamp):
                produced.append(self._handle(decision))
        self.events.extend(produced)
        return produced

    def _handle(self, decision: WindowDecision) -> AdaptiveEvent:
        if not decision.triggered:
            return AdaptiveEvent(decision=decision, reprofiled=False)
        # Re-profile using the most recent execution traces.
        traces = self.platform.traces(self.app_config.name)
        records = self.platform.records(self.app_config.name)
        if not any(trace.cold for trace in traces):
            return AdaptiveEvent(decision=decision, reprofiled=False)
        bundle = bundle_from_simulation(
            self.app_config,
            traces,
            records,
            interval_ms=self.slimstart.config.sample_interval_ms,
        )
        attributor = self.slimstart.sim_attributor(self.app_config)
        report = self.slimstart.analyze(bundle, attributor)
        plan = self.slimstart.refine_plan(
            self.platform.plan_for(self.app_config.name),
            report,
            bundle,
            attributor,
        )
        self.platform.redeploy(self.app_config.name, plan)
        self.profile_count += 1
        return AdaptiveEvent(decision=decision, reprofiled=True, plan=plan)
