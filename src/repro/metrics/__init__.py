"""Latency, memory, and rate statistics used throughout the evaluation
harness — including the cluster fleet metrics (offered load, queueing
delay percentiles), the multi-region routing aggregation
(:class:`RoutingSummary`: locality fraction, forwarding hop cost), and
the fleet cost view (:class:`CostSummary` over a configurable
:class:`PricingModel`: GB-seconds, cold-start surcharge, $ per 1k
requests)."""

from repro.metrics.stats import (
    DEFAULT_PRICING,
    CostSummary,
    LatencySummary,
    MemorySummary,
    PricingModel,
    RateSummary,
    RoutingSummary,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)

__all__ = [
    "DEFAULT_PRICING",
    "CostSummary",
    "LatencySummary",
    "MemorySummary",
    "PricingModel",
    "RateSummary",
    "RoutingSummary",
    "SpeedupReport",
    "mean",
    "percentile",
    "speedup",
]
