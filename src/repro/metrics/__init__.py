"""Latency, memory, and rate statistics used throughout the evaluation
harness — including the cluster fleet metrics (offered load, queueing
delay percentiles)."""

from repro.metrics.stats import (
    LatencySummary,
    MemorySummary,
    RateSummary,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)

__all__ = [
    "LatencySummary",
    "MemorySummary",
    "RateSummary",
    "SpeedupReport",
    "mean",
    "percentile",
    "speedup",
]
