"""Latency, memory, and rate statistics used throughout the evaluation
harness — including the cluster fleet metrics (offered load, queueing
delay percentiles) and the multi-region routing aggregation
(:class:`RoutingSummary`: locality fraction, forwarding hop cost)."""

from repro.metrics.stats import (
    LatencySummary,
    MemorySummary,
    RateSummary,
    RoutingSummary,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)

__all__ = [
    "LatencySummary",
    "MemorySummary",
    "RateSummary",
    "RoutingSummary",
    "SpeedupReport",
    "mean",
    "percentile",
    "speedup",
]
