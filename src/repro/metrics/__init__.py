"""Latency and memory statistics used throughout the evaluation harness."""

from repro.metrics.stats import (
    LatencySummary,
    MemorySummary,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)

__all__ = [
    "LatencySummary",
    "MemorySummary",
    "SpeedupReport",
    "mean",
    "percentile",
    "speedup",
]
