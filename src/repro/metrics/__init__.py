"""Latency, memory, and rate statistics used throughout the evaluation
harness — including the cluster fleet metrics (offered load, queueing
delay percentiles), the multi-region routing aggregation
(:class:`RoutingSummary`: locality fraction, forwarding hop cost), the
fleet cost view (:class:`CostSummary` over a configurable
:class:`PricingModel`: GB-seconds, cold-start surcharge, $ per 1k
requests), and the bounded-memory windowed time series streaming replays
fold into (:class:`WindowAccumulator` → :class:`WindowedSummary`)."""

from repro.metrics.stats import (
    DEFAULT_PRICING,
    CostSummary,
    LatencySummary,
    MemorySummary,
    PricingModel,
    RateSummary,
    RoutingSummary,
    SpeedupReport,
    mean,
    percentile,
    speedup,
)
from repro.metrics.qos import (
    DEFAULT_QOS_CLASS,
    QOS_PRESETS,
    QoSClass,
    parse_qos_mix,
    qos_registry,
)
from repro.metrics.windows import (
    UNDEFINED_RATE,
    QoSSummary,
    QoSWindowStats,
    WindowAccumulator,
    WindowedSummary,
    WindowStats,
    from_wire,
    merge_wire,
)

__all__ = [
    "DEFAULT_PRICING",
    "DEFAULT_QOS_CLASS",
    "QOS_PRESETS",
    "CostSummary",
    "LatencySummary",
    "MemorySummary",
    "PricingModel",
    "QoSClass",
    "QoSSummary",
    "QoSWindowStats",
    "RateSummary",
    "RoutingSummary",
    "SpeedupReport",
    "UNDEFINED_RATE",
    "WindowAccumulator",
    "WindowedSummary",
    "WindowStats",
    "from_wire",
    "mean",
    "merge_wire",
    "percentile",
    "speedup",
    "parse_qos_mix",
    "qos_registry",
]
