"""Windowed metric accumulation for streaming replays.

A multi-day trace replayed through the cluster simulator produces millions
of invocation records; materializing them defeats the point of a streaming
replay and averaging them into one number hides exactly the transients the
paper's workload-shift events exist to produce.  This module folds a record
*stream* into fixed-size time windows at **O(windows) memory**:

* every per-window quantity is either a counter, an exact running sum, or
  a fixed-width log-spaced latency histogram (:class:`_LatencyHistogram`,
  64 buckets) from which quantiles are estimated — no per-request value is
  ever retained;
* provisioned GB-seconds are spread across the windows a container's
  lifetime overlaps, so keep-alive tails show up in the window that paid
  for them, and each window is priced through the PR 3
  :class:`~repro.metrics.stats.PricingModel` into a
  :class:`~repro.metrics.stats.CostSummary`;
* float sums (queue waits, GB-seconds) are kept **per source** (the
  producers label them by application), so two accumulators that observed
  *disjoint* source sets merge losslessly: :meth:`WindowedSummary.merge`
  rebuilds every derived metric from the summed integer counts and the
  per-source partials, which is what makes a sharded multi-process replay
  (:mod:`repro.workloads.shard`) bit-identical to a single-process one.

The producer side lives in :meth:`repro.faas.cluster.ClusterPlatform.run_stream`
and :meth:`repro.faas.region.RegionFederation.run_stream`, which feed an
accumulator via the four ``observe_*`` hooks; ``finalize()`` snapshots the
whole run as a :class:`WindowedSummary` time series.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.metrics.stats import DEFAULT_PRICING, CostSummary, PricingModel

#: Histogram geometry: bucket ``i`` covers latencies up to
#: ``_HIST_FLOOR_MS * _HIST_RATIO**i`` milliseconds.  64 buckets at ratio
#: sqrt(2) span 0.1 ms .. ~9.2e8 ms, far beyond any simulated latency;
#: quantile estimates are exact to within one half-octave.
_HIST_BUCKETS = 64

#: Sentinel for per-window rates/quantiles that have no population to
#: measure — a window whose every arrival was shed (or is still queued
#: at a mid-run flush) completed nothing, so its cold-start rate, queue
#: mean, and queue p95 are *undefined*, not 0.0 (which would read as
#: "all warm, served instantly").  Negative is impossible for all three
#: metrics, so ``value < 0`` is the documented "no data" test; the
#: sentinel is an ordinary float so summaries stay JSON-safe and
#: equality-comparable (NaN would break both).
UNDEFINED_RATE = -1.0
_HIST_FLOOR_MS = 0.1
_HIST_RATIO = math.sqrt(2.0)
_LOG_RATIO = math.log(_HIST_RATIO)


def _histogram_quantile(counts: Sequence[int], total: int, q: float) -> float:
    """Latency at quantile ``q`` in [0, 1] (geometric bucket midpoint)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range: {q}")
    if total == 0:
        return 0.0
    rank = q * total
    running = 0
    for index, count in enumerate(counts):
        running += count
        # ``running > 0`` guards q=0: rank 0 would otherwise be satisfied
        # at bucket 0 even when it is empty — the minimum must come from
        # the first *non-empty* bucket.
        if running >= rank and running > 0:
            if index == 0:
                return _HIST_FLOOR_MS
            lower = _HIST_FLOOR_MS * _HIST_RATIO ** (index - 1)
            return lower * math.sqrt(_HIST_RATIO)
    return _HIST_FLOOR_MS * _HIST_RATIO ** (_HIST_BUCKETS - 1)


class _LatencyHistogram:
    """Fixed-size log-spaced latency histogram (bounded-memory quantiles).

    Holds integer bucket counts only; per-source running sums live on the
    window so they stay losslessly mergeable (integer counts merge by
    addition; a single float running sum would not, since float addition
    is order-dependent).
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * _HIST_BUCKETS
        self.total = 0

    def observe(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValueError(f"negative latency: {value_ms}")
        if value_ms <= _HIST_FLOOR_MS:
            index = 0
        else:
            index = min(
                _HIST_BUCKETS - 1,
                1 + int(math.log(value_ms / _HIST_FLOOR_MS) / _LOG_RATIO),
            )
        self.counts[index] += 1
        self.total += 1

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (geometric bucket midpoint)."""
        return _histogram_quantile(self.counts, self.total, q)


def population_rate(numerator: float, population: int, undefined: bool) -> float:
    """``numerator / population``, honouring the :data:`UNDEFINED_RATE` rule.

    The one definition of a per-window rate shared by
    :func:`_window_stats` and the journal's per-app window rows
    (:mod:`repro.obs.journal`): a window with activity but no completion
    population reports :data:`UNDEFINED_RATE` (there is nothing to
    rate), a truly idle one reports the neutral 0.0.
    """
    if population:
        return numerator / population
    return UNDEFINED_RATE if undefined else 0.0


def _sum_by_source(sums: dict[str, float]) -> float:
    """Combine per-source partial sums in sorted-source order.

    The one definition of "total" shared by :meth:`WindowAccumulator.finalize`
    and :meth:`WindowedSummary.merge`: as long as the per-source partials
    are identical, the combined float is identical — the keystone of the
    sharded-replay exactness argument.
    """
    return sum(sums[source] for source in sorted(sums))


def _merge_sums(
    into: dict[str, float], pairs: Iterable[tuple[str, float]]
) -> None:
    for source, value in pairs:
        if source in into:
            into[source] += value
        else:
            into[source] = value


@dataclass(frozen=True)
class QoSWindowStats:
    """One QoS class's behaviour inside one replay window.

    Utility follows the accounting of :class:`repro.metrics.qos.QoSClass`:
    in-deadline completions earn the class utility, late completions pay
    the deadline penalty, sheds/drops pay the drop penalty.  The float
    total is kept **per source** (``utility_by_source``) exactly like the
    window's queue-wait sums, so :meth:`WindowedSummary.merge` recombines
    it losslessly and sharded replays stay bit-identical.

    Attributes:
        qos_class: Class name (the wire format; see ``repro.metrics.qos``).
        completed: Requests of this class that finished service.
        violations: Completions whose end-to-end latency (queueing +
            service + forwarding wire time) exceeded the class deadline.
        dropped: Requests of this class shed by bounded queues or
            dropped by a routing policy.
        violation_rate: ``violations / completed`` (0 when idle).
        utility: Net utility earned by this class in this window.
        utility_by_source: Exact per-source partial utility sums, sorted
            by source label — the merge-safe state behind ``utility``.
    """

    qos_class: str
    completed: int
    violations: int
    dropped: int
    violation_rate: float
    utility: float
    utility_by_source: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class QoSSummary:
    """One QoS class's totals over a whole replay (see QoSWindowStats)."""

    qos_class: str
    completed: int
    violations: int
    dropped: int
    violation_rate: float
    utility: float


@dataclass(frozen=True)
class WindowStats:
    """One replay window's aggregate behaviour.

    Attributes:
        index: Window number (``floor(arrival_s / window_s)``).
        start_s: Window start on the replay clock.
        end_s: Window end (``start_s + window_s``).
        arrivals: Requests whose *arrival* fell in this window (served
            and shed alike; completions are attributed to their arrival
            window, so long service never leaks work into a later window).
        completed: Requests that finished service.
        shed: Requests rejected by bounded queues.
        cold_starts: Completions that paid a container boot.
        cold_start_rate: ``cold_starts / completed``; 0 when fully idle,
            :data:`UNDEFINED_RATE` when the window had arrivals but
            completed nothing (no population to rate).
        shed_rate: ``shed / arrivals`` (0 when idle).
        queue_mean_ms: Exact mean arrival-to-service wait
            (:data:`UNDEFINED_RATE` when nothing completed despite
            arrivals).
        queue_p95_ms: Histogram-estimated p95 wait (half-octave
            accuracy; :data:`UNDEFINED_RATE` when nothing completed
            despite arrivals).
        gb_seconds: Provisioned memory-time overlapping this window.
        boots: Containers whose boot started in this window.
        cost: The window priced as its own mini-run
            (:class:`~repro.metrics.stats.CostSummary`).
        queue_histogram: The 64 log-spaced queue-wait bucket counts this
            window accumulated (see module docstring for the geometry).
        queue_sum_ms_by_source: Exact per-source partial sums of queue
            waits, sorted by source label — the state that makes
            :meth:`WindowedSummary.merge` lossless.
        gb_seconds_by_source: Exact per-source partial sums of
            provisioned GB-seconds, sorted by source label.
        qos: Per-class deadline-violation/utility/drop series for this
            window (:class:`QoSWindowStats`, sorted by class name); empty
            when the replay carried no QoS tags.
    """

    index: int
    start_s: float
    end_s: float
    arrivals: int
    completed: int
    shed: int
    cold_starts: int
    cold_start_rate: float
    shed_rate: float
    queue_mean_ms: float
    queue_p95_ms: float
    gb_seconds: float
    boots: int
    cost: CostSummary
    queue_histogram: tuple[int, ...] = (0,) * _HIST_BUCKETS
    queue_sum_ms_by_source: tuple[tuple[str, float], ...] = ()
    gb_seconds_by_source: tuple[tuple[str, float], ...] = ()
    qos: tuple[QoSWindowStats, ...] = ()


@dataclass(frozen=True)
class WindowedSummary:
    """A streamed replay summarized as a per-window time series.

    ``windows`` is ordered by window index and only contains windows that
    saw any activity — the memory contract of streaming replay is that
    this tuple (plus one fixed-size histogram per window while
    accumulating) is *all* that a million-request replay retains.
    """

    window_s: float
    windows: tuple[WindowStats, ...]
    arrivals: int
    completed: int
    shed: int
    cold_starts: int
    cold_start_rate: float
    gb_seconds: float
    cost: CostSummary
    pricing: PricingModel = field(default=DEFAULT_PRICING)
    #: Per-class run totals (sorted by class name; empty without QoS tags).
    qos: tuple[QoSSummary, ...] = ()
    #: Net utility over the whole run (sum of the per-class totals in
    #: sorted-class order — deterministic, hence merge-stable).
    utility: float = 0.0

    def series(self, field: str) -> list[float]:
        """One metric as a time series, e.g. ``series("cold_start_rate")``."""
        return [getattr(window, field) for window in self.windows]

    def window_at(self, at_s: float) -> WindowStats | None:
        """The window covering time ``at_s``, if it saw any activity.

        O(1) after the first call: an index → window lookup table is
        built lazily and cached on the instance (``windows`` is frozen,
        so it can never go stale; the cache is not a dataclass field, so
        equality and repr are untouched).  ``None`` for times outside
        every active window.
        """
        lookup = self.__dict__.get("_window_index")
        if lookup is None:
            lookup = {window.index: window for window in self.windows}
            object.__setattr__(self, "_window_index", lookup)
        return lookup.get(int(at_s // self.window_s))

    @classmethod
    def merge(cls, summaries: Sequence["WindowedSummary"]) -> "WindowedSummary":
        """Losslessly merge per-shard summaries into one.

        Integer counts and histogram buckets add; per-source float
        partials concatenate (or add, should a source appear in several
        summaries); every derived metric — means, quantiles, rates,
        costs — is then *recomputed* from the merged state by the same
        code ``finalize()`` uses.  When the input summaries observed
        disjoint source sets (the app-hash sharding of
        :mod:`repro.workloads.shard` guarantees this), the result is
        bit-identical to the summary a single accumulator fed by all the
        shards' events would have produced.
        """
        if not summaries:
            raise ValueError("cannot merge zero summaries")
        first = summaries[0]
        for other in summaries[1:]:
            if other.window_s != first.window_s:
                raise ValueError(
                    f"window size mismatch: {other.window_s} != {first.window_s}"
                )
            if other.pricing != first.pricing:
                raise ValueError("cannot merge summaries priced differently")
        merged: dict[int, _Window] = {}
        for summary in summaries:
            for stats in summary.windows:
                window = merged.get(stats.index)
                if window is None:
                    window = merged[stats.index] = _Window()
                window.arrivals += stats.arrivals
                window.completed += stats.completed
                window.shed += stats.shed
                window.cold += stats.cold_starts
                window.boots += stats.boots
                counts = window.queue.counts
                for index, count in enumerate(stats.queue_histogram):
                    counts[index] += count
                window.queue.total += sum(stats.queue_histogram)
                _merge_sums(window.queue_sums, stats.queue_sum_ms_by_source)
                _merge_sums(window.gb_sums, stats.gb_seconds_by_source)
                for qos in stats.qos:
                    counters = window.qos_counts.get(qos.qos_class)
                    if counters is None:
                        counters = window.qos_counts[qos.qos_class] = [0, 0, 0]
                    counters[0] += qos.completed
                    counters[1] += qos.violations
                    counters[2] += qos.dropped
                    sums = window.qos_sums.setdefault(qos.qos_class, {})
                    _merge_sums(sums, qos.utility_by_source)
        return _summarize(merged, first.window_s, first.pricing)


class _Window:
    """Mutable accumulation state for one window (fixed-size)."""

    __slots__ = (
        "arrivals",
        "completed",
        "shed",
        "cold",
        "boots",
        "queue",
        "queue_sums",
        "source_counts",
        "gb_sums",
        "qos_counts",
        "qos_sums",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.completed = 0
        self.shed = 0
        self.cold = 0
        self.boots = 0
        self.queue = _LatencyHistogram()
        #: Per-source exact running float sums (source = app label, or
        #: ``""`` for unlabeled producers).  Kept separate per source so
        #: accumulators over disjoint source sets merge losslessly.
        self.queue_sums: dict[str, float] = {}
        #: Per-source ``[completed, shed, cold_starts, queue_ms_sum]``,
        #: maintained *instead of* ``queue_sums`` when
        #: :meth:`WindowAccumulator.enable_source_counts` switched the
        #: observe paths over (the run journal derives its per-app window
        #: delta rows from these cumulative counters at flush time).  The
        #: float sum lives in slot 3 with the identical add sequence
        #: ``queue_sums`` would have seen, so every derived statistic is
        #: bit-for-bit the same either way.
        self.source_counts: dict[str, list] = {}
        self.gb_sums: dict[str, float] = {}
        #: Per-QoS-class integer counters ``[completed, violations,
        #: dropped]`` — integers merge by addition, so these need no
        #: per-source split.
        self.qos_counts: dict[str, list[int]] = {}
        #: Per-QoS-class, per-source exact utility sums (same merge
        #: discipline as ``queue_sums``).
        self.qos_sums: dict[str, dict[str, float]] = {}


def _window_stats(
    index: int, window: _Window, window_s: float, pricing: PricingModel
) -> WindowStats:
    """Derive one window's public stats from its accumulation state."""
    gb_seconds = _sum_by_source(window.gb_sums)
    # A source-counting window (journaled run) keeps its per-source queue
    # sums in source_counts slot 3; entries exist for shed-only sources
    # too, so mirror queue_sums' contract (an entry iff >= 1 completion)
    # to keep the derived stats bit-identical to a non-journaled run.
    if window.source_counts:
        queue_by_source = {
            source: counts[3]
            for source, counts in window.source_counts.items()
            if counts[0] > 0
        }
    else:
        queue_by_source = window.queue_sums
    queue_sum = _sum_by_source(queue_by_source)
    qos_classes = sorted(window.qos_counts.keys() | window.qos_sums.keys())
    qos = tuple(
        QoSWindowStats(
            qos_class=name,
            completed=(counters := window.qos_counts.get(name, [0, 0, 0]))[0],
            violations=counters[1],
            dropped=counters[2],
            violation_rate=(counters[1] / counters[0] if counters[0] else 0.0),
            utility=_sum_by_source(sums := window.qos_sums.get(name, {})),
            utility_by_source=tuple(sorted(sums.items())),
        )
        for name in qos_classes
    )
    # A window with traffic but no completions (every arrival shed, or
    # still queued at a mid-run flush) has *no* completion population to
    # rate: 0.0 would read as "all warm, instant service".  Such windows
    # report UNDEFINED_RATE instead; truly idle windows (no arrivals
    # either, e.g. pure provision tails) keep the neutral 0.0.
    undefined = window.arrivals > 0 and window.completed == 0
    return WindowStats(
        index=index,
        start_s=index * window_s,
        end_s=(index + 1) * window_s,
        arrivals=window.arrivals,
        completed=window.completed,
        shed=window.shed,
        cold_starts=window.cold,
        cold_start_rate=population_rate(window.cold, window.completed, undefined),
        shed_rate=(window.shed / window.arrivals if window.arrivals else 0.0),
        queue_mean_ms=population_rate(queue_sum, window.completed, undefined),
        queue_p95_ms=(
            UNDEFINED_RATE if undefined else window.queue.quantile(0.95)
        ),
        gb_seconds=gb_seconds,
        boots=window.boots,
        cost=CostSummary.from_usage(
            gb_seconds, window.completed, window.boots, pricing
        ),
        queue_histogram=tuple(window.queue.counts),
        queue_sum_ms_by_source=tuple(sorted(queue_by_source.items())),
        gb_seconds_by_source=tuple(sorted(window.gb_sums.items())),
        qos=qos,
    )


def _summarize(
    windows: dict[int, _Window], window_s: float, pricing: PricingModel
) -> WindowedSummary:
    """Shared back half of ``finalize()`` and ``WindowedSummary.merge``."""
    stats = [
        _window_stats(index, windows[index], window_s, pricing)
        for index in sorted(windows)
    ]
    arrivals = sum(w.arrivals for w in stats)
    completed = sum(w.completed for w in stats)
    cold = sum(w.cold_starts for w in stats)
    gb_seconds = sum(w.gb_seconds for w in stats)
    boots = sum(w.boots for w in stats)
    # Per-class run totals: integer counts add; the float utility sums
    # window-by-window in index order (each window's value is itself the
    # canonical per-source combination), so finalize() and merge() agree
    # bit for bit.
    by_class: dict[str, list] = {}
    for window in stats:
        for qos in window.qos:
            totals = by_class.get(qos.qos_class)
            if totals is None:
                totals = by_class[qos.qos_class] = [0, 0, 0, 0.0]
            totals[0] += qos.completed
            totals[1] += qos.violations
            totals[2] += qos.dropped
            totals[3] += qos.utility
    qos_totals = tuple(
        QoSSummary(
            qos_class=name,
            completed=by_class[name][0],
            violations=by_class[name][1],
            dropped=by_class[name][2],
            violation_rate=(
                by_class[name][1] / by_class[name][0]
                if by_class[name][0]
                else 0.0
            ),
            utility=by_class[name][3],
        )
        for name in sorted(by_class)
    )
    return WindowedSummary(
        window_s=window_s,
        windows=tuple(stats),
        arrivals=arrivals,
        completed=completed,
        shed=sum(w.shed for w in stats),
        cold_starts=cold,
        cold_start_rate=cold / completed if completed else 0.0,
        gb_seconds=gb_seconds,
        cost=CostSummary.from_usage(gb_seconds, completed, boots, pricing),
        pricing=pricing,
        qos=qos_totals,
        utility=sum(entry.utility for entry in qos_totals),
    )


class WindowAccumulator:
    """Folds a streaming replay into :class:`WindowStats` windows.

    The four ``observe_*`` hooks are the streaming surface the platforms
    drive (see :meth:`~repro.faas.cluster.ClusterPlatform.run_stream`);
    each touches only the fixed-size state of the windows involved, so
    peak memory is proportional to the number of *active windows*, never
    to the number of requests.  ``source`` labels (one per app) keep the
    float sums per producer, which is what lets per-shard accumulators
    merge losslessly — see :meth:`WindowedSummary.merge`.
    """

    def __init__(
        self,
        window_s: float,
        pricing: PricingModel | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s}")
        self.window_s = float(window_s)
        self.pricing = pricing if pricing is not None else DEFAULT_PRICING
        self._windows: dict[int, _Window] = {}
        # One-entry lookup cache: replay streams touch the same window
        # for thousands of consecutive observations, so the common case
        # skips the dict probe (and the hot path skips a div + hash).
        self._cached_index: int | None = None
        self._cached_window: _Window | None = None

    def _window(self, at_s: float) -> _Window:
        index = int(at_s // self.window_s)
        if index == self._cached_index:
            return self._cached_window
        return self._window_miss(index)

    def _window_miss(self, index: int) -> _Window:
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        self._cached_index = index
        self._cached_window = window
        return window

    # -- streaming surface -------------------------------------------------
    #
    # The hot observers repeat _window's cache-hit test inline: replay
    # streams observe the same window thousands of times in a row, and at
    # those rates the delegate call costs more than the test it guards.

    def observe_arrival(self, at_s: float) -> None:
        """One request arrived at ``at_s`` (before admission control)."""
        index = int(at_s // self.window_s)
        window = (
            self._cached_window
            if index == self._cached_index
            else self._window_miss(index)
        )
        window.arrivals += 1

    def observe_completion(
        self,
        arrival_s: float,
        cold: bool,
        queue_ms: float,
        source: str = "",
        qos: str | None = None,
        violated: bool = False,
        utility: float = 0.0,
    ) -> None:
        """One request finished; attributed to its *arrival* window.

        ``source`` labels the float contribution (the platforms pass the
        application name) so per-shard accumulators merge exactly.  When
        the request carried a QoS class, ``qos``/``violated``/``utility``
        feed the per-class series — the *producer* (the cluster event
        loop, which knows the class spec and the end-to-end latency)
        evaluates the deadline; the accumulator only tallies.
        """
        index = int(arrival_s // self.window_s)
        window = (
            self._cached_window
            if index == self._cached_index
            else self._window_miss(index)
        )
        window.completed += 1
        if cold:
            window.cold += 1
        queue = window.queue
        if 0.0 <= queue_ms <= _HIST_FLOOR_MS:
            # The warm-hit replay common case (zero queueing) lands in
            # bucket 0; folding it here skips the observe() call and its
            # log-bucket arithmetic.  Same counts as queue.observe().
            queue.counts[0] += 1
            queue.total += 1
        else:
            queue.observe(queue_ms)
        sums = window.queue_sums
        if source in sums:
            sums[source] += queue_ms
        else:
            sums[source] = queue_ms
        if qos is not None:
            counters = window.qos_counts.get(qos)
            if counters is None:
                counters = window.qos_counts[qos] = [0, 0, 0]
            counters[0] += 1
            if violated:
                counters[1] += 1
            qsums = window.qos_sums.setdefault(qos, {})
            if source in qsums:
                qsums[source] += utility
            else:
                qsums[source] = utility

    def observe_shed(
        self,
        at_s: float,
        source: str = "",
        qos: str | None = None,
        penalty: float = 0.0,
    ) -> None:
        """One request was rejected (bounded queue) or dropped (routing).

        ``penalty`` is the QoS class's drop penalty, charged as negative
        utility against ``source``'s per-class sum.
        """
        window = self._window(at_s)
        window.shed += 1
        if qos is not None:
            counters = window.qos_counts.get(qos)
            if counters is None:
                counters = window.qos_counts[qos] = [0, 0, 0]
            counters[2] += 1
            qsums = window.qos_sums.setdefault(qos, {})
            if source in qsums:
                qsums[source] -= penalty
            else:
                qsums[source] = -penalty

    # -- per-source counting (the run journal's substrate) -----------------

    def enable_source_counts(self) -> None:
        """Switch the completion/shed paths over to per-source counting.

        Called once by the observability layer before any event flows
        (see ``_StreamSinks.into``; :func:`restore_accumulator` re-enables
        it when a restored checkpoint carries counts).  The counted
        bodies maintain ``_Window.source_counts`` — ``{source:
        [completed, shed, cold_starts, queue_ms_sum]}`` — *in place of*
        the float-only ``queue_sums`` entry, so a journaled run pays a
        few list updates on the per-source dict probe the plain path was
        already doing, never a second probe or a second per-request call.
        The run journal diffs these cumulative counters at window
        boundaries to produce its per-app delta rows.  Idempotent, and
        every derived statistic is bit-identical either way.
        """
        self.observe_completion = self._observe_completion_counted  # type: ignore[method-assign]
        self.observe_shed = self._observe_shed_counted  # type: ignore[method-assign]

    def _observe_completion_counted(
        self,
        arrival_s: float,
        cold: bool,
        queue_ms: float,
        source: str = "",
        qos: str | None = None,
        violated: bool = False,
        utility: float = 0.0,
    ) -> None:
        """:meth:`observe_completion`, tallying per-source counts too."""
        index = int(arrival_s // self.window_s)
        window = (
            self._cached_window
            if index == self._cached_index
            else self._window_miss(index)
        )
        window.completed += 1
        queue = window.queue
        if 0.0 <= queue_ms <= _HIST_FLOOR_MS:
            queue.counts[0] += 1
            queue.total += 1
        else:
            queue.observe(queue_ms)
        counts = window.source_counts
        if source in counts:
            tally = counts[source]
        else:
            tally = counts[source] = [0, 0, 0, 0.0]
        tally[0] += 1
        tally[3] += queue_ms
        if cold:
            window.cold += 1
            tally[2] += 1
        if qos is not None:
            counters = window.qos_counts.get(qos)
            if counters is None:
                counters = window.qos_counts[qos] = [0, 0, 0]
            counters[0] += 1
            if violated:
                counters[1] += 1
            qsums = window.qos_sums.setdefault(qos, {})
            if source in qsums:
                qsums[source] += utility
            else:
                qsums[source] = utility

    def _observe_shed_counted(
        self,
        at_s: float,
        source: str = "",
        qos: str | None = None,
        penalty: float = 0.0,
    ) -> None:
        """:meth:`observe_shed`, tallying per-source counts too."""
        window = self._window(at_s)
        window.shed += 1
        counts = window.source_counts
        if source in counts:
            counts[source][1] += 1
        else:
            counts[source] = [0, 1, 0, 0.0]
        if qos is not None:
            counters = window.qos_counts.get(qos)
            if counters is None:
                counters = window.qos_counts[qos] = [0, 0, 0]
            counters[2] += 1
            qsums = window.qos_sums.setdefault(qos, {})
            if source in qsums:
                qsums[source] -= penalty
            else:
                qsums[source] = -penalty

    def source_counters(self) -> Iterator[tuple[int, dict[str, list]]]:
        """Cumulative per-source counters per window, in index order.

        The run journal's read surface: yields ``(window_index, {source:
        [completed, shed, cold_starts, queue_ms_sum]})`` for every window
        with counted activity.  The lists are live accumulation state —
        callers snapshot what they need and must not mutate.
        """
        for index in sorted(self._windows):
            counts = self._windows[index].source_counts
            if counts:
                yield index, counts

    def observe_provision(
        self, start_s: float, end_s: float, memory_mb: float, source: str = ""
    ) -> None:
        """One container's provisioned lifetime, spread across windows."""
        if end_s < start_s:
            raise ValueError(f"container lifetime ends before it starts: {start_s}..{end_s}")
        self._window(start_s).boots += 1
        gb = memory_mb / 1024.0
        first = int(start_s // self.window_s)
        last = int(end_s // self.window_s)
        for index in range(first, last + 1):
            lo = max(start_s, index * self.window_s)
            hi = min(end_s, (index + 1) * self.window_s)
            if hi > lo:
                sums = self._window(lo).gb_sums
                value = (hi - lo) * gb
                if source in sums:
                    sums[source] += value
                else:
                    sums[source] = value

    # -- results -----------------------------------------------------------

    def window_count(self) -> int:
        """Windows touched so far (the memory-bound contract's unit)."""
        return len(self._windows)

    def finalize(self) -> WindowedSummary:
        """Snapshot everything accumulated as a :class:`WindowedSummary`."""
        return _summarize(self._windows, self.window_s, self.pricing)

    def to_wire(self) -> tuple:
        """Pack the raw accumulation state into a compact wire form.

        The shard workers' return format: columnar ``array`` buffers
        (which pickle as flat bytes) instead of a finalized
        :class:`WindowedSummary`'s tree of dataclasses and per-window
        tuples — the coordinator then folds any number of wires straight
        back into accumulation state with :func:`merge_wire`, touching
        one dict probe per (window, source) instead of re-hashing every
        derived stat object.  Lossless: the wire carries exactly the
        ``_Window`` fields, including the per-source float partials the
        sharded-merge exactness argument rests on and the per-source
        counters of a journaled (source-counting) run, which a finalized
        summary only retains in derived form.

        Layout (all positions index into ``indices``):
        ``(version, window_s, pricing, indices, counts[5/window],
        sparse histogram cols (pos, bucket, count), queue_sums cols,
        source_counts cols, gb_sums cols, qos_counts cols, qos_sums
        cols)``.  Histograms ship sparse — replay latencies cluster into
        a handful of the 64 log buckets, so (position, bucket, count)
        triplets beat a dense 64-wide row by an order of magnitude.
        """
        indices = array("q")
        counts = array("q")
        hist_pos = array("q")
        hist_bucket = array("B")
        hist_count = array("q")
        qs_pos = array("q")
        qs_source: list[str] = []
        qs_value = array("d")
        sc_pos = array("q")
        sc_source: list[str] = []
        sc_ints = array("q")
        sc_sum = array("d")
        gb_pos = array("q")
        gb_source: list[str] = []
        gb_value = array("d")
        qc_pos = array("q")
        qc_class: list[str] = []
        qc_ints = array("q")
        qu_pos = array("q")
        qu_class: list[str] = []
        qu_source: list[str] = []
        qu_value = array("d")
        for pos, index in enumerate(sorted(self._windows)):
            window = self._windows[index]
            indices.append(index)
            counts.extend(
                (window.arrivals, window.completed, window.shed, window.cold, window.boots)
            )
            for bucket, count in enumerate(window.queue.counts):
                if count:
                    hist_pos.append(pos)
                    hist_bucket.append(bucket)
                    hist_count.append(count)
            for source, value in window.queue_sums.items():
                qs_pos.append(pos)
                qs_source.append(source)
                qs_value.append(value)
            for source, tally in window.source_counts.items():
                sc_pos.append(pos)
                sc_source.append(source)
                sc_ints.extend((tally[0], tally[1], tally[2]))
                sc_sum.append(tally[3])
            for source, value in window.gb_sums.items():
                gb_pos.append(pos)
                gb_source.append(source)
                gb_value.append(value)
            for name, counters in window.qos_counts.items():
                qc_pos.append(pos)
                qc_class.append(name)
                qc_ints.extend(counters)
            for name, sums in window.qos_sums.items():
                for source, value in sums.items():
                    qu_pos.append(pos)
                    qu_class.append(name)
                    qu_source.append(source)
                    qu_value.append(value)
        return (
            _WIRE_VERSION,
            self.window_s,
            self.pricing,
            indices,
            counts,
            (hist_pos, hist_bucket, hist_count),
            (qs_pos, qs_source, qs_value),
            (sc_pos, sc_source, sc_ints, sc_sum),
            (gb_pos, gb_source, gb_value),
            (qc_pos, qc_class, qc_ints),
            (qu_pos, qu_class, qu_source, qu_value),
        )


#: Wire-format version guard: a coordinator refuses wires from a worker
#: running a different layout (mixed-version pools fail loudly, not by
#: silently misreading columns).
_WIRE_VERSION = 1


def _absorb_wire(merged: dict[int, _Window], wire: tuple) -> None:
    """Fold one wire's columns into ``merged`` accumulation state.

    The exact ``+=`` ops :meth:`WindowedSummary.merge` performs, applied
    straight from the columnar buffers — integer counters and histogram
    buckets add, per-source float partials add per source (or insert),
    so absorbing wires in worker order leaves state identical to one
    accumulator having observed every shard's events.
    """
    version = wire[0]
    if version != _WIRE_VERSION:
        raise ValueError(
            f"wire version mismatch: {version} != {_WIRE_VERSION}"
        )
    (_, _, _, indices, counts, hist, qs, sc, gb, qc, qu) = wire
    windows: list[_Window] = []
    for pos, index in enumerate(indices):
        window = merged.get(index)
        if window is None:
            window = merged[index] = _Window()
        base = pos * 5
        window.arrivals += counts[base]
        window.completed += counts[base + 1]
        window.shed += counts[base + 2]
        window.cold += counts[base + 3]
        window.boots += counts[base + 4]
        windows.append(window)
    hist_pos, hist_bucket, hist_count = hist
    for pos, bucket, count in zip(hist_pos, hist_bucket, hist_count):
        queue = windows[pos].queue
        queue.counts[bucket] += count
        queue.total += count
    qs_pos, qs_source, qs_value = qs
    for pos, source, value in zip(qs_pos, qs_source, qs_value):
        sums = windows[pos].queue_sums
        if source in sums:
            sums[source] += value
        else:
            sums[source] = value
    sc_pos, sc_source, sc_ints, sc_sum = sc
    for entry, (pos, source, queue_sum) in enumerate(zip(sc_pos, sc_source, sc_sum)):
        counters = windows[pos].source_counts
        base = entry * 3
        if source in counters:
            tally = counters[source]
            tally[0] += sc_ints[base]
            tally[1] += sc_ints[base + 1]
            tally[2] += sc_ints[base + 2]
            tally[3] += queue_sum
        else:
            counters[source] = [
                sc_ints[base],
                sc_ints[base + 1],
                sc_ints[base + 2],
                queue_sum,
            ]
    gb_pos, gb_source, gb_value = gb
    for pos, source, value in zip(gb_pos, gb_source, gb_value):
        sums = windows[pos].gb_sums
        if source in sums:
            sums[source] += value
        else:
            sums[source] = value
    qc_pos, qc_class, qc_ints = qc
    for entry, (pos, name) in enumerate(zip(qc_pos, qc_class)):
        qos_counts = windows[pos].qos_counts
        base = entry * 3
        counters = qos_counts.get(name)
        if counters is None:
            qos_counts[name] = [
                qc_ints[base],
                qc_ints[base + 1],
                qc_ints[base + 2],
            ]
        else:
            counters[0] += qc_ints[base]
            counters[1] += qc_ints[base + 1]
            counters[2] += qc_ints[base + 2]
    qu_pos, qu_class, qu_source, qu_value = qu
    for pos, name, source, value in zip(qu_pos, qu_class, qu_source, qu_value):
        sums = windows[pos].qos_sums.setdefault(name, {})
        if source in sums:
            sums[source] += value
        else:
            sums[source] = value


def from_wire(wire: tuple) -> WindowAccumulator:
    """Reconstruct an accumulator from one :meth:`~WindowAccumulator.to_wire`.

    The round-trip inverse (state, not identity): the result holds the
    same windows, counters, histograms, and per-source partials, so
    ``from_wire(acc.to_wire()).finalize() == acc.finalize()`` bit for
    bit.  A wire carrying per-source counters re-enables source-counting
    mode, so continued observation keeps feeding them.
    """
    accumulator = WindowAccumulator(window_s=wire[1], pricing=wire[2])
    if wire[7][1]:  # any source_counts column entries
        accumulator.enable_source_counts()
    _absorb_wire(accumulator._windows, wire)
    return accumulator


def merge_wire(wires: Sequence[tuple]) -> WindowedSummary:
    """Merge shard wires into one summary; the coordinator-side merge.

    Equivalent to ``WindowedSummary.merge([finalized shard summaries])``
    — bit-identical output for disjoint-source shards (and identical
    per-source partials in general, since both apply the same adds in
    the same worker order) — without ever materializing the per-shard
    summaries: the columns fold straight into merged accumulation state,
    which is summarized once.
    """
    if not wires:
        raise ValueError("cannot merge zero wires")
    first = wires[0]
    window_s, pricing = first[1], first[2]
    for other in wires[1:]:
        if other[1] != window_s:
            raise ValueError(
                f"window size mismatch: {other[1]} != {window_s}"
            )
        if other[2] != pricing:
            raise ValueError("cannot merge wires priced differently")
    merged: dict[int, _Window] = {}
    for wire in wires:
        _absorb_wire(merged, wire)
    return _summarize(merged, window_s, pricing)
