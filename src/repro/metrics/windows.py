"""Windowed metric accumulation for streaming replays.

A multi-day trace replayed through the cluster simulator produces millions
of invocation records; materializing them defeats the point of a streaming
replay and averaging them into one number hides exactly the transients the
paper's workload-shift events exist to produce.  This module folds a record
*stream* into fixed-size time windows at **O(windows) memory**:

* every per-window quantity is either a counter, an exact running sum, or
  a fixed-width log-spaced latency histogram (:class:`_LatencyHistogram`,
  64 buckets) from which quantiles are estimated — no per-request value is
  ever retained;
* provisioned GB-seconds are spread across the windows a container's
  lifetime overlaps, so keep-alive tails show up in the window that paid
  for them, and each window is priced through the PR 3
  :class:`~repro.metrics.stats.PricingModel` into a
  :class:`~repro.metrics.stats.CostSummary`.

The producer side lives in :meth:`repro.faas.cluster.ClusterPlatform.run_stream`
and :meth:`repro.faas.region.RegionFederation.run_stream`, which feed an
accumulator via the four ``observe_*`` hooks; ``finalize()`` snapshots the
whole run as a :class:`WindowedSummary` time series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.stats import DEFAULT_PRICING, CostSummary, PricingModel

#: Histogram geometry: bucket ``i`` covers latencies up to
#: ``_HIST_FLOOR_MS * _HIST_RATIO**i`` milliseconds.  64 buckets at ratio
#: sqrt(2) span 0.1 ms .. ~9.2e8 ms, far beyond any simulated latency;
#: quantile estimates are exact to within one half-octave.
_HIST_BUCKETS = 64
_HIST_FLOOR_MS = 0.1
_HIST_RATIO = math.sqrt(2.0)
_LOG_RATIO = math.log(_HIST_RATIO)


class _LatencyHistogram:
    """Fixed-size log-spaced latency histogram (bounded-memory quantiles)."""

    __slots__ = ("counts", "total", "sum_ms")

    def __init__(self) -> None:
        self.counts = [0] * _HIST_BUCKETS
        self.total = 0
        self.sum_ms = 0.0

    def observe(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValueError(f"negative latency: {value_ms}")
        if value_ms <= _HIST_FLOOR_MS:
            index = 0
        else:
            index = min(
                _HIST_BUCKETS - 1,
                1 + int(math.log(value_ms / _HIST_FLOOR_MS) / _LOG_RATIO),
            )
        self.counts[index] += 1
        self.total += 1
        self.sum_ms += value_ms

    def mean(self) -> float:
        return self.sum_ms / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (geometric bucket midpoint)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= rank:
                if index == 0:
                    return _HIST_FLOOR_MS
                lower = _HIST_FLOOR_MS * _HIST_RATIO ** (index - 1)
                return lower * math.sqrt(_HIST_RATIO)
        return _HIST_FLOOR_MS * _HIST_RATIO ** (_HIST_BUCKETS - 1)


@dataclass(frozen=True)
class WindowStats:
    """One replay window's aggregate behaviour.

    Attributes:
        index: Window number (``floor(arrival_s / window_s)``).
        start_s: Window start on the replay clock.
        end_s: Window end (``start_s + window_s``).
        arrivals: Requests whose *arrival* fell in this window (served
            and shed alike; completions are attributed to their arrival
            window, so long service never leaks work into a later window).
        completed: Requests that finished service.
        shed: Requests rejected by bounded queues.
        cold_starts: Completions that paid a container boot.
        cold_start_rate: ``cold_starts / completed`` (0 when idle).
        shed_rate: ``shed / arrivals`` (0 when idle).
        queue_mean_ms: Exact mean arrival-to-service wait.
        queue_p95_ms: Histogram-estimated p95 wait (half-octave accuracy).
        gb_seconds: Provisioned memory-time overlapping this window.
        boots: Containers whose boot started in this window.
        cost: The window priced as its own mini-run
            (:class:`~repro.metrics.stats.CostSummary`).
    """

    index: int
    start_s: float
    end_s: float
    arrivals: int
    completed: int
    shed: int
    cold_starts: int
    cold_start_rate: float
    shed_rate: float
    queue_mean_ms: float
    queue_p95_ms: float
    gb_seconds: float
    boots: int
    cost: CostSummary


@dataclass(frozen=True)
class WindowedSummary:
    """A streamed replay summarized as a per-window time series.

    ``windows`` is ordered by window index and only contains windows that
    saw any activity — the memory contract of streaming replay is that
    this tuple (plus one fixed-size histogram per window while
    accumulating) is *all* that a million-request replay retains.
    """

    window_s: float
    windows: tuple[WindowStats, ...]
    arrivals: int
    completed: int
    shed: int
    cold_starts: int
    cold_start_rate: float
    gb_seconds: float
    cost: CostSummary

    def series(self, field: str) -> list[float]:
        """One metric as a time series, e.g. ``series("cold_start_rate")``."""
        return [getattr(window, field) for window in self.windows]

    def window_at(self, at_s: float) -> WindowStats | None:
        """The window covering time ``at_s``, if it saw any activity."""
        index = int(at_s // self.window_s)
        for window in self.windows:
            if window.index == index:
                return window
        return None


class _Window:
    """Mutable accumulation state for one window (fixed-size)."""

    __slots__ = ("arrivals", "completed", "shed", "cold", "boots", "gb_seconds", "queue")

    def __init__(self) -> None:
        self.arrivals = 0
        self.completed = 0
        self.shed = 0
        self.cold = 0
        self.boots = 0
        self.gb_seconds = 0.0
        self.queue = _LatencyHistogram()


class WindowAccumulator:
    """Folds a streaming replay into :class:`WindowStats` windows.

    The four ``observe_*`` hooks are the streaming surface the platforms
    drive (see :meth:`~repro.faas.cluster.ClusterPlatform.run_stream`);
    each touches only the fixed-size state of the windows involved, so
    peak memory is proportional to the number of *active windows*, never
    to the number of requests.
    """

    def __init__(
        self,
        window_s: float,
        pricing: PricingModel | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive: {window_s}")
        self.window_s = float(window_s)
        self.pricing = pricing if pricing is not None else DEFAULT_PRICING
        self._windows: dict[int, _Window] = {}

    def _window(self, at_s: float) -> _Window:
        index = int(at_s // self.window_s)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        return window

    # -- streaming surface -------------------------------------------------

    def observe_arrival(self, at_s: float) -> None:
        """One request arrived at ``at_s`` (before admission control)."""
        self._window(at_s).arrivals += 1

    def observe_completion(
        self, arrival_s: float, cold: bool, queue_ms: float
    ) -> None:
        """One request finished; attributed to its *arrival* window."""
        window = self._window(arrival_s)
        window.completed += 1
        if cold:
            window.cold += 1
        window.queue.observe(queue_ms)

    def observe_shed(self, at_s: float) -> None:
        """One request was rejected by a bounded queue at ``at_s``."""
        self._window(at_s).shed += 1

    def observe_provision(
        self, start_s: float, end_s: float, memory_mb: float
    ) -> None:
        """One container's provisioned lifetime, spread across windows."""
        if end_s < start_s:
            raise ValueError(f"container lifetime ends before it starts: {start_s}..{end_s}")
        self._window(start_s).boots += 1
        gb = memory_mb / 1024.0
        first = int(start_s // self.window_s)
        last = int(end_s // self.window_s)
        for index in range(first, last + 1):
            lo = max(start_s, index * self.window_s)
            hi = min(end_s, (index + 1) * self.window_s)
            if hi > lo:
                self._window(lo).gb_seconds += (hi - lo) * gb

    # -- results -----------------------------------------------------------

    def window_count(self) -> int:
        """Windows touched so far (the memory-bound contract's unit)."""
        return len(self._windows)

    def finalize(self) -> WindowedSummary:
        """Snapshot everything accumulated as a :class:`WindowedSummary`."""
        windows = []
        for index in sorted(self._windows):
            state = self._windows[index]
            windows.append(
                WindowStats(
                    index=index,
                    start_s=index * self.window_s,
                    end_s=(index + 1) * self.window_s,
                    arrivals=state.arrivals,
                    completed=state.completed,
                    shed=state.shed,
                    cold_starts=state.cold,
                    cold_start_rate=(
                        state.cold / state.completed if state.completed else 0.0
                    ),
                    shed_rate=(
                        state.shed / state.arrivals if state.arrivals else 0.0
                    ),
                    queue_mean_ms=state.queue.mean(),
                    queue_p95_ms=state.queue.quantile(0.95),
                    gb_seconds=state.gb_seconds,
                    boots=state.boots,
                    cost=CostSummary.from_usage(
                        state.gb_seconds, state.completed, state.boots, self.pricing
                    ),
                )
            )
        arrivals = sum(w.arrivals for w in windows)
        completed = sum(w.completed for w in windows)
        cold = sum(w.cold_starts for w in windows)
        gb_seconds = sum(w.gb_seconds for w in windows)
        boots = sum(w.boots for w in windows)
        return WindowedSummary(
            window_s=self.window_s,
            windows=tuple(windows),
            arrivals=arrivals,
            completed=completed,
            shed=sum(w.shed for w in windows),
            cold_starts=cold,
            cold_start_rate=cold / completed if completed else 0.0,
            gb_seconds=gb_seconds,
            cost=CostSummary.from_usage(gb_seconds, completed, boots, self.pricing),
        )
