"""QoS classes: per-request utility, deadlines, and penalty semantics.

The paper's adaptive cold-start optimization only matters when requests
differ in what a violated deadline *costs*.  This module defines the
quality-of-service vocabulary the rest of the stack shares, in the style
of the faas-offloading-sim exemplar: a request belongs to a
:class:`QoSClass` carrying

* a **utility** earned when the request completes within its deadline,
* a **deadline** (``deadline_ms``, end-to-end: queueing + service +
  any forwarding wire time),
* a **deadline penalty** charged when the request completes *late*, and
* a **drop penalty** charged when the request is shed (bounded queue)
  or intentionally dropped by a routing policy,
* an **arrival weight** — the relative share of traffic the class
  receives when a trace is compiled with a QoS mix
  (:func:`repro.workloads.replay.assign_qos`).

This module sits at the metrics layer — below both ``repro.faas`` (whose
cluster event loop evaluates deadlines at completion time) and
``repro.workloads`` (whose trace compiler attaches classes to requests)
— so every layer shares one definition.  The class *name* is the wire
format: streams, event payloads, and accumulator hooks carry the name
only, and each consumer resolves it against its configured registry.

Accounting semantics (the single definition, shared by the cluster's
completion path and :class:`~repro.metrics.windows.WindowAccumulator`):

* completion within deadline  → ``+utility``
* completion past deadline    → ``-deadline_penalty`` (no utility)
* shed / dropped              → ``-drop_penalty``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import SpecError


@dataclass(frozen=True)
class QoSClass:
    """One quality-of-service class (see module docstring for semantics).

    Attributes:
        name: Class identifier; the wire format every layer passes around.
        utility: Reward for completing within ``deadline_ms``.
        deadline_ms: End-to-end deadline (``inf`` = never violated).
        deadline_penalty: Cost of completing *after* the deadline.
        drop_penalty: Cost of shedding/dropping the request entirely.
        arrival_weight: Relative traffic share under a QoS mix.
    """

    name: str
    utility: float = 1.0
    deadline_ms: float = math.inf
    deadline_penalty: float = 0.0
    drop_penalty: float = 0.0
    arrival_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("QoS class name must be non-empty")
        if self.deadline_ms <= 0:
            raise SpecError(f"deadline must be positive: {self.deadline_ms}")
        if self.deadline_penalty < 0 or self.drop_penalty < 0:
            raise SpecError(
                f"penalties must be non-negative: {self.deadline_penalty}, "
                f"{self.drop_penalty}"
            )
        if self.arrival_weight <= 0:
            raise SpecError(
                f"arrival weight must be positive: {self.arrival_weight}"
            )

    def completion_value(self, e2e_ms: float) -> tuple[bool, float]:
        """``(violated, utility_contribution)`` for a completed request."""
        if e2e_ms > self.deadline_ms:
            return True, -self.deadline_penalty
        return False, self.utility


#: The class every untagged request implicitly belongs to: unit utility,
#: no deadline, no penalties.  A trace compiled with *only* this class is
#: behaviourally identical to an untagged trace (every golden /
#: stream-equivalence / shard suite stays bit-identical).
DEFAULT_QOS_CLASS = QoSClass(name="standard")

#: Named presets the CLI's ``--qos-mix`` flag draws from.  Deadlines are
#: end-to-end milliseconds; utilities/penalties are in the same arbitrary
#: "value" unit the utility-vs-$ frontier plots.
QOS_PRESETS: dict[str, QoSClass] = {
    "critical": QoSClass(
        name="critical",
        utility=4.0,
        deadline_ms=500.0,
        deadline_penalty=2.0,
        drop_penalty=4.0,
    ),
    "standard": DEFAULT_QOS_CLASS,
    "batch": QoSClass(
        name="batch",
        utility=0.25,
        deadline_ms=math.inf,
        deadline_penalty=0.0,
        drop_penalty=0.05,
    ),
}


def qos_registry(classes) -> dict[str, QoSClass]:
    """Index classes by name, rejecting duplicates.

    The shape every consumer (cluster, federation, routing policy) keeps
    internally; building it here keeps the duplicate check in one place.
    """
    registry: dict[str, QoSClass] = {}
    for qos_class in classes:
        if not isinstance(qos_class, QoSClass):
            raise SpecError(f"not a QoS class: {qos_class!r}")
        if qos_class.name in registry:
            raise SpecError(f"duplicate QoS class: {qos_class.name!r}")
        registry[qos_class.name] = qos_class
    if not registry:
        raise SpecError("need at least one QoS class")
    return registry


def parse_qos_mix(text: str) -> tuple[QoSClass, ...]:
    """Parse the CLI's ``--qos-mix`` value into a class tuple.

    Format: comma-separated ``preset`` or ``preset=weight`` entries, e.g.
    ``"critical=1,standard=5,batch=4"``.  Presets come from
    :data:`QOS_PRESETS`; an explicit weight overrides the preset's
    ``arrival_weight``.  Order is preserved (it seeds nothing, but keeps
    reports readable).
    """
    classes: list[QoSClass] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition("=")
        name = name.strip()
        preset = QOS_PRESETS.get(name)
        if preset is None:
            raise SpecError(
                f"unknown QoS class {name!r} "
                f"(choose from {sorted(QOS_PRESETS)})"
            )
        if weight_text:
            try:
                weight = float(weight_text)
            except ValueError:
                raise SpecError(
                    f"QoS weight for {name!r} must be a number: {weight_text!r}"
                ) from None
            preset = QoSClass(
                name=preset.name,
                utility=preset.utility,
                deadline_ms=preset.deadline_ms,
                deadline_penalty=preset.deadline_penalty,
                drop_penalty=preset.drop_penalty,
                arrival_weight=weight,
            )
        classes.append(preset)
    if not classes:
        raise SpecError(f"--qos-mix must name at least one class: {text!r}")
    qos_registry(classes)  # duplicate check
    return tuple(classes)
