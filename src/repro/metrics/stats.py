"""Summary statistics for invocation latency and memory measurements.

The paper reports averages, 99th-percentile latencies, and before/after
speedup ratios (Tables II and III).  These helpers are dependency-free and
use the standard "linear interpolation between closest ranks" percentile so
results match ``numpy.percentile(..., method="linear")``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def speedup(before: float, after: float) -> float:
    """Before/after speedup ratio (>1 means improvement)."""
    if after <= 0:
        raise ValueError(f"after must be positive: {after}")
    return before / after


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0 for singleton input)."""
    if not values:
        raise ValueError("stddev of empty sequence")
    center = mean(values)
    return math.sqrt(sum((value - center) ** 2 for value in values) / len(values))


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution summary in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencySummary":
        data = list(values)
        if not data:
            raise ValueError("cannot summarize zero latency samples")
        return cls(
            count=len(data),
            mean_ms=mean(data),
            p50_ms=percentile(data, 50),
            p95_ms=percentile(data, 95),
            p99_ms=percentile(data, 99),
            max_ms=max(data),
        )


@dataclass(frozen=True)
class MemorySummary:
    """Peak-memory distribution summary in megabytes."""

    count: int
    mean_mb: float
    peak_mb: float

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "MemorySummary":
        data = list(values)
        if not data:
            raise ValueError("cannot summarize zero memory samples")
        return cls(count=len(data), mean_mb=mean(data), peak_mb=max(data))


@dataclass(frozen=True)
class RateSummary:
    """An event rate over an observation span (offered load, throughput)."""

    count: int
    duration_s: float
    per_second: float

    @classmethod
    def from_events(cls, count: int, duration_s: float) -> "RateSummary":
        """Rate from an event count and span; a zero span yields rate 0."""
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        if duration_s < 0:
            raise ValueError(f"negative duration: {duration_s}")
        per_second = count / duration_s if duration_s > 0 else 0.0
        return cls(count=count, duration_s=duration_s, per_second=per_second)


@dataclass(frozen=True)
class RoutingSummary:
    """Locality/forwarding view of a set of routing decisions.

    Built from ``(origin, destination, network_ms)`` triples — one per
    routed request — this is the per-region aggregation the multi-region
    federation reports next to each region's :class:`LatencySummary`:
    how much traffic stayed home, how much was forwarded, and what the
    forwarding hops cost on the wire.
    """

    count: int
    local: int  # served in the origin region
    forwarded: int
    local_fraction: float
    network_ms: LatencySummary  # per-request one-way hop cost (0 if local)

    @classmethod
    def from_assignments(
        cls, assignments: Iterable[tuple[str, str, float]]
    ) -> "RoutingSummary":
        data = list(assignments)
        if not data:
            raise ValueError("cannot summarize zero routing assignments")
        local = sum(1 for origin, destination, _ in data if origin == destination)
        return cls(
            count=len(data),
            local=local,
            forwarded=len(data) - local,
            local_fraction=local / len(data),
            network_ms=LatencySummary.from_values(ms for _, _, ms in data),
        )


@dataclass(frozen=True)
class PricingModel:
    """Serverless pricing constants for the fleet cost view.

    Defaults approximate AWS Lambda's public x86 pricing (us-east-1):
    $0.0000166667 per GB-second of provisioned memory and $0.20 per
    million requests.  ``cold_start_surcharge`` is charged once per
    container boot; it models provisioning-time billing (the platform
    bills init time too) or an operator-assigned penalty that lets
    deferral plans price cold starts directly.  All knobs are
    configurable so experiments can sweep price points.
    """

    per_gb_second: float = 0.0000166667
    per_million_requests: float = 0.20
    cold_start_surcharge: float = 0.0  # $ per container boot

    def __post_init__(self) -> None:
        if self.per_gb_second < 0:
            raise ValueError(f"negative GB-second price: {self.per_gb_second}")
        if self.per_million_requests < 0:
            raise ValueError(
                f"negative per-request price: {self.per_million_requests}"
            )
        if self.cold_start_surcharge < 0:
            raise ValueError(
                f"negative cold-start surcharge: {self.cold_start_surcharge}"
            )


#: The pricing every cost view uses unless told otherwise.
DEFAULT_PRICING = PricingModel()


@dataclass(frozen=True)
class CostSummary:
    """Dollar cost of one fleet's simulated usage.

    The autoscaler trade-off currency: ``gb_seconds`` is provisioned
    memory-time (billable capacity, not busy time), so a policy that
    holds warm spare containers shows up here even when its cold-start
    rate looks great.  ``per_1k_requests`` normalizes total cost by
    traffic volume, making runs of different length comparable.
    """

    gb_seconds: float
    compute_cost: float  # gb_seconds * per_gb_second
    request_cost: float
    cold_start_cost: float
    total_cost: float
    per_1k_requests: float

    @classmethod
    def from_usage(
        cls,
        gb_seconds: float,
        requests: int,
        container_boots: int,
        pricing: PricingModel = DEFAULT_PRICING,
    ) -> "CostSummary":
        if gb_seconds < 0:
            raise ValueError(f"negative GB-seconds: {gb_seconds}")
        if requests < 0:
            raise ValueError(f"negative request count: {requests}")
        if container_boots < 0:
            raise ValueError(f"negative container boots: {container_boots}")
        compute = gb_seconds * pricing.per_gb_second
        request_cost = requests * pricing.per_million_requests / 1_000_000.0
        cold_start_cost = container_boots * pricing.cold_start_surcharge
        total = compute + request_cost + cold_start_cost
        return cls(
            gb_seconds=gb_seconds,
            compute_cost=compute,
            request_cost=request_cost,
            cold_start_cost=cold_start_cost,
            total_cost=total,
            per_1k_requests=(total / requests * 1000.0) if requests else 0.0,
        )


@dataclass(frozen=True)
class SpeedupReport:
    """Before/after comparison in the shape Table II reports."""

    init_speedup: float
    e2e_speedup: float
    p99_init_speedup: float
    p99_e2e_speedup: float
    memory_reduction: float

    @classmethod
    def compare(
        cls,
        before_init: LatencySummary,
        after_init: LatencySummary,
        before_e2e: LatencySummary,
        after_e2e: LatencySummary,
        before_memory: MemorySummary,
        after_memory: MemorySummary,
    ) -> "SpeedupReport":
        return cls(
            init_speedup=speedup(before_init.mean_ms, after_init.mean_ms),
            e2e_speedup=speedup(before_e2e.mean_ms, after_e2e.mean_ms),
            p99_init_speedup=speedup(before_init.p99_ms, after_init.p99_ms),
            p99_e2e_speedup=speedup(before_e2e.p99_ms, after_e2e.p99_ms),
            memory_reduction=speedup(before_memory.peak_mb, after_memory.peak_mb),
        )
