"""Clock abstraction used by both the real testbed and the simulator.

Times are expressed in *seconds* as floats, mirroring :func:`time.monotonic`.
The simulator advances a :class:`VirtualClock` explicitly, which makes every
experiment bit-reproducible and lets a 300-hour production trace replay in
milliseconds of wall time.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface: a monotonically non-decreasing ``now``."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...  # pragma: no cover - protocol stub


class RealClock:
    """Wall-clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of real time."""
        time.sleep(seconds)


class VirtualClock:
    """Deterministic clock advanced explicitly by the simulator.

    Besides plain time-keeping, the virtual clock owns a tiny event queue so
    simulator components can schedule callbacks (keep-alive expiry, batched
    profile uploads) without a real event loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = 0

    def now(self) -> float:
        return self._now

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire when the clock reaches ``at``."""
        if at < self._now:
            raise ValueError(f"cannot schedule in the past: {at} < {self._now}")
        heapq.heappush(self._events, (at, self._counter, callback))
        self._counter += 1

    def advance(self, seconds: float) -> None:
        """Move time forward, firing any callbacks that come due in order."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self.advance_to(self._now + seconds)

    def advance_to(self, deadline: float) -> None:
        """Advance to an absolute time, firing due callbacks in order."""
        if deadline < self._now:
            raise ValueError(f"cannot rewind clock: {deadline} < {self._now}")
        while self._events and self._events[0][0] <= deadline:
            at, _, callback = heapq.heappop(self._events)
            self._now = at
            callback()
        self._now = deadline

    @property
    def pending_events(self) -> int:
        """Number of callbacks not yet fired (useful in tests)."""
        return len(self._events)


def as_clock(clock: Clock | None) -> Clock:
    """Return ``clock`` or a fresh :class:`RealClock` when ``None``."""
    return clock if clock is not None else RealClock()
