"""Tiny JSON persistence helpers shared by profiles, reports, and traces."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/sets into JSON-friendly types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    return value


def dump_json(value: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``value`` to ``path`` and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_jsonable(value), indent=indent, sort_keys=True))
    return target


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text())
