"""Shared low-level utilities: clocks, errors, seeded randomness, JSON io.

Everything in :mod:`repro` that models time goes through the :class:`Clock`
protocol so that the same code runs against the real wall clock (the local
FaaS testbed) and against a deterministic virtual clock (the simulator).
"""

from repro.common.clock import Clock, RealClock, VirtualClock
from repro.common.errors import (
    DeploymentError,
    OptimizationError,
    ProfilingError,
    ReproError,
    SpecError,
)
from repro.common.rng import SeededRNG, derive_seed

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "ReproError",
    "SpecError",
    "ProfilingError",
    "OptimizationError",
    "DeploymentError",
    "SeededRNG",
    "derive_seed",
]
