"""Seeded randomness helpers.

Every stochastic component in the repro package takes an explicit integer
seed and derives child seeds with :func:`derive_seed`, so that adding a new
random draw in one component never perturbs the stream of another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base: int, *labels: str | int) -> int:
    """Derive a stable child seed from ``base`` and a label path.

    Uses BLAKE2 rather than Python's ``hash`` so results are stable across
    processes and interpreter versions.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(base).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "big")


class SeededRNG:
    """Thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, *labels: str | int) -> "SeededRNG":
        """Return an independent generator for a named sub-domain."""
        return SeededRNG(derive_seed(self.seed, *labels))

    def getstate(self):
        """The underlying generator state (for checkpoint serialization)."""
        return self._random.getstate()

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._random.setstate(state)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def uniform_list(self, low: float, high: float, count: int) -> list[float]:
        """``count`` uniform draws as a list; identical stream to calling
        :meth:`uniform` ``count`` times (the bound-method batch form exists
        for hot paths that draw thousands of values per call)."""
        draw = self._random.uniform
        return [draw(low, high) for _ in range(count)]

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample; ``rate`` in events/second."""
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        return self._random.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        return self._random.gauss(mean, stddev)

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def shuffle(self, items: list[T]) -> None:
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        return self._random.sample(items, count)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        return self._random.choices(items, weights=weights, k=1)[0]

    def zipf_weights(self, count: int, exponent: float = 1.0) -> list[float]:
        """Normalized Zipf popularity weights for ranks ``1..count``.

        Deterministic given the arguments (no random draw); lives here so
        workload code has a single popularity vocabulary.
        """
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative: {exponent}")
        raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
        total = sum(raw)
        return [weight / total for weight in raw]

    def poisson(self, mean: float) -> int:
        """Poisson sample via inversion (mean kept modest in our workloads)."""
        if mean < 0:
            raise ValueError(f"mean must be non-negative: {mean}")
        if mean == 0:
            return 0
        # Knuth's algorithm is fine for the small means used by the traces.
        import math

        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count


def spread(values: Iterable[float], total: float) -> list[float]:
    """Rescale ``values`` so they sum to ``total`` (empty input -> empty)."""
    items = list(values)
    current = sum(items)
    if not items:
        return []
    if current <= 0:
        share = total / len(items)
        return [share] * len(items)
    factor = total / current
    return [value * factor for value in items]
