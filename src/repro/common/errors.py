"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SpecError(ReproError):
    """A library/application specification is malformed or inconsistent."""


class ProfilingError(ReproError):
    """The profiler could not be installed, started, or stopped."""


class OptimizationError(ReproError):
    """The code optimizer could not safely transform a source file."""


class DeploymentError(ReproError):
    """A function package could not be built, deployed, or invoked."""


class WorkloadError(ReproError):
    """A workload/trace definition is invalid or exhausted."""


class CheckpointError(WorkloadError):
    """A replay checkpoint (or shard manifest) is corrupt or inconsistent.

    Raised whenever on-disk checkpoint state cannot be trusted — truncated
    JSON, a scratch file left by a crashed writer, a manifest whose shard
    files are missing, or a resume whose worker count / fingerprint /
    partition disagrees with what the checkpoint was written under.
    Resuming past any of these would silently blend two replays into one
    report, so they all fail loudly instead.
    """


class StorageError(ReproError):
    """The emulated cloud storage rejected an operation."""
