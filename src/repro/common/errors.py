"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SpecError(ReproError):
    """A library/application specification is malformed or inconsistent."""


class ProfilingError(ReproError):
    """The profiler could not be installed, started, or stopped."""


class OptimizationError(ReproError):
    """The code optimizer could not safely transform a source file."""


class DeploymentError(ReproError):
    """A function package could not be built, deployed, or invoked."""


class WorkloadError(ReproError):
    """A workload/trace definition is invalid or exhausted."""


class StorageError(ReproError):
    """The emulated cloud storage rejected an operation."""
