"""Procedural construction of synthetic libraries from cluster plans.

Real libraries (the paper's Table II) contain hundreds to thousands of
modules; writing those specs by hand is hopeless.  The builder generates a
library from a handful of *cluster plans* — one per feature area (e.g.
igraph's ``core``, ``community``, ``drawing``) — while keeping three shape
properties the paper's analysis depends on:

1. **Eager import cascade** — the library root imports every cluster root
   and each package imports its children, so importing the library loads
   everything (the behaviour SLIMSTART optimizes away).
2. **Cascading call structure** — cluster roots act as orchestrators whose
   ``run`` delegates into child modules (§III, Fig. 5: orchestrators collect
   few samples themselves and need CCT escalation for fair attribution).
3. **Multiple call paths** — every orchestrator also calls a shared utility
   leaf when configured, reproducing Fig. 5's ``Lib-6`` multi-path case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import SpecError
from repro.common.rng import SeededRNG, derive_seed
from repro.synthlib.spec import FunctionSpec, LibrarySpec, ModuleSpec

#: Self-cost range (ms) for ordinary generated functions.  Kept small so
#: that "use one cluster" exercises every module of the cluster while the
#: entry's total execution time stays in the tens of milliseconds — library
#: call work is cheap relative to library *import* work, which is the whole
#: premise of the paper.
_FN_COST_RANGE = (0.05, 0.25)
_ORCHESTRATOR_COST_RANGE = (0.2, 0.6)


@dataclass(frozen=True)
class ClusterPlan:
    """Plan for one feature cluster of a generated library.

    ``init_share`` and ``memory_share`` are fractions of the library totals;
    cluster shares must sum to at most 1.0 and the library root module
    receives the remainder (real package roots do meaningful work too).
    ``depth`` is the maximum dotted depth of the cluster's modules, counting
    the library root as depth 1 (so the cluster root sits at depth 2).
    """

    name: str
    module_count: int
    init_share: float
    depth: int = 3
    memory_share: float | None = None
    functions_per_module: int = 1

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid cluster name: {self.name!r}")
        if self.module_count < 1:
            raise SpecError(f"cluster {self.name!r} needs >= 1 module")
        if not 0.0 <= self.init_share <= 1.0:
            raise SpecError(f"cluster {self.name!r} init_share out of [0,1]")
        if self.depth < 2:
            raise SpecError(f"cluster {self.name!r} depth must be >= 2")
        if self.module_count > 1 and self.depth < 3:
            raise SpecError(
                f"cluster {self.name!r} has {self.module_count} modules but "
                f"depth {self.depth}; nested modules need depth >= 3"
            )
        if self.functions_per_module < 1:
            raise SpecError(f"cluster {self.name!r} needs >= 1 function/module")


def _level_counts(total_nested: int, levels: int) -> list[int]:
    """Distribute ``total_nested`` modules over ``levels`` levels.

    Deeper levels receive geometrically more modules (factor 2), mirroring
    real scientific libraries where most code sits deep in the package tree;
    this is what pushes the average import depth toward the values Table II
    reports (e.g. 7.97 for the SciPy-based model-serving app).  Every level
    above a populated level keeps at least one module so children always
    have a parent package.
    """
    if levels <= 0:
        return []
    weights = [2.0**index for index in range(levels)]
    weight_sum = sum(weights)
    counts = [int(total_nested * weight / weight_sum) for weight in weights]
    assigned = sum(counts)
    index = levels - 1
    while assigned < total_nested:
        counts[index] += 1
        assigned += 1
        index = (index - 1) % levels
    # Guarantee parents exist: any level below a populated one needs >= 1.
    deepest_populated = max(
        (index for index, count in enumerate(counts) if count), default=-1
    )
    for index in range(deepest_populated):
        while counts[index] == 0:
            counts[index] += 1
            # Take one module away from the most populated deeper level.
            donor = max(
                range(index + 1, levels), key=lambda position: counts[position]
            )
            if counts[donor] <= 1:
                break
            counts[donor] -= 1
    return counts


def _cluster_module_names(plan: ClusterPlan) -> list[str]:
    """Module names (relative to the library root) for one cluster."""
    names = [plan.name]
    nested = plan.module_count - 1
    if nested == 0:
        return names
    levels = plan.depth - 2  # levels 3 .. depth
    counts = _level_counts(nested, levels)
    previous_level = [plan.name]
    for level_index, count in enumerate(counts):
        if count == 0:
            continue
        current_level = []
        for index in range(count):
            parent = previous_level[index % len(previous_level)]
            current_level.append(f"{parent}.m{level_index}{index:03d}")
        names.extend(current_level)
        previous_level = current_level or previous_level
    return names


def _children_map(names: list[str]) -> dict[str, list[str]]:
    children: dict[str, list[str]] = {name: [] for name in names}
    for name in names:
        parent = name.rpartition(".")[0]
        if parent in children:
            children[parent].append(name)
    return children


def build_library(
    name: str,
    *,
    total_init_cost_ms: float,
    total_memory_kb: float,
    clusters: list[ClusterPlan],
    seed: int = 0,
    category: str = "General",
    root_external_imports: tuple[str, ...] = (),
    shared_utility: str | None = None,
) -> LibrarySpec:
    """Generate a full :class:`LibrarySpec` from cluster plans.

    The library root module eagerly imports every cluster root, each package
    imports its children, and per-module init costs follow a heavy-tailed
    (log-normal) split of each cluster's share — mirroring how real package
    init cost concentrates in a few expensive modules.
    """
    if total_init_cost_ms < 0 or total_memory_kb < 0:
        raise SpecError("library totals must be non-negative")
    if not clusters:
        raise SpecError(f"library {name!r} needs at least one cluster")
    cluster_names = [plan.name for plan in clusters]
    if len(set(cluster_names)) != len(cluster_names):
        raise SpecError(f"duplicate cluster names in {name!r}")
    init_share_sum = sum(plan.init_share for plan in clusters)
    if init_share_sum > 1.0 + 1e-9:
        raise SpecError(
            f"cluster init shares of {name!r} sum to {init_share_sum:.3f} > 1"
        )
    if shared_utility is not None and shared_utility not in cluster_names:
        raise SpecError(f"shared utility cluster {shared_utility!r} not defined")

    rng = SeededRNG(derive_seed(seed, "library", name))
    modules: list[ModuleSpec] = []

    cluster_leaves: dict[str, list[str]] = {}
    cluster_children: dict[str, list[str]] = {}
    all_children: dict[str, list[str]] = {}

    per_cluster_names: dict[str, list[str]] = {}
    for plan in clusters:
        names = _cluster_module_names(plan)
        per_cluster_names[plan.name] = names
        children = _children_map(names)
        all_children.update(children)
        cluster_children[plan.name] = children[plan.name]
        cluster_leaves[plan.name] = [
            module for module in names if not children[module]
        ] or [plan.name]

    # The shared utility target: the first leaf of the designated cluster.
    utility_call: str | None = None
    if shared_utility is not None:
        utility_leaf = cluster_leaves[shared_utility][0]
        utility_call = f"{name}.{utility_leaf}:f0"

    for plan in clusters:
        names = per_cluster_names[plan.name]
        cluster_rng = rng.child("cluster", plan.name)
        weights = [math.exp(cluster_rng.gauss(0.0, 0.8)) for _ in names]
        weight_sum = sum(weights)
        cluster_init = total_init_cost_ms * plan.init_share
        memory_share = (
            plan.memory_share if plan.memory_share is not None else plan.init_share
        )
        cluster_memory = total_memory_kb * memory_share
        for module_name, weight in zip(names, weights):
            init_cost = cluster_init * weight / weight_sum
            memory = cluster_memory * weight / weight_sum
            functions = _module_functions(
                name,
                plan,
                module_name,
                all_children,
                cluster_children,
                utility_call,
                cluster_rng,
            )
            modules.append(
                ModuleSpec(
                    name=module_name,
                    init_cost_ms=init_cost,
                    memory_kb=memory,
                    imports=tuple(all_children[module_name]),
                    functions=tuple(functions),
                )
            )

    root_init = total_init_cost_ms * max(0.0, 1.0 - init_share_sum)
    memory_share_sum = sum(
        plan.memory_share if plan.memory_share is not None else plan.init_share
        for plan in clusters
    )
    root_memory = total_memory_kb * max(0.0, 1.0 - memory_share_sum)
    root_functions = [FunctionSpec(name="ping", self_cost_ms=0.2)]
    for plan in clusters:
        root_functions.append(
            FunctionSpec(
                name=f"use_{plan.name}",
                self_cost_ms=rng.child("rootfn", plan.name).uniform(0.2, 0.8),
                calls=(f"{name}.{plan.name}:run",),
            )
        )
    modules.append(
        ModuleSpec(
            name="",
            init_cost_ms=root_init,
            memory_kb=root_memory,
            imports=tuple(plan.name for plan in clusters),
            external_imports=root_external_imports,
            functions=tuple(root_functions),
        )
    )
    return LibrarySpec(name=name, category=category, modules=tuple(modules))


def _module_functions(
    library_name: str,
    plan: ClusterPlan,
    module_name: str,
    all_children: dict[str, list[str]],
    cluster_children: dict[str, list[str]],
    utility_call: str | None,
    rng: SeededRNG,
) -> list[FunctionSpec]:
    """Functions for one generated module (orchestrators included)."""
    functions: list[FunctionSpec] = []
    children = all_children[module_name]
    fn_rng = rng.child("fn", module_name)
    for index in range(plan.functions_per_module):
        calls: tuple[str, ...] = ()
        if index == 0 and children:
            # Cascading delegation: a package's f0 fans out into *every*
            # child, so invoking a cluster exercises the whole cluster —
            # utilization coverage is then controlled purely by which
            # clusters an application's entry points reach.
            calls = tuple(
                f"{library_name}.{child}:f0" for child in children
            )
        functions.append(
            FunctionSpec(
                name=f"f{index}",
                self_cost_ms=fn_rng.uniform(*_FN_COST_RANGE),
                calls=calls,
            )
        )
    if module_name == plan.name:
        # The cluster root is the orchestrator (Fig. 5's Lib-1 role): it
        # delegates into its children and, when configured, the shared
        # utility leaf — giving that leaf multiple call paths (Lib-6).
        orchestrated = [
            f"{library_name}.{child}:f0"
            for child in cluster_children[plan.name]
        ]
        if utility_call is not None and not utility_call.startswith(
            f"{library_name}.{plan.name}."
        ):
            orchestrated.append(utility_call)
        functions.append(
            FunctionSpec(
                name="run",
                self_cost_ms=fn_rng.uniform(*_ORCHESTRATOR_COST_RANGE),
                calls=tuple(orchestrated),
            )
        )
    return functions
