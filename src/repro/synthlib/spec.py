"""Declarative model of a synthetic library ecosystem.

A :class:`LibrarySpec` is a tree of :class:`ModuleSpec` objects.  Module
names are dotted paths *relative to the library root*; the empty string
names the root package itself (``<lib>/__init__.py``).  Each module carries

* ``init_cost_ms`` — CPU time burned when the module is first imported,
* ``memory_kb``   — resident memory attributed once the module is loaded,
* ``imports``     — same-library modules imported eagerly at module exec,
* ``external_imports`` — fully-qualified modules of *other* libraries
  imported eagerly at module exec, and
* ``functions``   — callables the module defines, each with a self cost and
  a list of fully-qualified callees.

Import semantics mirror CPython: importing ``lib.a.b`` first loads the
ancestor packages ``lib`` and ``lib.a``.  :meth:`Ecosystem.import_closure`
reproduces this, including the effect of *deferring* modules (lazy loading),
which is the mechanism both SLIMSTART and the FaaSLight baseline exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.common.errors import SpecError

_IDENT_OK = str.isidentifier


def _check_dotted(name: str, *, allow_empty: bool) -> None:
    if name == "":
        if allow_empty:
            return
        raise SpecError("module name may not be empty here")
    for part in name.split("."):
        if not _IDENT_OK(part):
            raise SpecError(f"invalid module path component {part!r} in {name!r}")


@dataclass(frozen=True, order=True)
class ModuleKey:
    """Globally unique module identifier: library name + relative path."""

    library: str
    module: str  # "" for the library root package

    @property
    def dotted(self) -> str:
        """Absolute dotted import path, e.g. ``sligraph.drawing.colors``."""
        return f"{self.library}.{self.module}" if self.module else self.library

    def is_ancestor_of(self, other: "ModuleKey") -> bool:
        """True when this module is a package containing ``other``."""
        if self.library != other.library or self == other:
            return False
        if self.module == "":
            return True
        return other.module.startswith(self.module + ".")

    def ancestors(self) -> Iterator["ModuleKey"]:
        """Yield strict package ancestors from the library root downward.

        The library root has no ancestors (and must not yield itself).
        """
        if not self.module:
            return
        yield ModuleKey(self.library, "")
        parts = self.module.split(".")
        for index in range(1, len(parts)):
            yield ModuleKey(self.library, ".".join(parts[:index]))


@dataclass(frozen=True)
class FunctionRef:
    """Fully-qualified reference to a function: ``lib.mod.sub:func``."""

    key: ModuleKey
    function: str

    @property
    def qualified(self) -> str:
        return f"{self.key.dotted}:{self.function}"

    @classmethod
    def parse(cls, text: str, libraries: Iterable[str]) -> "FunctionRef":
        """Parse ``lib[.module]:function`` given the known library names."""
        if ":" not in text:
            raise SpecError(f"function reference missing ':': {text!r}")
        dotted, _, function = text.partition(":")
        if not function.isidentifier():
            raise SpecError(f"invalid function name in reference: {text!r}")
        first, _, rest = dotted.partition(".")
        if first not in set(libraries):
            raise SpecError(f"unknown library {first!r} in reference {text!r}")
        _check_dotted(rest, allow_empty=True)
        return cls(key=ModuleKey(first, rest), function=function)


@dataclass(frozen=True)
class FunctionSpec:
    """A callable defined by a module."""

    name: str
    self_cost_ms: float = 1.0
    calls: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid function name: {self.name!r}")
        if self.self_cost_ms < 0:
            raise SpecError(f"negative function cost: {self.name} {self.self_cost_ms}")


@dataclass(frozen=True)
class ModuleSpec:
    """One module of a synthetic library."""

    name: str  # dotted path relative to the library root; "" is the root
    init_cost_ms: float = 0.0
    memory_kb: float = 0.0
    imports: tuple[str, ...] = ()
    external_imports: tuple[str, ...] = ()
    functions: tuple[FunctionSpec, ...] = ()

    def __post_init__(self) -> None:
        _check_dotted(self.name, allow_empty=True)
        if self.init_cost_ms < 0:
            raise SpecError(f"negative init cost for module {self.name!r}")
        if self.memory_kb < 0:
            raise SpecError(f"negative memory for module {self.name!r}")
        seen: set[str] = set()
        for function in self.functions:
            if function.name in seen:
                raise SpecError(
                    f"duplicate function {function.name!r} in module {self.name!r}"
                )
            seen.add(function.name)

    @property
    def depth(self) -> int:
        """Dotted depth counting the library root (root itself is 1)."""
        if not self.name:
            return 1
        return 1 + self.name.count(".") + 1


@dataclass
class LibrarySpec:
    """A complete synthetic library: a validated tree of modules."""

    name: str
    category: str = "General"
    modules: tuple[ModuleSpec, ...] = ()
    _by_name: dict[str, ModuleSpec] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"invalid library name: {self.name!r}")
        self._by_name = {}
        for module in self.modules:
            if module.name in self._by_name:
                raise SpecError(f"duplicate module {module.name!r} in {self.name}")
            self._by_name[module.name] = module
        self._validate()

    # -- validation ------------------------------------------------------

    def _validate(self) -> None:
        if "" not in self._by_name:
            raise SpecError(f"library {self.name!r} is missing its root module")
        for module in self.modules:
            self._validate_prefixes(module)
            self._validate_imports(module)
        self._validate_acyclic()

    def _validate_prefixes(self, module: ModuleSpec) -> None:
        if not module.name:
            return
        parts = module.name.split(".")
        for index in range(1, len(parts)):
            prefix = ".".join(parts[:index])
            if prefix not in self._by_name:
                raise SpecError(
                    f"module {module.name!r} of {self.name!r} has no package "
                    f"module for prefix {prefix!r}"
                )

    def _validate_imports(self, module: ModuleSpec) -> None:
        for target in module.imports:
            if target == module.name:
                raise SpecError(f"module {module.name!r} imports itself")
            if target not in self._by_name:
                raise SpecError(
                    f"module {module.name!r} of {self.name!r} imports unknown "
                    f"module {target!r}"
                )
        for target in module.external_imports:
            _check_dotted(target, allow_empty=False)

    def _validate_acyclic(self) -> None:
        # Depth-first cycle check over *explicit* intra-library import edges.
        # The implicit child -> ancestor-package dependency is intentionally
        # excluded: "package imports its children" is legal in CPython (the
        # partially-initialized parent already sits in ``sys.modules``) and
        # is exactly the eager-loading pattern this paper targets.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._by_name}

        def edges(name: str) -> Iterator[str]:
            yield from self._by_name[name].imports

        def visit(name: str, path: list[str]) -> None:
            color[name] = GRAY
            path.append(name)
            for target in edges(name):
                if color[target] == GRAY:
                    cycle = " -> ".join(path + [target])
                    raise SpecError(f"import cycle in {self.name!r}: {cycle}")
                if color[target] == WHITE:
                    visit(target, path)
            path.pop()
            color[name] = BLACK

        for name in self._by_name:
            if color[name] == WHITE:
                visit(name, [])

    # -- accessors -------------------------------------------------------

    def module(self, name: str) -> ModuleSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecError(f"library {self.name!r} has no module {name!r}") from None

    def has_module(self, name: str) -> bool:
        return name in self._by_name

    def module_names(self) -> list[str]:
        return sorted(self._by_name)

    def keys(self) -> list[ModuleKey]:
        return [ModuleKey(self.name, name) for name in self.module_names()]

    def children(self, name: str) -> list[str]:
        """Direct sub-modules of the package ``name``."""
        prefix = f"{name}." if name else ""
        result = []
        for candidate in self._by_name:
            if not candidate or not candidate.startswith(prefix):
                continue
            remainder = candidate[len(prefix):]
            if remainder and "." not in remainder:
                result.append(candidate)
        return sorted(result)

    def subtree(self, name: str) -> list[str]:
        """``name`` plus every module nested beneath it."""
        if name == "":
            return self.module_names()
        prefix = name + "."
        return sorted(
            candidate
            for candidate in self._by_name
            if candidate == name or candidate.startswith(prefix)
        )

    def is_package(self, name: str) -> bool:
        """True when the module has nested modules (maps to a directory)."""
        if name == "":
            return True
        prefix = name + "."
        return any(candidate.startswith(prefix) for candidate in self._by_name)

    # -- aggregate metrics (Table II columns) ------------------------------

    @property
    def module_count(self) -> int:
        return len(self.modules)

    @property
    def total_init_cost_ms(self) -> float:
        return sum(module.init_cost_ms for module in self.modules)

    @property
    def total_memory_kb(self) -> float:
        return sum(module.memory_kb for module in self.modules)

    @property
    def average_depth(self) -> float:
        return sum(module.depth for module in self.modules) / len(self.modules)

    def subtree_init_cost_ms(self, name: str) -> float:
        return sum(self._by_name[m].init_cost_ms for m in self.subtree(name))


class Ecosystem:
    """A set of libraries with cross-library references resolved."""

    def __init__(self, libraries: Iterable[LibrarySpec] = ()) -> None:
        self._libraries: dict[str, LibrarySpec] = {}
        for library in libraries:
            self.add(library)

    def add(self, library: LibrarySpec) -> None:
        if library.name in self._libraries:
            raise SpecError(f"duplicate library {library.name!r}")
        self._libraries[library.name] = library

    # -- accessors -------------------------------------------------------

    @property
    def libraries(self) -> Mapping[str, LibrarySpec]:
        return dict(self._libraries)

    def library(self, name: str) -> LibrarySpec:
        try:
            return self._libraries[name]
        except KeyError:
            raise SpecError(f"unknown library {name!r}") from None

    def library_names(self) -> list[str]:
        return sorted(self._libraries)

    def module(self, key: ModuleKey) -> ModuleSpec:
        return self.library(key.library).module(key.module)

    def has_module(self, key: ModuleKey) -> bool:
        library = self._libraries.get(key.library)
        return library is not None and library.has_module(key.module)

    def all_keys(self) -> list[ModuleKey]:
        return [key for name in self.library_names() for key in self._libraries[name].keys()]

    def parse_module(self, dotted: str) -> ModuleKey:
        """Parse an absolute dotted path into a :class:`ModuleKey`."""
        first, _, rest = dotted.partition(".")
        if first not in self._libraries:
            raise SpecError(f"unknown library in module path {dotted!r}")
        key = ModuleKey(first, rest)
        if not self.has_module(key):
            raise SpecError(f"unknown module {dotted!r}")
        return key

    def parse_function(self, text: str) -> FunctionRef:
        ref = FunctionRef.parse(text, self._libraries)
        if not self.has_module(ref.key):
            raise SpecError(f"reference {text!r} names unknown module")
        module = self.module(ref.key)
        if ref.function not in {fn.name for fn in module.functions}:
            raise SpecError(f"reference {text!r} names unknown function")
        return ref

    def function(self, ref: FunctionRef) -> FunctionSpec:
        module = self.module(ref.key)
        for candidate in module.functions:
            if candidate.name == ref.function:
                return candidate
        raise SpecError(f"unknown function {ref.qualified!r}")

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check cross-library references; raises :class:`SpecError`."""
        for library in self._libraries.values():
            for module in library.modules:
                for target in module.external_imports:
                    key = self.parse_module(target)
                    if key.library == library.name:
                        raise SpecError(
                            f"module {module.name!r} of {library.name!r} lists "
                            f"a same-library import as external: {target!r}"
                        )
                for function in module.functions:
                    for call in function.calls:
                        self.parse_function(call)

    # -- import semantics --------------------------------------------------

    def import_edges(self, key: ModuleKey) -> list[ModuleKey]:
        """Eager import targets of ``key`` (same-library and external)."""
        module = self.module(key)
        edges = [ModuleKey(key.library, target) for target in module.imports]
        edges.extend(self.parse_module(target) for target in module.external_imports)
        return edges

    def import_closure(
        self,
        roots: Iterable[ModuleKey],
        deferred: frozenset[ModuleKey] | set[ModuleKey] = frozenset(),
        already_loaded: Iterable[ModuleKey] = (),
    ) -> list[ModuleKey]:
        """Modules loaded, in load order, when ``roots`` are imported.

        ``deferred`` models lazy loading: an *import edge into* a deferred
        module is skipped (a stub takes its place), so the module and
        anything only reachable through it stay unloaded.  Explicitly
        importing a deferred module (``roots``) still loads it — that is
        exactly what happens when a deferred import finally executes at
        first use.  ``already_loaded`` models a warm container.
        """
        deferred = frozenset(deferred)
        loaded: set[ModuleKey] = set(already_loaded)
        order: list[ModuleKey] = []

        def load(key: ModuleKey, *, forced: bool) -> None:
            if key in loaded:
                return
            if key in deferred and not forced:
                return
            # Python loads ancestor packages before the module itself, and
            # does so even when the package appears in ``deferred``: lazy
            # loading only removes *edges into* a module, so any surviving
            # import of a descendant still executes the package eagerly.
            for ancestor in key.ancestors():
                if ancestor not in loaded:
                    load(ancestor, forced=True)
            if key in loaded:  # an ancestor's imports may have loaded us
                return
            loaded.add(key)
            for target in self.import_edges(key):
                load(target, forced=False)
            order.append(key)

        for root in roots:
            load(root, forced=True)
        return order

    def total_init_cost_ms(self, keys: Iterable[ModuleKey]) -> float:
        return sum(self.module(key).init_cost_ms for key in keys)

    def total_memory_kb(self, keys: Iterable[ModuleKey]) -> float:
        return sum(self.module(key).memory_kb for key in keys)

    def call_targets(self, ref: FunctionRef) -> list[FunctionRef]:
        """Direct callees of ``ref`` per the specification."""
        return [self.parse_function(call) for call in self.function(ref).calls]
