"""Synthetic library ecosystem.

The paper evaluates SLIMSTART against real PyPI libraries (numpy, igraph,
nltk, pandas, scipy, ...).  Those libraries are not available offline and
their absolute import costs are machine-specific, so this package provides a
*synthetic library ecosystem*: declarative specifications of libraries
(module trees, per-module initialization cost and memory footprint,
intra/inter-library import edges, and call graphs) plus a generator that
materializes a specification as a real, importable Python package tree whose
import really does burn the specified amount of CPU time.

The same specifications drive the virtual-time simulator, so the simulated
and really-executed versions of an application share one source of truth.
"""

from repro.synthlib.spec import (
    Ecosystem,
    FunctionRef,
    FunctionSpec,
    LibrarySpec,
    ModuleKey,
    ModuleSpec,
)
from repro.synthlib.builder import ClusterPlan, build_library
from repro.synthlib.costmodel import CostModel
from repro.synthlib.generator import materialize_ecosystem

__all__ = [
    "Ecosystem",
    "FunctionRef",
    "FunctionSpec",
    "LibrarySpec",
    "ModuleKey",
    "ModuleSpec",
    "ClusterPlan",
    "build_library",
    "CostModel",
    "materialize_ecosystem",
]
