"""Materialize an :class:`~repro.synthlib.spec.Ecosystem` as real packages.

The generated code is plain, dependency-free Python.  Importing a generated
module really burns the specified CPU time with an *inline* busy loop, so a
sampling profiler attributes the work to the generated file (not to a shared
runtime helper) — this is what lets SLIMSTART's real profiler produce the
same attribution on synthetic libraries that it would on PyPI ones.

Layout of a materialized workspace::

    <workspace>/
      _slimstart_runtime.py      # registry: loaded modules, calls, memory
      <lib>/__init__.py          # root module ("" in the spec)
      <lib>/<pkg>/__init__.py    # package modules
      <lib>/<pkg>/<mod>.py       # leaf modules

Generated intra-/inter-library imports are single-line ``import a.b.c``
statements, one per line, which is the exact shape the lazy-loading
rewriters in :mod:`repro.core.optimizer` and :mod:`repro.core.libstubber`
transform.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import SpecError
from repro.synthlib.spec import Ecosystem, LibrarySpec, ModuleSpec

RUNTIME_MODULE_NAME = "_slimstart_runtime"

_RUNTIME_TEMPLATE = '''"""Workspace runtime registry for generated synthetic libraries.

Auto-generated; tracks which synthetic modules are loaded, how much memory
they account for, and how often generated functions run.  A fresh import of
this module (after a container purge) starts with an empty registry, which
is exactly the cold-start semantics the testbed needs.
"""

import os as _os
import time as _time

COST_SCALE = float(_os.environ.get("SLIMSTART_COST_SCALE", "{scale}"))

_loaded = {{}}
_load_order = []
_calls = {{}}
_seq = 0


def module_begin(dotted, init_cost_ms, memory_kb):
    """Record that a synthetic module's top-level code started executing."""
    global _seq
    _seq += 1
    _loaded[dotted] = {{
        "init_cost_ms": init_cost_ms,
        "memory_kb": memory_kb,
        "seq": _seq,
        "wall_at": _time.perf_counter(),
    }}
    _load_order.append(dotted)


def function_enter(dotted, function):
    """Record one invocation of ``dotted:function``."""
    key = dotted + ":" + function
    _calls[key] = _calls.get(key, 0) + 1


def resolve(dotted):
    """Walk package attributes to reach ``dotted``, honouring lazy stubs.

    Unlike ``importlib.import_module(dotted)``, attribute access triggers a
    package's PEP 562 ``__getattr__`` — the mechanism deferred imports use —
    so resolving a lazily-loaded submodule loads it at this call site,
    mirroring first-use loading in an optimized application.
    """
    import importlib

    parts = dotted.split(".")
    obj = importlib.import_module(parts[0])
    for part in parts[1:]:
        obj = getattr(obj, part)
    return obj


def loaded_modules():
    """Snapshot of loaded synthetic modules keyed by dotted path."""
    return dict(_loaded)


def load_order():
    return list(_load_order)


def call_counts():
    return dict(_calls)


def memory_kb():
    """Total memory attributed to currently loaded synthetic modules."""
    return sum(entry["memory_kb"] for entry in _loaded.values())


def reset():
    """Clear the registry (containers call this between invocations)."""
    _loaded.clear()
    _load_order.clear()
    _calls.clear()
'''


def _burn_block(cost_ms: float, indent: str) -> list[str]:
    """Inline busy-wait lines burning ``cost_ms * COST_SCALE`` milliseconds."""
    if cost_ms <= 0:
        return []
    seconds = cost_ms / 1000.0
    return [
        f"{indent}_burn_until = _time.perf_counter() + {seconds!r} * _rt.COST_SCALE",
        f"{indent}while _time.perf_counter() < _burn_until:",
        f"{indent}    pass",
    ]


def _module_source(library: LibrarySpec, module: ModuleSpec) -> str:
    dotted = (
        f"{library.name}.{module.name}" if module.name else library.name
    )
    lines = [
        f'"""Auto-generated synthetic module {dotted} ({library.category})."""',
        "",
        "import time as _time",
        "",
        f"import {RUNTIME_MODULE_NAME} as _rt",
        "",
        f"_rt.module_begin({dotted!r}, {module.init_cost_ms!r}, {module.memory_kb!r})",
    ]
    burn = _burn_block(module.init_cost_ms, indent="")
    if burn:
        lines.extend(burn)
        lines.append("del _burn_until")
    for target in module.imports:
        lines.append(f"import {library.name}.{target}")
    for target in module.external_imports:
        lines.append(f"import {target}")
    for function in module.functions:
        lines.append("")
        lines.append("")
        lines.append(f"def {function.name}(*args, **kwargs):")
        lines.append(
            f'    """Synthetic function {dotted}:{function.name} '
            f'(self cost {function.self_cost_ms} ms)."""'
        )
        lines.append(f"    _rt.function_enter({dotted!r}, {function.name!r})")
        lines.extend(_burn_block(function.self_cost_ms, indent="    "))
        lines.append("    _results = []")
        for call in function.calls:
            target_module, _, target_function = call.partition(":")
            lines.append(
                f"    _results.append(_rt.resolve({target_module!r})"
                f".{target_function}())"
            )
        lines.append(f"    return ({dotted!r}, {function.name!r}, _results)")
    lines.append("")
    return "\n".join(lines)


def _module_path(library: LibrarySpec, module: ModuleSpec, root: Path) -> Path:
    base = root / library.name
    if module.name == "":
        return base / "__init__.py"
    parts = module.name.split(".")
    if library.is_package(module.name):
        return base.joinpath(*parts) / "__init__.py"
    return base.joinpath(*parts[:-1]) / f"{parts[-1]}.py"


def materialize_library(library: LibrarySpec, workspace: str | Path) -> Path:
    """Write one library's package tree under ``workspace``; returns its dir."""
    root = Path(workspace)
    for module in library.modules:
        path = _module_path(library, module, root)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_module_source(library, module))
    return root / library.name


def materialize_ecosystem(
    ecosystem: Ecosystem,
    workspace: str | Path,
    scale: float = 1.0,
    compile_bytecode: bool = True,
) -> Path:
    """Write every library plus the runtime registry; returns the workspace.

    ``scale`` becomes the default ``COST_SCALE`` baked into the runtime
    module; the ``SLIMSTART_COST_SCALE`` environment variable overrides it
    at import time.  ``compile_bytecode`` precompiles ``.pyc`` files so the
    first measured cold start is not inflated by one-off compilation cost.
    """
    if scale <= 0:
        raise SpecError(f"scale must be positive: {scale}")
    ecosystem.validate()
    root = Path(workspace)
    root.mkdir(parents=True, exist_ok=True)
    runtime_path = root / f"{RUNTIME_MODULE_NAME}.py"
    runtime_path.write_text(_RUNTIME_TEMPLATE.format(scale=repr(scale)))
    for name in ecosystem.library_names():
        materialize_library(ecosystem.library(name), root)
    if compile_bytecode:
        import compileall

        compileall.compile_dir(str(root), quiet=2, workers=0)
    return root
