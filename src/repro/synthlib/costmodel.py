"""Cost model shared by the generator and the virtual-time simulator.

The single source of truth for "how expensive is this" is the library
specification; this module turns specs into expected costs and holds the
scale knob that lets the really-executed testbed shrink costs (e.g. run a
library whose real-world import takes 900 ms in 9 ms by setting
``scale=0.01``) without changing any *ratio* the paper's evaluation reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

from repro.synthlib.spec import Ecosystem, ModuleKey

#: Environment variable read by generated code at import time.
SCALE_ENV_VAR = "SLIMSTART_COST_SCALE"


def env_scale(default: float = 1.0) -> float:
    """Cost scale taken from the environment, fallback to ``default``."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class CostModel:
    """Expected-cost calculator for an ecosystem.

    ``scale`` multiplies every CPU cost (init and function bodies); memory is
    intentionally *not* scaled, because shrinking execution time must not
    change the memory story the evaluation tells.
    """

    ecosystem: Ecosystem
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive: {self.scale}")

    def init_cost_ms(self, keys: Iterable[ModuleKey]) -> float:
        """Scaled initialization cost of loading exactly ``keys``."""
        return self.ecosystem.total_init_cost_ms(keys) * self.scale

    def memory_kb(self, keys: Iterable[ModuleKey]) -> float:
        """Memory attributed to the loaded set ``keys`` (unscaled)."""
        return self.ecosystem.total_memory_kb(keys)

    def cold_start_init_ms(
        self,
        roots: Iterable[ModuleKey],
        deferred: frozenset[ModuleKey] = frozenset(),
    ) -> float:
        """Scaled import cost of a cold start importing ``roots`` eagerly."""
        closure = self.ecosystem.import_closure(roots, deferred=deferred)
        return self.init_cost_ms(closure)

    def function_cost_ms(self, qualified: str) -> float:
        """Scaled self-cost of one function, excluding callees."""
        ref = self.ecosystem.parse_function(qualified)
        return self.ecosystem.function(ref).self_cost_ms * self.scale
