"""Catalog of stand-in libraries modeled on the paper's dependency stack.

Each factory returns a :class:`LibrarySpec` whose *structure* mirrors the
real library the paper measured: module counts and import depths follow
Table II, igraph's drawing stack carries ~37 % of its init cost (Table I),
nltk's ``sem``/``stem``/``parse``/``tag`` clusters are heavy-but-unused in
sentiment analysis (Table IV), and xmlschema is an expensive rarely-needed
dependency of the CVE scanner (Table V).  Absolute costs are defaults in
milliseconds and may be scaled at materialization time.

Names carry an ``sl`` prefix (``slnumpy``, ``sligraph``, ...) so generated
packages can never shadow real installed libraries.
"""

from __future__ import annotations

from repro.common.errors import SpecError
from repro.synthlib.builder import ClusterPlan, build_library
from repro.synthlib.spec import LibrarySpec


def igraph_like(name: str = "sligraph", seed: int = 7) -> LibrarySpec:
    """igraph stand-in: 86 modules, visualization ~37 % of init (Table I)."""
    return build_library(
        name,
        category="Graph Processing",
        total_init_cost_ms=480.0,
        total_memory_kb=30_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("core", module_count=24, init_share=0.27, depth=4),
            ClusterPlan("community", module_count=12, init_share=0.12, depth=4),
            ClusterPlan("io", module_count=10, init_share=0.07, depth=3),
            ClusterPlan("layout", module_count=8, init_share=0.06, depth=3),
            ClusterPlan("drawing", module_count=30, init_share=0.37, depth=5),
            ClusterPlan("utils", module_count=1, init_share=0.04, depth=2),
        ],
        shared_utility="utils",
    )


def nltk_like(name: str = "slnltk", seed: int = 11) -> LibrarySpec:
    """nltk stand-in with the Table IV cluster split (sem ~8.25 % of init)."""
    return build_library(
        name,
        category="Natural Language Processing",
        total_init_cost_ms=650.0,
        total_memory_kb=46_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("tokenize", module_count=18, init_share=0.13, depth=4),
            ClusterPlan("corpus", module_count=25, init_share=0.14, depth=5),
            ClusterPlan("sem", module_count=20, init_share=0.118, depth=5),
            ClusterPlan("stem", module_count=15, init_share=0.105, depth=4),
            ClusterPlan("parse", module_count=22, init_share=0.125, depth=5),
            ClusterPlan("tag", module_count=18, init_share=0.10, depth=4),
            ClusterPlan("chunk", module_count=10, init_share=0.06, depth=4),
            ClusterPlan("metrics", module_count=8, init_share=0.05, depth=3),
            ClusterPlan("data", module_count=12, init_share=0.13, depth=4),
            ClusterPlan("utils", module_count=1, init_share=0.02, depth=2),
        ],
        shared_utility="utils",
    )


def textblob_like(name: str = "sltextblob", seed: int = 13) -> LibrarySpec:
    """TextBlob stand-in; depends eagerly on the nltk stand-in."""
    return build_library(
        name,
        category="Natural Language Processing",
        total_init_cost_ms=130.0,
        total_memory_kb=9_000.0,
        seed=seed,
        root_external_imports=("slnltk",),
        clusters=[
            ClusterPlan("blob", module_count=16, init_share=0.45, depth=4),
            ClusterPlan("sentiments", module_count=12, init_share=0.30, depth=4),
            ClusterPlan("taggers", module_count=10, init_share=0.20, depth=3),
        ],
    )


def numpy_like(name: str = "slnumpy", seed: int = 17) -> LibrarySpec:
    """NumPy stand-in: 190 modules, core-heavy init."""
    return build_library(
        name,
        category="Scientific Computing",
        total_init_cost_ms=520.0,
        total_memory_kb=38_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("core", module_count=60, init_share=0.44, depth=5),
            ClusterPlan("linalg", module_count=25, init_share=0.14, depth=4),
            ClusterPlan("fft", module_count=15, init_share=0.07, depth=4),
            ClusterPlan("random", module_count=20, init_share=0.10, depth=4),
            ClusterPlan("polynomial", module_count=18, init_share=0.06, depth=4),
            ClusterPlan("ma", module_count=22, init_share=0.08, depth=4),
            ClusterPlan("lib", module_count=29, init_share=0.09, depth=5),
        ],
        shared_utility="lib",
    )


def scipy_like(name: str = "slscipy", seed: int = 19) -> LibrarySpec:
    """SciPy stand-in: deep module tree, depends on the numpy stand-in."""
    return build_library(
        name,
        category="Scientific Computing",
        total_init_cost_ms=1_150.0,
        total_memory_kb=62_000.0,
        seed=seed,
        root_external_imports=("slnumpy",),
        clusters=[
            ClusterPlan("sparse", module_count=60, init_share=0.18, depth=8),
            ClusterPlan("stats", module_count=70, init_share=0.20, depth=7),
            ClusterPlan("optimize", module_count=50, init_share=0.15, depth=7),
            ClusterPlan("integrate", module_count=30, init_share=0.08, depth=6),
            ClusterPlan("signal", module_count=45, init_share=0.12, depth=7),
            ClusterPlan("spatial", module_count=35, init_share=0.09, depth=6),
            ClusterPlan("io", module_count=25, init_share=0.06, depth=5),
            ClusterPlan("special", module_count=14, init_share=0.05, depth=5),
        ],
    )


def pandas_like(name: str = "slpandas", seed: int = 23) -> LibrarySpec:
    """pandas stand-in: 420 modules; plotting/io are workload-dependent."""
    return build_library(
        name,
        category="Machine Learning",
        total_init_cost_ms=1_400.0,
        total_memory_kb=95_000.0,
        seed=seed,
        root_external_imports=("slnumpy",),
        clusters=[
            ClusterPlan("core", module_count=120, init_share=0.30, depth=8),
            ClusterPlan("io", module_count=80, init_share=0.22, depth=7),
            ClusterPlan("tseries", module_count=60, init_share=0.14, depth=7),
            ClusterPlan("plotting", module_count=50, init_share=0.12, depth=6),
            ClusterPlan("compat", module_count=40, init_share=0.06, depth=5),
            ClusterPlan("internals", module_count=69, init_share=0.12, depth=7),
        ],
    )


def sklearn_like(
    name: str = "slsklearn",
    seed: int = 29,
    dependencies: tuple[str, ...] = ("slnumpy", "slscipy"),
) -> LibrarySpec:
    """scikit-learn stand-in; depends on numpy/scipy stand-ins by default."""
    return build_library(
        name,
        category="Machine Learning",
        total_init_cost_ms=980.0,
        total_memory_kb=55_000.0,
        seed=seed,
        root_external_imports=dependencies,
        clusters=[
            ClusterPlan("linear_model", module_count=55, init_share=0.20, depth=6),
            ClusterPlan("ensemble", module_count=50, init_share=0.18, depth=6),
            ClusterPlan("preprocessing", module_count=45, init_share=0.15, depth=5),
            ClusterPlan("model_selection", module_count=40, init_share=0.14, depth=5),
            ClusterPlan("metrics_", module_count=40, init_share=0.12, depth=5),
            ClusterPlan("datasets", module_count=35, init_share=0.10, depth=5),
            ClusterPlan("utils", module_count=34, init_share=0.08, depth=6),
        ],
        shared_utility="utils",
    )


def skimage_like(
    name: str = "slskimage",
    seed: int = 31,
    dependencies: tuple[str, ...] = ("slnumpy", "slscipy"),
) -> LibrarySpec:
    """scikit-image stand-in; depends on numpy/scipy stand-ins by default."""
    return build_library(
        name,
        category="Image Processing",
        total_init_cost_ms=720.0,
        total_memory_kb=42_000.0,
        seed=seed,
        root_external_imports=dependencies,
        clusters=[
            ClusterPlan("filters", module_count=40, init_share=0.22, depth=6),
            ClusterPlan("transform", module_count=35, init_share=0.20, depth=5),
            ClusterPlan("segmentation", module_count=30, init_share=0.16, depth=5),
            ClusterPlan("feature", module_count=35, init_share=0.16, depth=5),
            ClusterPlan("io", module_count=25, init_share=0.10, depth=4),
            ClusterPlan("morphology", module_count=34, init_share=0.12, depth=5),
        ],
    )


def xmlschema_like(name: str = "slxmlschema", seed: int = 37) -> LibrarySpec:
    """xmlschema stand-in (Table V): heavy validators, rarely needed."""
    return build_library(
        name,
        category="Security",
        total_init_cost_ms=310.0,
        total_memory_kb=21_000.0,
        seed=seed,
        root_external_imports=("slelementpath",),
        clusters=[
            ClusterPlan("validators", module_count=40, init_share=0.52, depth=5),
            ClusterPlan("converters", module_count=20, init_share=0.20, depth=4),
            ClusterPlan("documents", module_count=15, init_share=0.15, depth=4),
            ClusterPlan("schema", module_count=14, init_share=0.10, depth=4),
        ],
    )


def elementpath_like(name: str = "slelementpath", seed: int = 41) -> LibrarySpec:
    """elementpath stand-in: XPath engine pulled in by xmlschema."""
    return build_library(
        name,
        category="Security",
        total_init_cost_ms=290.0,
        total_memory_kb=18_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("xpath1", module_count=20, init_share=0.35, depth=4),
            ClusterPlan("xpath2", module_count=25, init_share=0.40, depth=4),
            ClusterPlan("datatypes", module_count=14, init_share=0.20, depth=3),
        ],
    )


def pdfminer_like(name: str = "slpdfminer", seed: int = 43) -> LibrarySpec:
    """pdfminer stand-in for OCRmyPDF."""
    return build_library(
        name,
        category="Document Processing",
        total_init_cost_ms=560.0,
        total_memory_kb=34_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("layout", module_count=30, init_share=0.24, depth=5),
            ClusterPlan("pdfparser", module_count=28, init_share=0.22, depth=5),
            ClusterPlan("converter", module_count=22, init_share=0.18, depth=4),
            ClusterPlan("cmap", module_count=24, init_share=0.20, depth=4),
            ClusterPlan("image", module_count=15, init_share=0.12, depth=4),
        ],
    )


def prophet_like(name: str = "slprophet", seed: int = 47) -> LibrarySpec:
    """Prophet stand-in for the sensor-telemetry app: big model stack."""
    return build_library(
        name,
        category="IoT Predictive Analysis",
        total_init_cost_ms=1_650.0,
        total_memory_kb=110_000.0,
        seed=seed,
        root_external_imports=("slnumpy", "slpandas"),
        clusters=[
            ClusterPlan("models", module_count=45, init_share=0.34, depth=6),
            ClusterPlan("forecaster", module_count=35, init_share=0.22, depth=5),
            ClusterPlan("diagnostics", module_count=30, init_share=0.20, depth=5),
            ClusterPlan("plot", module_count=25, init_share=0.16, depth=5),
            ClusterPlan("serialize", module_count=14, init_share=0.06, depth=4),
        ],
    )


def pkg_resources_like(name: str = "slpkgres", seed: int = 53) -> LibrarySpec:
    """pkg_resources stand-in for FaaSWorkbench's chameleon app."""
    return build_library(
        name,
        category="Package Management",
        total_init_cost_ms=260.0,
        total_memory_kb=14_000.0,
        seed=seed,
        clusters=[
            ClusterPlan("working_set", module_count=18, init_share=0.40, depth=4),
            ClusterPlan("markers", module_count=14, init_share=0.25, depth=4),
            ClusterPlan("vendor", module_count=27, init_share=0.30, depth=5),
        ],
    )


def generic_library(
    name: str,
    *,
    module_count: int,
    depth: int,
    total_init_cost_ms: float,
    total_memory_kb: float,
    seed: int = 0,
    category: str = "General",
    dependencies: tuple[str, ...] = (),
    cluster_count: int = 4,
) -> LibrarySpec:
    """Filler library with a given size/depth; used to pad app dependency
    sets to the library/module counts Table II reports per application."""
    if module_count < cluster_count + 1:
        cluster_count = max(1, module_count - 1)
    if cluster_count < 1:
        raise SpecError(f"library {name!r} needs at least 2 modules")
    nested = module_count - 1  # minus the root module
    base = nested // cluster_count
    counts = [base] * cluster_count
    for index in range(nested - base * cluster_count):
        counts[index % cluster_count] += 1
    shares = _skewed_shares(cluster_count, reserve=0.05)
    clusters = [
        ClusterPlan(
            f"part{index}",
            module_count=max(1, counts[index]),
            init_share=shares[index],
            depth=max(2 if counts[index] <= 1 else 3, depth),
        )
        for index in range(cluster_count)
    ]
    return build_library(
        name,
        category=category,
        total_init_cost_ms=total_init_cost_ms,
        total_memory_kb=total_memory_kb,
        seed=seed,
        root_external_imports=dependencies,
        clusters=clusters,
    )


def _skewed_shares(count: int, reserve: float) -> list[float]:
    """Mildly skewed init shares summing to ``1 - reserve``."""
    raw = [1.0 / (rank + 1) for rank in range(count)]
    total = sum(raw)
    return [(value / total) * (1.0 - reserve) for value in raw]


#: Factories for the flagship stand-ins, keyed by generated library name.
FLAGSHIP_FACTORIES = {
    "sligraph": igraph_like,
    "slnltk": nltk_like,
    "sltextblob": textblob_like,
    "slnumpy": numpy_like,
    "slscipy": scipy_like,
    "slpandas": pandas_like,
    "slsklearn": sklearn_like,
    "slskimage": skimage_like,
    "slxmlschema": xmlschema_like,
    "slelementpath": elementpath_like,
    "slpdfminer": pdfminer_like,
    "slprophet": prophet_like,
    "slpkgres": pkg_resources_like,
}
