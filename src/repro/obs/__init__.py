"""Run observability: append-only journals, trace spans, phase profiling.

``repro.obs`` is the telemetry layer the streaming replay feeds: a
durable JSONL journal of window stats / scaling decisions / sampled
request spans (:mod:`repro.obs.journal`), a stream-scanning query
surface behind ``slimstart obs`` (:mod:`repro.obs.query`), and a
wall-clock phase profiler for the replay hot path
(:mod:`repro.obs.profile`).  The platforms know it only as an opaque
sink threaded through ``stream_begin`` — with no sink installed the
event loop runs the exact pre-observability code paths.
"""

from repro.obs.journal import (
    JOURNAL_FORMAT,
    JournalWriter,
    merge_journals,
    shard_journal_path,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.query import query_rows, read_rows, summarize_journal, tail_rows

__all__ = [
    "JOURNAL_FORMAT",
    "JournalWriter",
    "PhaseProfiler",
    "merge_journals",
    "query_rows",
    "read_rows",
    "shard_journal_path",
    "summarize_journal",
    "tail_rows",
]
