"""Wall-clock phase profiling for replay runs.

The 1M-req/s replay push needs to know where wall-clock actually goes:
``compile_trace`` (the arrival-stream generator), the event loop itself,
shard merging, or checkpoint writes.  :class:`PhaseProfiler` is a tiny
accumulator the replay drivers thread a few timing hooks through —
``slimstart replay --profile`` prints its report, and the throughput
benchmark embeds it in ``BENCH_replay_throughput.json`` so the phase
breakdown is tracked per commit.

Stream compilation and the event loop interleave (the loop pulls
arrivals lazily), so the two are separated by timing the *generator*:
:meth:`wrap_iter` measures the time spent inside ``next()`` — that is
compile time by definition — and the driver attributes the remainder of
the total to the loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates named wall-clock phases for one replay run."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of wall-clock to phase ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    @contextmanager
    def phase(self, name: str):
        """Time a ``with`` block as phase ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def wrap_iter(self, items: Iterable, name: str) -> Iterator:
        """Pass ``items`` through, crediting time spent *producing* them.

        Only the time inside the underlying iterator's ``next()`` counts
        — for a lazily-compiled arrival stream that is exactly the
        compile phase, no matter how the consumer interleaves with it.
        """
        iterator = iter(items)
        while True:
            start = time.perf_counter()
            try:
                item = next(iterator)
            except StopIteration:
                self.add(name, time.perf_counter() - start)
                return
            self.add(name, time.perf_counter() - start)
            yield item

    def probe(self, name: str, fn):
        """Wrap ``fn`` so every call's wall-clock accrues to ``name``.

        The sub-phase analogue of :meth:`wrap_iter` for plain callables:
        the cluster installs probes over its event-loop delegates
        (heap drains, scale decisions) so the opaque ``event-loop``
        number decomposes into where the time actually goes (see
        :meth:`repro.faas.cluster.ClusterPlatform.profile_loop`).  The
        wrapper is deliberately minimal — two ``perf_counter`` reads and
        one dict update per call — because it sits on the replay hot
        path while profiling is on.
        """
        seconds = self._seconds
        perf_counter = time.perf_counter

        def probed(*args):
            start = perf_counter()
            try:
                return fn(*args)
            finally:
                elapsed = perf_counter() - start
                seconds[name] = seconds.get(name, 0.0) + elapsed

        return probed

    def seconds(self, name: str) -> float:
        """Total wall-clock credited to ``name`` so far (0.0 if never)."""
        return self._seconds.get(name, 0.0)

    def derive(self, name: str, total: str, *parts: str) -> None:
        """Credit ``total`` minus ``parts`` to ``name`` (floored at 0).

        The event loop is measured this way: it is whatever of the run's
        total was not spent compiling the stream or writing checkpoints.
        """
        remainder = self.seconds(total) - sum(self.seconds(p) for p in parts)
        self._seconds[name] = max(0.0, remainder)

    def report(self, requests: int | None = None) -> dict:
        """The phase table: seconds per phase, plus req/s when known."""
        phases = {}
        for name in sorted(self._seconds):
            entry = {"seconds": round(self._seconds[name], 4)}
            if requests and self._seconds[name] > 0:
                entry["requests_per_s"] = round(
                    requests / self._seconds[name], 1
                )
            phases[name] = entry
        return phases
