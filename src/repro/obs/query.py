"""Stream-scanning queries over run journals — O(1) memory, any size.

The read side of :mod:`repro.obs.journal`: every function here consumes
the journal as a line stream and retains only fixed-size state (a
running aggregate, or a bounded tail deque), so querying a multi-week
soak run's journal costs the same memory as querying a toy one.
``slimstart obs query|tail|summarize`` are thin CLI wrappers over these.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterator

from repro.common.errors import WorkloadError
from repro.metrics.windows import population_rate
from repro.obs.journal import JOURNAL_FORMAT, row_time

__all__ = ["query_rows", "read_rows", "summarize_journal", "tail_rows"]


def read_rows(path: str | Path, control: bool = False) -> Iterator[dict]:
    """Yield a journal's rows one at a time (header validated, skipped).

    ``control`` includes the ``boundary``/``end`` bookkeeping rows, which
    queries normally ignore.  A torn trailing line (journaled run killed
    mid-flush) ends the stream instead of raising — everything before it
    is durable by construction.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"journal not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                if index == 0:
                    raise WorkloadError(f"{path} is not a JSONL run journal")
                return  # torn tail from a mid-flush kill
            if index == 0:
                if row.get("kind") != "journal":
                    raise WorkloadError(
                        f"{path} is not a run journal (first row kind "
                        f"{row.get('kind')!r}, expected 'journal')"
                    )
                if row.get("format") != JOURNAL_FORMAT:
                    raise WorkloadError(
                        f"unsupported journal format {row.get('format')!r} "
                        f"in {path} (this build reads format {JOURNAL_FORMAT})"
                    )
                continue
            if not control and row.get("kind") in ("boundary", "end"):
                continue
            yield row


def query_rows(
    path: str | Path,
    kind: str | None = None,
    app: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> Iterator[dict]:
    """Filtered journal rows, streamed.

    Filters compose conjunctively; each is independent, so
    ``query(A and B)`` is always a subset of ``query(A)`` (the property
    the test suite pins).  ``since``/``until`` bound the row's
    replay-clock time (inclusive / exclusive); rows without a time (none
    today) never match a time filter.
    """
    for row in read_rows(path):
        if kind is not None and row.get("kind") != kind:
            continue
        if app is not None and row.get("app") != app:
            continue
        if since is not None or until is not None:
            at = row_time(row)
            if at is None:
                continue
            if since is not None and at < since:
                continue
            if until is not None and at >= until:
                continue
        yield row


def tail_rows(path: str | Path, count: int) -> list[dict]:
    """The journal's last ``count`` data rows (O(count) memory)."""
    return list(deque(read_rows(path), maxlen=max(0, count)))


def summarize_journal(path: str | Path) -> dict:
    """One pass over the journal → run- and per-app totals.

    Window *delta* rows are summed here (an app active across several
    flushes writes several rows per window — see the journal's flush
    protocol), which is what makes the totals identical between a
    straight run and a killed-and-resumed one.
    """
    per_app: dict[str, list] = {}
    counts = {"scale": 0, "span": 0, "shed_events": 0, "provisions": 0}
    windows: set[int] = set()
    gb_seconds = 0.0
    booted = 0
    start: float | None = None
    end: float | None = None
    for row in read_rows(path):
        kind = row["kind"]
        at = row_time(row)
        if at is not None:
            start = at if start is None else min(start, at)
            end = at if end is None else max(end, at)
        if kind == "window":
            windows.add(row["window"])
            tally = per_app.get(row["app"])
            if tally is None:
                tally = per_app[row["app"]] = [0, 0, 0, 0, 0.0]
            tally[0] += row["arrivals"]
            tally[1] += row["completed"]
            tally[2] += row["shed"]
            tally[3] += row["cold_starts"]
            tally[4] += row["queue_ms_sum"]
        elif kind == "scale":
            counts["scale"] += 1
            booted += row.get("booted", 0)
        elif kind == "span":
            counts["span"] += 1
        elif kind == "shed":
            counts["shed_events"] += 1
        elif kind == "provision":
            counts["provisions"] += 1
            gb_seconds += (
                (row["end_s"] - row["start_s"]) * row["memory_mb"] / 1024.0
            )
    apps = {}
    for name in sorted(per_app):
        arrivals, completed, shed, cold, queue_ms = per_app[name]
        undefined = arrivals > 0 and completed == 0
        apps[name] = {
            "arrivals": arrivals,
            "completed": completed,
            "shed": shed,
            "cold_starts": cold,
            "cold_start_rate": population_rate(cold, completed, undefined),
            "queue_mean_ms": population_rate(queue_ms, completed, undefined),
        }
    return {
        "apps": apps,
        "windows": len(windows),
        "arrivals": sum(a["arrivals"] for a in apps.values()),
        "completed": sum(a["completed"] for a in apps.values()),
        "shed": sum(a["shed"] for a in apps.values()),
        "cold_starts": sum(a["cold_starts"] for a in apps.values()),
        "scaling_decisions": counts["scale"],
        "containers_booted": booted,
        "spans": counts["span"],
        "shed_events": counts["shed_events"],
        "provisions": counts["provisions"],
        "gb_seconds": round(gb_seconds, 6),
        "start_s": start,
        "end_s": end,
    }
