"""Append-only JSONL run journal: the durable telemetry behind a replay.

A streamed replay deliberately forgets — the accumulator folds millions
of requests into O(windows) state and :meth:`finalize` returns one
summary object.  The journal is the part that *remembers*: an
append-only JSONL file written at window boundaries recording per-app
window rows, shed/provision (retirement) events, structured
scaling-decision records, and (optionally) sampled per-request trace
spans.  ``slimstart obs`` (see :mod:`repro.obs.query`) stream-scans the
result at O(1) memory.

Design constraints, in order:

* **Determinism.**  A journaled replay must produce byte-identical
  journals whether or not it was killed and resumed, and a sharded
  journaled replay must merge to the same rows as a 1-worker one.  All
  buffering is flushed at deterministic stream positions (the window
  boundaries the checkpoint protocol already uses), window rows are
  *delta* rows (counts since the previous flush, summed by the query
  surface), and span sampling keys off the platform's submission token —
  the stream position, which the checkpoint restores exactly.
* **Durability.**  Each flush ends with ``flush()`` + ``fsync`` and a
  ``boundary`` marker row carrying the arrivals-consumed count, written
  *before* the matching checkpoint (see
  :func:`repro.faas.snapshot.run_stream_checkpointed`) — so on resume
  the journal's marker for the restored boundary is always on disk and
  :meth:`JournalWriter.resume` can truncate everything after it.  A torn
  trailing line from a mid-flush kill is detected and discarded by the
  same scan.
* **Zero cost when off.**  No journal code runs inside the event loop's
  fast paths (``_on_arrival`` / ``_on_ready``); the platforms consult the
  sink only through pre-built closures installed at ``stream_begin``
  time, identical to the non-journaled ones when no sink is given.

Row kinds (every row is one JSON object per line, with a ``kind`` key):

``journal``
    Header (first line): format, window size, fingerprint, sampling rate.
``window``
    Per-(window, app) **delta** counters flushed at a boundary:
    arrivals/completed/shed/cold_starts plus the exact queue-wait sum and
    the derived ``cold_start_rate`` / ``queue_mean_ms`` (via
    :func:`repro.metrics.windows.population_rate`).  An app active across
    a boundary yields several delta rows for one window; ``obs
    summarize`` sums them.
``scale``
    One scaling decision that booted (or wanted to boot) containers —
    the policy's own :meth:`~repro.faas.autoscale.ScalingPolicy.decision`
    record (policy name, queued/in-flight/live, want, booted, plus
    policy-specific fields such as a forecast value or panic rates).
``shed`` / ``provision``
    Individual rejection events and container provisioned lifetimes
    (provision rows double as retirement records: they are emitted when
    the container retires or the run flushes).
``span``
    One sampled request trace: trace id (= stream position), app, entry,
    and the phase breakdown (queue wait, cold boot, execute, cross-region
    hop).
``boundary`` / ``end``
    Control rows: flush markers (window boundary + consumed count) and
    the final end-of-run marker.  Dropped by queries and merges.
"""

from __future__ import annotations

import heapq
import json
import math
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.common.errors import CheckpointError
from repro.metrics.windows import population_rate

#: Bump when a row's schema changes incompatibly.
JOURNAL_FORMAT = 1

__all__ = [
    "JOURNAL_FORMAT",
    "JournalWriter",
    "merge_journals",
    "shard_journal_path",
]


def shard_journal_path(path: str | Path, shard: int, shards: int) -> Path:
    """Where shard ``shard`` of ``shards`` writes its private journal.

    Mirrors :func:`repro.faas.snapshot.shard_checkpoint_path` so a
    journaled checkpointed sharded run keeps all its scratch files next
    to the final artifacts.
    """
    path = Path(path)
    return path.with_name(f"{path.name}.shard-{shard}-of-{shards}.jsonl")


class JournalWriter:
    """Writes one run's telemetry to an append-only JSONL file.

    Doubles as the ``ObsSink`` the platforms feed: the ``shed`` /
    ``provision`` / ``scaling_decision`` / ``span`` methods accumulate in
    memory and everything is written (and fsynced) at window boundaries.
    Flushing is *driver-screened*: the stream loop compares each arrival
    time against :attr:`next_flush_s` (one float compare per request) and
    calls :meth:`flush_boundary` only at window edges — the checkpoint
    driver makes the same call just *before* writing a checkpoint, so the
    journal is never behind the checkpoint.

    Lifecycle: construct, then :meth:`begin` (fresh file) or
    :meth:`resume` (truncate to a restored checkpoint's boundary), feed,
    then :meth:`close` (flush the tail and write the ``end`` row) — or
    :meth:`abort` on failure, which closes without flushing so the file
    stays exactly at its last durable boundary.
    """

    def __init__(
        self,
        path: str | Path,
        window_s: float,
        fingerprint: Any = None,
        trace_sample: float = 0.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"journal window must be positive: {window_s}")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(f"trace sample rate out of [0, 1]: {trace_sample}")
        self.path = Path(path)
        self.window_s = float(window_s)
        self.fingerprint = fingerprint
        self.trace_sample = float(trace_sample)
        #: Every ``interval``-th submission token gets a span (0 = none).
        #: The *caller* applies this modulo (see ``_StreamSinks``) so a
        #: non-sampled request costs one integer test, not a call.
        self.span_interval = (
            max(1, round(1.0 / trace_sample)) if trace_sample > 0.0 else 0
        )
        #: The arrival time at which the stream driver must call
        #: :meth:`flush_boundary` next.  The driver screens each arrival
        #: with one float compare (``at >= next_flush_s``) — the journal's
        #: only per-request footprint.
        self.next_flush_s = -math.inf
        self._file = None
        self._boundary: int | None = None
        self._consumed = 0
        #: Buffered event rows (scale/shed/provision/span) in emission
        #: order, written verbatim at the next flush.
        self._events: list[dict] = []
        #: The run's window accumulator, installed by :meth:`attach` at
        #: stream-begin time.  Window delta rows are *derived* from its
        #: cumulative per-source counters at each flush — the journal
        #: itself runs no code per completion.
        self._accumulator = None
        #: Cumulative ``(completed, shed, cold, queue_ms_sum)`` per
        #: ``(window_index, app)`` as of the last flush; the next flush
        #: emits the difference.  Seeded by :meth:`attach` from the
        #: accumulator's current state, which on a resumed run is exactly
        #: the restored checkpoint's counters — so resumed delta rows
        #: match the uninterrupted run's byte for byte.
        self._flushed: dict[tuple[int, str], tuple] = {}

    # -- lifecycle ---------------------------------------------------------

    def _header(self) -> dict:
        return {
            "kind": "journal",
            "format": JOURNAL_FORMAT,
            "window_s": self.window_s,
            "fingerprint": self.fingerprint,
            "trace_sample": self.trace_sample,
        }

    def begin(self) -> "JournalWriter":
        """Open a fresh journal (truncating any previous file)."""
        self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(json.dumps(self._header(), sort_keys=True) + "\n")
        self._file.flush()
        self.next_flush_s = -math.inf
        return self

    def resume(self, consumed: int) -> "JournalWriter":
        """Re-open after a restored checkpoint that had fed ``consumed``.

        Scans the existing journal, validates its header against this
        writer's configuration, finds the ``boundary`` marker whose
        consumed count matches the checkpoint's, and truncates everything
        after it — rows for arrivals the resumed run will replay again.
        A torn trailing line (mid-flush kill) simply ends the scan.
        ``consumed == 0`` (or no journal on disk) starts fresh.
        """
        if consumed == 0 or not self.path.exists():
            return self.begin()
        marker_end: int | None = None
        marker_row: dict | None = None
        offset = 0
        with open(self.path, "rb") as handle:
            for index, line in enumerate(handle):
                offset += len(line)
                if not line.endswith(b"\n"):
                    break  # torn tail from a mid-flush kill
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    break
                if index == 0:
                    self._check_header(row)
                    continue
                if row.get("kind") == "boundary" and row.get("consumed") == consumed:
                    marker_end = offset
                    marker_row = row
                    break
        if marker_end is None:
            raise CheckpointError(
                f"journal {self.path} has no boundary marker for "
                f"consumed={consumed}; it does not belong to the checkpoint "
                f"being resumed"
            )
        self._file = open(self.path, "r+", encoding="utf-8")
        self._file.truncate(marker_end)
        self._file.seek(0, os.SEEK_END)
        self._boundary = int(marker_row["boundary"])
        self._consumed = consumed
        self.next_flush_s = (self._boundary + 1) * self.window_s
        return self

    def _check_header(self, row: dict) -> None:
        if row.get("kind") != "journal":
            raise CheckpointError(
                f"{self.path} is not a run journal (first row kind "
                f"{row.get('kind')!r}, expected 'journal')"
            )
        if row.get("format") != JOURNAL_FORMAT:
            raise CheckpointError(
                f"unsupported journal format {row.get('format')!r} in "
                f"{self.path} (this build writes format {JOURNAL_FORMAT})"
            )
        for key, expected in (
            ("window_s", self.window_s),
            ("fingerprint", self.fingerprint),
            ("trace_sample", self.trace_sample),
        ):
            if row.get(key) != expected:
                raise CheckpointError(
                    f"journal {self.path} was written by a "
                    f"differently-configured run: {key} is {row.get(key)!r}, "
                    f"this run uses {expected!r}"
                )

    def close(self) -> None:
        """Flush the tail (post-boundary deltas) and seal the journal."""
        if self._file is None:
            return
        self._write_pending()
        self._write_row({"kind": "end"})
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = None

    def abort(self) -> None:
        """Close without flushing: the file stays at its last boundary."""
        if self._file is None:
            return
        self._file.close()
        self._file = None
        self._events.clear()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- flush protocol ----------------------------------------------------

    def attach(self, accumulator) -> None:
        """Install the run's accumulator as the window-row source.

        Called by the platforms' sink construction at stream-begin time,
        right after :meth:`~repro.metrics.windows.WindowAccumulator.\
enable_source_counts` switched the accumulator over to per-source
        counting.  The accumulator's current cumulative counters are
        snapshotted as the already-flushed base: zero for a fresh run,
        the restored checkpoint's exact state for a resumed one — either
        way the next flush emits only what this run's stream added, and
        resumed delta rows match the uninterrupted run's byte for byte.
        """
        self._accumulator = accumulator
        self._flushed = {
            (index, app): (tally[0], tally[1], tally[2], tally[3])
            for index, counts in accumulator.source_counters()
            for app, tally in counts.items()
        }

    def flush_boundary(self, at_s: float, consumed: int) -> None:
        """Advance to the window holding arrival time ``at_s``, flushing.

        The stream driver calls this whenever an arrival passes the
        ``next_flush_s`` screen, *before* feeding it, with ``consumed``
        the count of arrivals already fed — the same position the
        checkpoint protocol records, so the boundary marker written here
        lands just ahead of the matching checkpoint.  The first call of a
        run only anchors the boundary; later calls whose window index
        advanced flush the pending block.  Either way ``next_flush_s``
        moves to the next window edge, re-arming the screen.
        """
        self._consumed = consumed
        index = int(at_s // self.window_s)
        if self._boundary is None:
            self._boundary = index
        elif index > self._boundary:
            self._flush(index)
        self.next_flush_s = (index + 1) * self.window_s

    def _flush(self, new_boundary: int) -> None:
        self._write_pending()
        self._write_row(
            {
                "kind": "boundary",
                "boundary": new_boundary,
                "consumed": self._consumed,
            }
        )
        self._file.flush()
        os.fsync(self._file.fileno())
        self._boundary = new_boundary

    def _write_pending(self) -> None:
        for row in self._events:
            self._write_row(row)
        self._events.clear()
        acc = self._accumulator
        if acc is None:
            return
        flushed = self._flushed
        for index, counts in acc.source_counters():
            for app in sorted(counts):
                tally = counts[app]
                cur = (tally[0], tally[1], tally[2], tally[3])
                key = (index, app)
                prev = flushed.get(key)
                if prev == cur:
                    continue
                if prev is None:
                    completed, shed, cold, queue_ms = cur
                else:
                    completed = cur[0] - prev[0]
                    shed = cur[1] - prev[1]
                    cold = cur[2] - prev[2]
                    queue_ms = cur[3] - prev[3]
                flushed[key] = cur
                undefined = completed == 0
                self._write_row(
                    {
                        "kind": "window",
                        "window": index,
                        "start_s": index * self.window_s,
                        "app": app,
                        "arrivals": completed + shed,
                        "completed": completed,
                        "shed": shed,
                        "cold_starts": cold,
                        "queue_ms_sum": queue_ms,
                        "cold_start_rate": population_rate(
                            cold, completed, undefined
                        ),
                        "queue_mean_ms": population_rate(
                            queue_ms, completed, undefined
                        ),
                    }
                )

    def _write_row(self, row: dict) -> None:
        self._file.write(json.dumps(row, sort_keys=True) + "\n")

    # -- ObsSink surface (fed by the platforms) ----------------------------
    #
    # There is deliberately no per-arrival or per-completion method: the
    # stream drivers screen arrivals against ``next_flush_s`` themselves
    # and only call :meth:`flush_boundary` at window edges, and window
    # rows are derived at flush time by diffing the accumulator's
    # cumulative per-source counters (see :meth:`attach`) — a journaled
    # completion runs the exact same code a plain one does.

    def shed(self, at_s: float, app: str) -> None:
        """One rejected request's event row.

        The per-app window tally comes from the accumulator's counted
        shed path; this only records the individual event.
        """
        self._events.append({"kind": "shed", "at_s": at_s, "app": app})

    def provision(
        self, start_s: float, app: str, end_s: float, memory_mb: float
    ) -> None:
        """One container's provisioned lifetime (emitted at retirement)."""
        self._events.append(
            {
                "kind": "provision",
                "app": app,
                "start_s": start_s,
                "end_s": end_s,
                "memory_mb": memory_mb,
            }
        )

    def scaling_decision(self, at_s: float, app: str, record: dict) -> None:
        """One policy decision (see ``ScalingPolicy.decision``)."""
        row = {"kind": "scale", "at_s": at_s, "app": app}
        row.update(record)
        self._events.append(row)

    def samples_spans(self) -> bool:
        """Whether any span will ever be recorded (installs the hook)."""
        return self.span_interval > 0

    def span(
        self,
        token: int,
        app: str,
        entry: str,
        arrival_s: float,
        queue_ms: float,
        cold: bool,
        cold_boot_ms: float,
        exec_ms: float,
        hop_ms: float,
    ) -> None:
        """One sampled request's phase breakdown.

        The caller has already applied the ``span_interval`` modulo to
        ``token`` — the platform's submission counter, i.e. the stream
        position, restored exactly by the checkpoint protocol — so the
        sampled set is identical across kill/resume.
        """
        self._events.append(
            {
                "kind": "span",
                "trace_id": token,
                "app": app,
                "entry": entry,
                "arrival_s": arrival_s,
                "cold": cold,
                "queue_ms": queue_ms,
                "cold_boot_ms": cold_boot_ms,
                "execute_ms": exec_ms,
                "hop_ms": hop_ms,
            }
        )


# -- merging -----------------------------------------------------------------

#: Each data row's position on the replay clock, for the time-ordered merge.
_TIME_KEYS = {
    "window": "start_s",
    "scale": "at_s",
    "shed": "at_s",
    "provision": "start_s",
    "span": "arrival_s",
}


def row_time(row: dict) -> float | None:
    """A data row's replay-clock time; ``None`` for control rows."""
    key = _TIME_KEYS.get(row.get("kind"))
    return None if key is None else row[key]


def _shard_blocks(
    path: Path, shard: int
) -> Iterator[tuple[float, int, int, dict]]:
    """Yield merge keys + rows for one shard journal, block by block.

    A shard journal is a sequence of *flush blocks* — the rows written
    between consecutive ``boundary`` markers, each block belonging to the
    marker that follows it — and block boundaries are strictly
    increasing, so keying every row by ``(block_boundary, shard, seq)``
    gives :func:`heapq.merge` the sorted inputs it requires (rows
    *within* a block are in emission order, not time order: a provision
    row carries a ``start_s`` long before the retirement that emitted
    it).  The tail block sealed by :meth:`JournalWriter.close` sorts
    after every marked block.  Control rows are dropped; the header is
    validated.
    """
    pending: list[tuple[int, dict]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for seq, line in enumerate(handle):
            row = json.loads(line)
            if seq == 0:
                if row.get("kind") != "journal" or row.get("format") != JOURNAL_FORMAT:
                    raise CheckpointError(
                        f"{path} is not a format-{JOURNAL_FORMAT} run journal "
                        f"(kind {row.get('kind')!r}, format {row.get('format')!r})"
                    )
                continue
            kind = row.get("kind")
            if kind == "boundary":
                block = float(row["boundary"])
                for item_seq, item in pending:
                    yield (block, shard, item_seq, item)
                pending.clear()
            elif kind == "end":
                for item_seq, item in pending:
                    yield (math.inf, shard, item_seq, item)
                pending.clear()
            else:
                pending.append((seq, row))
    for item_seq, item in pending:  # no end marker: aborted tail
        yield (math.inf, shard, item_seq, item)


def merge_journals(
    shard_paths: Iterable[str | Path],
    out_path: str | Path,
    window_s: float,
    fingerprint: Any = None,
    trace_sample: float = 0.0,
) -> Path:
    """Merge per-shard journals into one window-ordered run journal.

    The journal analogue of :meth:`WindowedSummary.merge`: flush blocks
    from all shards interleave by their window boundary (ties broken by
    shard index, rows within a block staying in emission order — all
    deterministic), per-shard control markers are dropped, and a fresh
    header describing the *merged* run is written first.  Merging the
    per-shard journals of a killed-and-resumed run therefore reproduces
    the uninterrupted run's merged journal row for row — the per-shard
    files are byte-identical, and the merge is a pure function of them.
    Streaming block by block: peak memory is O(one window's events per
    shard), never O(journal).
    """
    out_path = Path(out_path)
    header = {
        "kind": "journal",
        "format": JOURNAL_FORMAT,
        "window_s": float(window_s),
        "fingerprint": fingerprint,
        "trace_sample": float(trace_sample),
    }
    streams = [
        _shard_blocks(Path(path), shard)
        for shard, path in enumerate(shard_paths)
    ]
    with open(out_path, "w", encoding="utf-8") as out:
        out.write(json.dumps(header, sort_keys=True) + "\n")
        for _, _, _, row in heapq.merge(*streams):
            out.write(json.dumps(row, sort_keys=True) + "\n")
        out.flush()
        os.fsync(out.fileno())
    return out_path
