"""SlimStart reproduction: profile-guided serverless cold-start optimization.

Reproduces "Efficient Serverless Cold Start: Reducing Library Loading
Overhead by Profile-guided Optimization" (ICDCS 2025).  Public surface:

* :class:`repro.core.pipeline.SlimStart` — the tool (profile → analyze →
  optimize → redeploy) for both back ends.
* :mod:`repro.faas` — the local FaaS testbed (real execution + simulator).
* :mod:`repro.synthlib` — the synthetic library ecosystem.
* :mod:`repro.apps` — the 22-application evaluation suite.
* :mod:`repro.staticbase` — the FaaSLight static-analysis baseline.
* :mod:`repro.workloads` — popularity mixes, arrivals, production traces.
"""

from repro.plan import DeferralPlan

__version__ = "1.0.0"

__all__ = ["DeferralPlan", "__version__"]
