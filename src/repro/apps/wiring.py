"""Cluster wiring helpers: expand usage classes into entries and costs."""

from __future__ import annotations

from repro.common.errors import SpecError
from repro.synthlib.spec import Ecosystem, FunctionRef


def expand_cluster_refs(ecosystem: Ecosystem, refs: tuple[str, ...]) -> list[str]:
    """Expand usage refs into cluster-run calls.

    ``"lib"`` means every top-level cluster of the library;
    ``"lib.cluster"`` means that one cluster.  The result is a list of
    qualified function references (``lib.cluster:run``).
    """
    calls: list[str] = []
    for ref in refs:
        library_name, _, cluster = ref.partition(".")
        library = ecosystem.library(library_name)
        if cluster:
            if not library.has_module(cluster):
                raise SpecError(f"{library_name!r} has no cluster {cluster!r}")
            calls.append(f"{library_name}.{cluster}:run")
        else:
            for child in library.children(""):
                calls.append(f"{library_name}.{child}:run")
    return list(dict.fromkeys(calls))


def entry_exec_ms(ecosystem: Ecosystem, calls: tuple[str, ...]) -> float:
    """Total library self-time one entry spends per invocation (unscaled).

    Walks the specification call graph exactly like the simulator's entry
    compiler, so handler self-time calibration can subtract the library
    work an entry performs.
    """
    total = 0.0
    visited_stack: set[str] = set()

    def walk(ref: FunctionRef) -> float:
        if ref.qualified in visited_stack:
            return 0.0
        visited_stack.add(ref.qualified)
        cost = ecosystem.function(ref).self_cost_ms
        for target in ecosystem.call_targets(ref):
            cost += walk(target)
        visited_stack.discard(ref.qualified)
        return cost

    for call in calls:
        total += walk(ecosystem.parse_function(call))
    return total


def subtree_init_ms(ecosystem: Ecosystem, ref: str) -> float:
    """Init cost of a usage ref's subtree (whole library or one cluster)."""
    library_name, _, cluster = ref.partition(".")
    library = ecosystem.library(library_name)
    if cluster:
        return library.subtree_init_cost_ms(cluster)
    return library.total_init_cost_ms
