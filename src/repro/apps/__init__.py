"""The 22-application benchmark suite of the paper's evaluation.

Applications come from four groups — RainbowCake, FaaSLight,
FaaSWorkbench, and four real-world applications — each defined as an
:class:`~repro.apps.model.BenchmarkApp`: a synthetic-library ecosystem
whose module counts match Table II, entry points wired to library clusters,
and a workload mix that reproduces the paper's workload-dependent usage
(hot / rarely-invoked / never-invoked / statically-orphaned clusters).
"""

from repro.apps.model import BenchmarkApp, instantiate
from repro.apps.catalog import APP_DEFINITIONS, AppDefinition, app_by_key, benchmark_apps

__all__ = [
    "BenchmarkApp",
    "instantiate",
    "APP_DEFINITIONS",
    "AppDefinition",
    "app_by_key",
    "benchmark_apps",
]
