"""Benchmark application model and instantiation.

An :class:`AppDefinition` declares an application the way the paper's
evaluation implicitly characterizes one:

* which libraries it bundles (module counts match Table II),
* which library feature clusters its entry points reach, split by
  workload class —

  - ``hot`` / ``hot_secondary``: reached by the dominant entry points,
  - ``rare``: reached by entry points invoked in ~1 % of requests
    (workload-dependent; dynamic profiling sees them below the 2 %
    threshold, static analysis considers them fully needed),
  - ``never``: reached only by entry points the typical workload does not
    trigger at all (statically reachable, dynamically dead), and
  - everything else loaded but unlisted is *orphaned* — not reachable from
    any entry point, i.e. the only class static analysis can also remove.

:func:`instantiate` turns a definition into a runnable
:class:`BenchmarkApp`: ecosystem, entry behaviours, workload mix, handler
source, and a virtual-time app config — calibrating the handler's own
execution time so the app's init:e2e proportions land near the paper's
(Table II's initialization vs. end-to-end speedup pair fixes that ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.apps.codegen import generate_handler
from repro.apps.wiring import entry_exec_ms, expand_cluster_refs
from repro.common.errors import SpecError
from repro.faas.deployment import build_workspace
from repro.faas.local import FunctionDeployment
from repro.faas.sim import EntryBehavior, SimAppConfig, SimPlatformConfig
from repro.synthlib.spec import Ecosystem, LibrarySpec
from repro.workloads.popularity import EntryMix

#: Platform constants used by the evaluation benches (kept small: the
#: paper's init-dominated e2e ratios require modest platform overhead).
BENCH_COLD_PLATFORM_MS = 5.0
BENCH_RUNTIME_INIT_MS = 30.0
BENCH_WARM_PLATFORM_MS = 1.0


def bench_platform_config(
    record_traces: bool = True, jitter_sigma: float = 0.05
) -> SimPlatformConfig:
    return SimPlatformConfig(
        cold_platform_ms=BENCH_COLD_PLATFORM_MS,
        runtime_init_ms=BENCH_RUNTIME_INIT_MS,
        warm_platform_ms=BENCH_WARM_PLATFORM_MS,
        record_traces=record_traces,
        jitter_sigma=jitter_sigma,
    )


@dataclass(frozen=True)
class PaperNumbers:
    """Table II's reported values for one application (the targets)."""

    lib_count: int
    module_count: int
    avg_depth: float
    init_speedup: float
    e2e_speedup: float
    p99_init_speedup: float
    p99_e2e_speedup: float


@dataclass(frozen=True)
class AppDefinition:
    """Declarative description of one benchmark application."""

    key: str  # paper shorthand, e.g. "R-DV"
    name: str  # python-identifier-friendly app name
    suite: str  # RainbowCake / FaaSLight / FaaSWorkbench / RealWorld
    category: str
    description: str
    library_builders: tuple[Callable[[], LibrarySpec], ...]
    hot: tuple[str, ...] = ()
    hot_secondary: tuple[str, ...] = ()
    rare: tuple[str, ...] = ()
    never: tuple[str, ...] = ()
    orphan_imports: tuple[str, ...] = ()  # libraries imported, called by nothing
    paper: PaperNumbers | None = None
    exec_budget_ms: float | None = None  # explicit main-entry exec time
    rare_popularity: float = 0.01
    secondary_popularity: float = 0.13

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"app name must be an identifier: {self.name!r}")
        if not self.hot:
            raise SpecError(f"app {self.key}: at least one hot ref required")


@dataclass
class BenchmarkApp:
    """A fully-wired application ready for simulation or real deployment."""

    definition: AppDefinition
    ecosystem: Ecosystem
    handler_imports: tuple[str, ...]
    entries: tuple[EntryBehavior, ...]
    mix: EntryMix
    expected_removable_init_ms: float
    expected_total_init_ms: float

    @property
    def key(self) -> str:
        return self.definition.key

    @property
    def name(self) -> str:
        return self.definition.name

    # -- program information (Table II columns) -----------------------------

    @property
    def library_count(self) -> int:
        return len(self.loaded_libraries())

    @property
    def module_count(self) -> int:
        return sum(
            self.ecosystem.library(name).module_count
            for name in self.loaded_libraries()
        )

    @property
    def average_depth(self) -> float:
        names = self.loaded_libraries()
        modules = [
            module
            for name in names
            for module in self.ecosystem.library(name).modules
        ]
        return sum(module.depth for module in modules) / len(modules)

    def loaded_libraries(self) -> list[str]:
        """Libraries in the unoptimized import closure (incl. transitive)."""
        roots = [self.ecosystem.parse_module(d) for d in self.handler_imports]
        closure = self.ecosystem.import_closure(roots)
        return sorted({key.library for key in closure})

    @property
    def expected_init_speedup(self) -> float:
        remaining = self.expected_total_init_ms - self.expected_removable_init_ms
        if remaining <= 0:
            return float("inf")
        return self.expected_total_init_ms / remaining

    # -- materialization -------------------------------------------------------

    def sim_config(self, cost_scale: float = 1.0) -> SimAppConfig:
        return SimAppConfig(
            name=self.name,
            ecosystem=self.ecosystem,
            handler_imports=self.handler_imports,
            entries=self.entries,
            cost_scale=cost_scale,
        )

    def handler_source(self) -> str:
        return generate_handler(
            self.name,
            self.handler_imports,
            self.entries,
            description=self.definition.description,
        )

    def build_real_workspace(
        self, dest: str | Path, scale: float = 0.05
    ) -> FunctionDeployment:
        workspace = build_workspace(
            self.ecosystem, self.handler_source(), dest, scale=scale
        )
        return FunctionDeployment(
            name=self.name,
            workspace=workspace,
            entries=tuple(entry.name for entry in self.entries),
        )


def _classify_clusters(
    definition: AppDefinition, ecosystem: Ecosystem, handler_imports: tuple[str, ...]
) -> tuple[set[str], float, float]:
    """Expected analyzer outcome: (deferred subtree refs, removable ms, total ms).

    "Kept" modules are those the hot entries touch (plus everything outside
    flagged subtrees); clusters untouched by hot entries whose init share
    is non-trivial will be deferred by the analyzer, so their subtree init
    counts as removable.  This mirrors the analyzer's own hierarchy walk
    and is used only for calibration and test expectations.
    """
    hot_calls = expand_cluster_refs(
        ecosystem, definition.hot + definition.hot_secondary
    )
    touched_modules: set[str] = set()
    seen_functions: set[str] = set()

    def walk(qualified: str) -> None:
        if qualified in seen_functions:
            return
        seen_functions.add(qualified)
        ref = ecosystem.parse_function(qualified)
        touched_modules.add(ref.key.dotted)
        for target in ecosystem.call_targets(ref):
            walk(target.qualified)

    for call in hot_calls:
        walk(call)

    roots = [ecosystem.parse_module(dotted) for dotted in handler_imports]
    closure = ecosystem.import_closure(roots)
    total_ms = ecosystem.total_init_cost_ms(closure) + BENCH_RUNTIME_INIT_MS

    deferred: set[str] = set()
    removable = 0.0
    loaded_by_library: dict[str, list] = {}
    for key in closure:
        loaded_by_library.setdefault(key.library, []).append(key)

    for library_name in loaded_by_library:
        library = ecosystem.library(library_name)

        def touched(subtree_root: str) -> bool:
            prefix = f"{library_name}.{subtree_root}"
            return any(
                module == prefix or module.startswith(prefix + ".")
                for module in touched_modules
            )

        def visit(subtree_root: str) -> None:
            nonlocal removable
            subtree_ms = library.subtree_init_cost_ms(subtree_root)
            if subtree_ms / total_ms < 0.01:  # analyzer's min subtree share
                return
            if not touched(subtree_root):
                deferred.add(f"{library_name}.{subtree_root}")
                removable += subtree_ms
                return
            for child in library.children(subtree_root):
                visit(child)

        if not any(
            module == library_name or module.startswith(library_name + ".")
            for module in touched_modules
        ):
            # Whole library unused: handler import (or edge) gets deferred.
            deferred.add(library_name)
            removable += sum(
                ecosystem.module(key).init_cost_ms
                for key in loaded_by_library[library_name]
            )
            continue
        for child in library.children(""):
            visit(child)
    return deferred, removable, total_ms


def instantiate(definition: AppDefinition) -> BenchmarkApp:
    """Build the runnable application from its definition."""
    ecosystem = Ecosystem()
    for builder in definition.library_builders:
        ecosystem.add(builder())
    ecosystem.validate()

    direct_libraries = list(
        dict.fromkeys(
            ref.partition(".")[0]
            for ref in (
                definition.hot
                + definition.hot_secondary
                + definition.rare
                + definition.never
            )
        )
    )
    for dotted in definition.orphan_imports:
        library = dotted.partition(".")[0]
        if library not in direct_libraries:
            direct_libraries.append(library)
    handler_imports = tuple(direct_libraries)

    expected_deferred, removable_ms, total_ms = _classify_clusters(
        definition, ecosystem, handler_imports
    )

    # Handler execution-time calibration: choose the main entry's local
    # work so the app's init:exec proportions reproduce the paper's
    # init-vs-e2e speedup pair (see DESIGN.md §6).
    main_calls = tuple(expand_cluster_refs(ecosystem, definition.hot))
    main_lib_exec = entry_exec_ms(ecosystem, main_calls)
    if definition.exec_budget_ms is not None:
        handler_self = max(0.5, definition.exec_budget_ms - main_lib_exec)
    elif definition.paper is not None and definition.paper.e2e_speedup > 1.0:
        paper = definition.paper
        target_overhead = (
            total_ms
            * (paper.init_speedup - paper.e2e_speedup)
            / (paper.init_speedup * (paper.e2e_speedup - 1.0))
        )
        handler_self = max(
            0.5, target_overhead - BENCH_COLD_PLATFORM_MS - main_lib_exec
        )
    else:
        handler_self = 2.0

    entries: list[EntryBehavior] = [
        EntryBehavior(name="handle", calls=main_calls, handler_self_ms=handler_self)
    ]
    weighted: list[tuple[str, float]] = []
    main_weight = 1.0
    if definition.hot_secondary:
        secondary_calls = tuple(
            expand_cluster_refs(ecosystem, definition.hot_secondary)
        )
        entries.append(
            EntryBehavior(
                name="process", calls=secondary_calls, handler_self_ms=2.0
            )
        )
        weighted.append(("process", definition.secondary_popularity))
        main_weight -= definition.secondary_popularity
    for index, ref in enumerate(definition.rare):
        entry_name = f"aux_{index}_{ref.replace('.', '_')}"
        entries.append(
            EntryBehavior(
                name=entry_name,
                calls=tuple(expand_cluster_refs(ecosystem, (ref,))),
                handler_self_ms=2.0,
            )
        )
        weighted.append((entry_name, definition.rare_popularity))
        main_weight -= definition.rare_popularity
    for index, ref in enumerate(definition.never):
        entries.append(
            EntryBehavior(
                name=f"admin_{index}_{ref.replace('.', '_')}",
                calls=tuple(expand_cluster_refs(ecosystem, (ref,))),
                handler_self_ms=2.0,
            )
        )
    if main_weight <= 0:
        raise SpecError(f"app {definition.key}: popularity weights exceed 1")
    weighted.insert(0, ("handle", main_weight))

    mix = EntryMix(
        entries=tuple(name for name, _ in weighted),
        weights=tuple(weight for _, weight in weighted),
    )
    return BenchmarkApp(
        definition=definition,
        ecosystem=ecosystem,
        handler_imports=handler_imports,
        entries=tuple(entries),
        mix=mix,
        expected_removable_init_ms=removable_ms,
        expected_total_init_ms=total_ms,
    )
