"""Handler source generation for the benchmark applications.

The generated handler is exactly the code shape the paper's §II motivates:
global imports of heavyweight libraries at module level, several entry
functions, and per-entry calls into library feature clusters via plain
attribute access (``slnltk.tokenize.run()``) — the form both the app-level
optimizer and the library-level stubber know how to make lazy.
"""

from __future__ import annotations

from repro.faas.sim import EntryBehavior


def _call_expression(qualified: str) -> str:
    dotted, _, function = qualified.partition(":")
    return f"{dotted}.{function}()"


def generate_handler(
    app_name: str,
    handler_imports: tuple[str, ...],
    entries: tuple[EntryBehavior, ...],
    description: str = "",
) -> str:
    """Render a runnable handler module for the really-executing testbed."""
    lines = [
        f'"""Serverless handler for {app_name}.',
        "",
        (description or "Auto-generated benchmark application handler."),
        '"""',
        "",
        "import time as _time",
        "",
        "import _slimstart_runtime as _rt",
        "",
    ]
    for dotted in handler_imports:
        lines.append(f"import {dotted}")
    lines.append("")
    lines.append("")
    lines.append("def _busy(duration_ms):")
    lines.append('    """Handler-local work (request parsing, response building)."""')
    lines.append("    end = _time.perf_counter() + duration_ms / 1000.0 * _rt.COST_SCALE")
    lines.append("    while _time.perf_counter() < end:")
    lines.append("        pass")
    for entry in entries:
        lines.append("")
        lines.append("")
        lines.append(f"def {entry.name}(event=None):")
        lines.append(f'    """Entry point {entry.name!r}."""')
        lines.append(f"    _busy({entry.handler_self_ms!r})")
        lines.append("    results = []")
        for call in entry.calls:
            lines.append(f"    results.append({_call_expression(call)})")
        lines.append(f"    return {{'entry': {entry.name!r}, 'results': len(results)}}")
    lines.append("")
    return "\n".join(lines)
