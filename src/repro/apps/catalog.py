"""Definitions of the 22 evaluated applications (Table II's population).

Per-app library sets reproduce Table II's "# of libs" / "# of modules"
columns; cluster usage classes are calibrated so the removable
initialization fraction matches the paper's initialization speedup
(``u = 1 - 1/speedup``), and the handler execution budget is derived from
the init-vs-e2e speedup pair.  Five applications (the ``CLEAN_*`` group)
carry no meaningful inefficiency — the paper finds optimization targets in
17 of 22 apps, and so do we.

Fig. 2 calibration note: the orphaned (statically removable) share of each
FaaSLight app preserves the *ratio* of static-reachability savings to
dynamic savings that Fig. 2 reports, scaled into the Table II speedup
budget (the paper's Fig. 2 upper bound is an estimate, not the tool's
achieved reduction; Table II is primary here — see EXPERIMENTS.md).
"""

from __future__ import annotations

from functools import partial

from repro.apps.model import AppDefinition, BenchmarkApp, PaperNumbers, instantiate
from repro.synthlib import catalog as libs
from repro.synthlib.catalog import generic_library


def _generic(name, modules, depth, init_ms, memory_kb, seed, deps=()):
    return partial(
        generic_library,
        name,
        module_count=modules,
        depth=depth,
        total_init_cost_ms=init_ms,
        total_memory_kb=memory_kb,
        seed=seed,
        dependencies=tuple(deps),
    )


APP_DEFINITIONS: tuple[AppDefinition, ...] = (
    # ----------------------------------------------------------------- RainbowCake
    AppDefinition(
        key="R-DV",
        name="dna_visualisation",
        suite="RainbowCake",
        category="Scientific Computing",
        description="DNA sequence transformation and visualization.",
        library_builders=(
            libs.numpy_like,
            _generic("sldnautils", 52, 5, 420.0, 26_000.0, seed=101),
        ),
        hot=("slnumpy.core", "slnumpy.lib", "sldnautils.part1"),
        rare=("sldnautils.part2",),
        never=(
            "sldnautils.part0",
            "slnumpy.linalg",
            "slnumpy.fft",
            "slnumpy.random",
            "slnumpy.ma",
            "slnumpy.polynomial",
        ),
        paper=PaperNumbers(2, 242, 4.75, 2.30, 2.26, 2.03, 1.99),
    ),
    AppDefinition(
        key="R-GB",
        name="graph_bfs",
        suite="RainbowCake",
        category="Graph Processing",
        description="Breadth-first search over generated graphs (Table I).",
        library_builders=(libs.igraph_like,),
        hot=("sligraph.core",),
        hot_secondary=("sligraph.community", "sligraph.io"),
        never=("sligraph.drawing",),
        paper=PaperNumbers(1, 86, 3.74, 1.71, 1.66, 1.55, 1.54),
    ),
    AppDefinition(
        key="R-GM",
        name="graph_mst",
        suite="RainbowCake",
        category="Graph Processing",
        description="Minimum spanning tree computation on generated graphs.",
        library_builders=(libs.igraph_like,),
        hot=("sligraph.core", "sligraph.community"),
        hot_secondary=("sligraph.io",),
        never=("sligraph.drawing",),
        paper=PaperNumbers(1, 86, 3.74, 1.74, 1.70, 1.67, 1.64),
    ),
    AppDefinition(
        key="R-GPR",
        name="graph_pagerank",
        suite="RainbowCake",
        category="Graph Processing",
        description="PageRank over generated graphs.",
        library_builders=(libs.igraph_like,),
        hot=("sligraph.core",),
        hot_secondary=("sligraph.io", "sligraph.community"),
        never=("sligraph.drawing",),
        paper=PaperNumbers(1, 86, 3.74, 1.70, 1.62, 1.69, 1.64),
    ),
    AppDefinition(
        key="R-SA",
        name="sentiment_analysis_rc",
        suite="RainbowCake",
        category="Natural Language Processing",
        description="Sentiment analysis (nltk + TextBlob), the Table IV case study.",
        library_builders=(
            libs.nltk_like,
            libs.textblob_like,
            _generic("slpunkt", 46, 4, 180.0, 11_000.0, seed=102),
            _generic("slslang", 30, 3, 90.0, 6_000.0, seed=103),
        ),
        hot=(
            "slnltk.tokenize",
            "sltextblob.blob",
            "sltextblob.sentiments",
            "slpunkt",
        ),
        hot_secondary=(
            "slnltk.corpus",
            "slnltk.data",
            "slnltk.chunk",
            "slnltk.metrics",
            "sltextblob.taggers",
            "slslang",
        ),
        never=("slnltk.sem", "slnltk.stem", "slnltk.parse"),
        # nltk.tag is reachable from no entry at all: the orphan share.
        paper=PaperNumbers(4, 265, 5.13, 1.35, 1.33, 1.37, 1.34),
    ),
    # ------------------------------------------------------------------- FaaSLight
    AppDefinition(
        key="FL-PMP",
        name="price_ml_predict",
        suite="FaaSLight",
        category="Machine Learning",
        description="Price prediction inference over SciPy models.",
        library_builders=(
            libs.scipy_like,
            libs.numpy_like,
            _generic("slmlmodels", 312, 8, 800.0, 48_000.0, seed=104),
        ),
        hot=(
            "slscipy.stats",
            "slscipy.optimize",
            "slscipy.special",
            "slnumpy",
            "slmlmodels",
        ),
        rare=("slscipy.integrate",),
        never=("slscipy.io",),
        # scipy.sparse / signal / spatial are orphaned: reachable from no
        # entry, the statically-removable share Fig. 2 shows is unusually
        # large for FL-PMP.
        paper=PaperNumbers(3, 832, 7.98, 1.31, 1.30, 1.37, 1.36),
    ),
    AppDefinition(
        key="FL-SN",
        name="skimage_numpy",
        suite="FaaSLight",
        category="Image Processing",
        description="Image filtering pipeline over the skimage stand-in.",
        library_builders=(
            partial(libs.skimage_like, dependencies=("slnumpy",)),
            libs.numpy_like,
        )
        + tuple(
            _generic(
                f"slimgfilter{i}",
                23 if i < 2 else 22,
                4,
                95.0,
                5_800.0,
                seed=110 + i,
            )
            for i in range(12)
        ),
        hot=(
            "slskimage.filters",
            "slskimage.transform",
            "slskimage.feature",
            "slnumpy.core",
            "slnumpy.lib",
            "slnumpy.random",
            "slnumpy.linalg",
            "slimgfilter0",
            "slimgfilter1",
            "slimgfilter2",
            "slimgfilter3",
            "slimgfilter4",
            "slimgfilter5",
            "slimgfilter6",
            "slimgfilter7",
            "slimgfilter8",
        ),
        rare=("slskimage.io",),
        never=(
            "slskimage.segmentation",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.polynomial",
            "slimgfilter9",
            "slimgfilter10",
            "slimgfilter11",
        ),
        # skimage.morphology + unlisted numpy clusters orphaned.
        paper=PaperNumbers(14, 656, 5.32, 1.41, 1.36, 1.41, 1.37),
    ),
    AppDefinition(
        key="FL-PWM",
        name="predict_wine_ml",
        suite="FaaSLight",
        category="Machine Learning",
        description="Wine-quality prediction (pandas + sklearn pipeline).",
        library_builders=(
            libs.pandas_like,
            libs.numpy_like,
            partial(libs.sklearn_like, dependencies=("slnumpy",)),
            _generic("sljoblib", 160, 6, 420.0, 26_000.0, seed=105),
            _generic("sldateutil", 170, 5, 380.0, 24_000.0, seed=106),
            _generic("slsix", 145, 4, 260.0, 16_000.0, seed=107),
        ),
        hot=(
            "slpandas.core",
            "slpandas.internals",
            "slnumpy.core",
            "slnumpy.lib",
            "slnumpy.linalg",
            "slsklearn.linear_model",
            "slsklearn.preprocessing",
            "slsklearn.metrics_",
            "slsklearn.utils",
            "sljoblib.part1",
            "sldateutil.part1",
            "sldateutil.part0",
            "slsix.part0",
        ),
        rare=("slpandas.compat", "slsklearn.model_selection"),
        never=(
            "slpandas.io",
            "slpandas.tseries",
            "slsklearn.ensemble",
            "sljoblib.part0",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.random",
            "slnumpy.polynomial",
        ),
        # pandas.plotting, sklearn.datasets, remaining filler parts orphaned.
        paper=PaperNumbers(6, 1385, 7.57, 1.76, 1.68, 1.59, 1.52),
    ),
    AppDefinition(
        key="FL-TWM",
        name="train_wine_ml",
        suite="FaaSLight",
        category="Machine Learning",
        description="Wine-quality model training (exec-heavy variant).",
        library_builders=(
            libs.pandas_like,
            libs.numpy_like,
            partial(libs.sklearn_like, dependencies=("slnumpy",)),
            _generic("sljoblib", 160, 6, 420.0, 26_000.0, seed=105),
            _generic("sldateutil", 170, 5, 380.0, 24_000.0, seed=106),
            _generic("slsix", 145, 4, 260.0, 16_000.0, seed=107),
        ),
        hot=(
            "slpandas.core",
            "slpandas.internals",
            "slnumpy.core",
            "slnumpy.lib",
            "slnumpy.linalg",
            "slsklearn.linear_model",
            "slsklearn.preprocessing",
            "slsklearn.metrics_",
            "slsklearn.utils",
            "sljoblib.part1",
            "sldateutil.part1",
            "sldateutil.part0",
            "slsix.part0",
        ),
        rare=("slpandas.compat", "slsklearn.model_selection"),
        never=(
            "slpandas.io",
            "slpandas.tseries",
            "slsklearn.ensemble",
            "sljoblib.part0",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.random",
            "slnumpy.polynomial",
        ),
        paper=PaperNumbers(6, 1385, 7.57, 1.79, 1.50, 1.72, 1.46),
    ),
    AppDefinition(
        key="FL-SA",
        name="sentiment_analysis_fl",
        suite="FaaSLight",
        category="Natural Language Processing",
        description="Sentiment analysis over pandas/scipy feature pipeline.",
        library_builders=(
            libs.pandas_like,
            libs.scipy_like,
            libs.numpy_like,
            _generic("sltweettok", 47, 4, 150.0, 9_000.0, seed=108),
            _generic("slregexlib", 47, 4, 150.0, 9_000.0, seed=109),
            _generic("slemolex", 47, 4, 150.0, 9_000.0, seed=120),
        ),
        hot=(
            "slpandas.core",
            "slpandas.internals",
            "slnumpy.core",
            "slnumpy.lib",
            "slscipy.stats",
            "slscipy.special",
            "slnumpy.linalg",
            "sltweettok",
            "slregexlib",
        ),
        never=(
            "slpandas.io",
            "slpandas.tseries",
            "slpandas.plotting",
            "slscipy.sparse",
            "slscipy.signal",
            "slscipy.integrate",
            "slscipy.optimize",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.random",
            "slnumpy.polynomial",
            "slemolex",
        ),
        # scipy.spatial / scipy.io / pandas.compat orphaned.
        paper=PaperNumbers(6, 1081, 6.80, 2.01, 2.01, 2.15, 2.15),
    ),
    # --------------------------------------------------------------- FaaSWorkbench
    AppDefinition(
        key="FWB-CML",
        name="chameleon",
        suite="FaaSWorkbench",
        category="Package Management",
        description="HTML/table template rendering (pkg_resources heavy).",
        library_builders=(
            libs.pkg_resources_like,
            _generic("sltemplating", 30, 4, 280.0, 17_000.0, seed=111),
            _generic("slmarkup", 12, 3, 90.0, 5_500.0, seed=112),
        ),
        hot=("slpkgres.working_set", "slpkgres.markers", "sltemplating", "slmarkup.part0"),
        never=("slpkgres.vendor", "slmarkup.part1"),
        paper=PaperNumbers(3, 102, 4.80, 1.17, 1.05, 1.24, 1.07),
    ),
    AppDefinition(
        key="FWB-MT",
        name="model_training",
        suite="FaaSWorkbench",
        category="Machine Learning",
        description="Batch model training (execution dominated).",
        library_builders=(
            libs.scipy_like,
            libs.numpy_like,
            libs.sklearn_like,
            libs.pandas_like,
            _generic("slfeatlib", 67, 5, 200.0, 12_000.0, seed=113),
        ),
        hot=(
            "slscipy.stats",
            "slscipy.optimize",
            "slscipy.integrate",
            "slscipy.special",
            "slscipy.io",
            "slnumpy",
            "slsklearn.linear_model",
            "slsklearn.ensemble",
            "slsklearn.preprocessing",
            "slsklearn.model_selection",
            "slsklearn.metrics_",
            "slsklearn.utils",
            "slpandas.core",
            "slpandas.io",
            "slpandas.internals",
            "slpandas.compat",
            "slscipy.signal",
            "slfeatlib",
        ),
        never=("slpandas.tseries",),
        # scipy.sparse / spatial, pandas.plotting, sklearn.datasets orphaned.
        paper=PaperNumbers(5, 1307, 8.16, 1.21, 1.09, 1.20, 1.09),
    ),
    AppDefinition(
        key="FWB-MS",
        name="model_serving",
        suite="FaaSWorkbench",
        category="Machine Learning",
        description="Model inference service with a wide dependency fan-out.",
        library_builders=(
            libs.scipy_like,
            libs.numpy_like,
            libs.sklearn_like,
        )
        + tuple(
            _generic(
                f"slserving{i}", 50 if i < 6 else 49, 5, 120.0, 7_500.0, seed=130 + i
            )
            for i in range(13)
        ),
        hot=(
            "slscipy.stats",
            "slscipy.optimize",
            "slscipy.special",
            "slscipy.integrate",
            "slnumpy",
            "slsklearn.linear_model",
            "slsklearn.preprocessing",
            "slsklearn.metrics_",
            "slsklearn.utils",
            "slsklearn.model_selection",
            "slsklearn.ensemble",
        )
        + tuple(f"slserving{i}" for i in range(11)),
        rare=("slscipy.io",),
        never=("slscipy.signal", "slserving11", "slserving12"),
        # scipy.sparse / spatial + sklearn.datasets orphaned.
        paper=PaperNumbers(16, 1463, 7.97, 1.23, 1.10, 1.22, 1.10),
    ),
    # ------------------------------------------------------------------ Real-world
    AppDefinition(
        key="OCRmyPDF",
        name="ocr_my_pdf",
        suite="RealWorld",
        category="Document Processing",
        description="PDF OCR pipeline (pdfminer + 19 auxiliary libraries).",
        library_builders=(libs.pdfminer_like,)
        + tuple(
            _generic(f"slocraux{i}", 24 if i < 9 else 25, 4, 75.0, 4_600.0, seed=150 + i)
            for i in range(19)
        ),
        hot=(
            "slpdfminer.layout",
            "slpdfminer.pdfparser",
            "slpdfminer.converter",
        )
        + tuple(f"slocraux{i}" for i in range(11))
        + ("slocraux15", "slocraux16"),
        rare=("slpdfminer.cmap", "slocraux11"),
        never=(
            "slpdfminer.image",
            "slocraux12",
            "slocraux13",
            "slocraux14",
        ),
        # Imported by the handler, reachable from no entry at all:
        orphan_imports=("slocraux17", "slocraux18"),
        paper=PaperNumbers(20, 586, 6.40, 1.42, 1.19, 1.63, 1.00),
    ),
    AppDefinition(
        key="CVE",
        name="cve_bin_tool",
        suite="RealWorld",
        category="Security",
        description="Binary CVE scanner; xmlschema only needed for SBOM "
        "inputs (the Table V case study).",
        library_builders=(
            libs.xmlschema_like,
            libs.elementpath_like,
            _generic("slcvecheckers", 350, 6, 900.0, 54_000.0, seed=114),
            _generic("slrequestslib", 110, 5, 310.0, 19_000.0, seed=115),
            _generic("slsqlitelib", 90, 4, 260.0, 16_000.0, seed=116),
            _generic("slyamllib", 60, 4, 190.0, 12_000.0, seed=117),
        ),
        hot=("slcvecheckers", "slrequestslib", "slsqlitelib", "slyamllib"),
        rare=("slxmlschema",),
        paper=PaperNumbers(6, 760, 6.15, 1.27, 1.20, 1.08, 1.01),
    ),
    AppDefinition(
        key="SensorTD",
        name="sensor_telemetry",
        suite="RealWorld",
        category="IoT Predictive Analysis",
        description="Environmental sensor telemetry forecasting (Prophet).",
        library_builders=(
            libs.prophet_like,
            libs.pandas_like,
            libs.numpy_like,
            _generic("slmqttlib", 10, 3, 40.0, 2_500.0, seed=118),
            _generic("slsensorfmt", 7, 3, 30.0, 2_000.0, seed=119),
        ),
        hot=(
            "slprophet.models",
            "slprophet.forecaster",
            "slpandas.core",
            "slnumpy.core",
            "slnumpy.lib",
            "slmqttlib",
            "slsensorfmt",
        ),
        never=(
            "slprophet.diagnostics",
            "slprophet.plot",
            "slprophet.serialize",
            "slpandas.io",
            "slpandas.tseries",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.random",
            "slnumpy.polynomial",
            "slnumpy.linalg",
        ),
        # pandas.plotting / compat orphaned.
        paper=PaperNumbers(5, 777, 5.90, 1.99, 1.09, 1.83, 1.10),
    ),
    AppDefinition(
        key="HFP",
        name="heart_failure_prediction",
        suite="RealWorld",
        category="Health Care",
        description="Heart-failure risk prediction (SciPy/sklearn).",
        library_builders=(
            libs.scipy_like,
            libs.numpy_like,
            libs.sklearn_like,
            _generic("slhealthfmt", 82, 6, 240.0, 15_000.0, seed=121),
            _generic("slriskmodels", 80, 6, 230.0, 14_000.0, seed=122),
        ),
        hot=(
            "slscipy.stats",
            "slscipy.optimize",
            "slscipy.integrate",
            "slscipy.special",
            "slscipy.io",
            "slnumpy.core",
            "slnumpy.lib",
            "slnumpy.linalg",
            "slnumpy.random",
            "slsklearn.linear_model",
            "slsklearn.preprocessing",
            "slsklearn.model_selection",
            "slsklearn.metrics_",
            "slsklearn.utils",
            "slhealthfmt",
            "slriskmodels",
        ),
        never=(
            "slscipy.sparse",
            "slscipy.signal",
            "slsklearn.ensemble",
            "slnumpy.ma",
            "slnumpy.fft",
            "slnumpy.polynomial",
        ),
        # scipy.spatial + sklearn.datasets orphaned.
        paper=PaperNumbers(5, 982, 8.79, 1.38, 1.30, 1.46, 1.39),
    ),
    # ------------------------------------------ apps with no meaningful inefficiency
    AppDefinition(
        key="R-FC",
        name="file_compress",
        suite="RainbowCake",
        category="Utilities",
        description="File compression: its single small library is fully used.",
        library_builders=(_generic("slzlib", 25, 3, 60.0, 3_800.0, seed=123),),
        hot=("slzlib",),
        exec_budget_ms=300.0,
    ),
    AppDefinition(
        key="FWB-UP",
        name="uploader",
        suite="FaaSWorkbench",
        category="Utilities",
        description="Object uploader: I/O bound, minimal dependencies.",
        library_builders=(_generic("slhttplib", 40, 4, 100.0, 6_200.0, seed=124),),
        hot=("slhttplib",),
        exec_budget_ms=250.0,
    ),
    AppDefinition(
        key="FWB-JS",
        name="json_serde",
        suite="FaaSWorkbench",
        category="Utilities",
        description="JSON serialization micro-benchmark; everything is hot.",
        library_builders=(_generic("sljsonlib", 20, 3, 45.0, 2_800.0, seed=125),),
        hot=("sljsonlib",),
        exec_budget_ms=80.0,
    ),
    AppDefinition(
        key="FL-HG",
        name="http_gateway",
        suite="FaaSLight",
        category="Utilities",
        description="Request router with one tiny fully-used dependency.",
        library_builders=(_generic("slrouterlib", 15, 3, 35.0, 2_200.0, seed=126),),
        hot=("slrouterlib",),
        exec_budget_ms=60.0,
    ),
    AppDefinition(
        key="FWB-MP",
        name="matrix_multiply",
        suite="FaaSWorkbench",
        category="Scientific Computing",
        description="Dense matrix multiplication: numpy fully exercised.",
        library_builders=(libs.numpy_like,),
        hot=("slnumpy",),
        exec_budget_ms=2_000.0,
    ),
)

#: The applications where the paper (and this reproduction) find and fix
#: inefficiencies — the 17 rows of Table II.
OPTIMIZABLE_KEYS: tuple[str, ...] = tuple(
    definition.key for definition in APP_DEFINITIONS if definition.paper is not None
)

#: The five FaaSLight apps of the Fig. 2 / Table III studies.
FAASLIGHT_STUDY_KEYS: tuple[str, ...] = (
    "FL-SA",
    "FL-PWM",
    "FL-TWM",
    "FL-PMP",
    "FL-SN",
)


def app_by_key(key: str) -> AppDefinition:
    for definition in APP_DEFINITIONS:
        if definition.key == key:
            return definition
    raise KeyError(f"unknown application key: {key!r}")


def benchmark_apps(keys: tuple[str, ...] | None = None) -> list[BenchmarkApp]:
    """Instantiate (a subset of) the suite."""
    selected = APP_DEFINITIONS if keys is None else [app_by_key(k) for k in keys]
    return [instantiate(definition) for definition in selected]
