"""Production-trace generator (the role of the Azure traces [4]).

Generates a fleet of serverless applications with the distributional shape
the paper's §II-C reports:

* ~54 % of applications expose more than one handler function (Fig. 3 left);
* per-app handler popularity is Zipf-skewed, so the top few handlers carry
  more than 80 % of invocations (Fig. 3 right);
* request volumes evolve over windows, with *workload shift events* at
  configurable hours where a fraction of apps re-rank their handlers —
  producing the Δp spikes Fig. 10 shows around hours 144 and 228.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.core.adaptive import invocation_probabilities, probability_shift


@dataclass
class AppTrace:
    """One application's windowed invocation counts."""

    name: str
    handlers: tuple[str, ...]
    windows: list[dict[str, int]]  # per window: handler -> invocation count

    @property
    def handler_count(self) -> int:
        return len(self.handlers)

    def total_invocations(self) -> int:
        return sum(sum(window.values()) for window in self.windows)

    def handler_totals(self) -> dict[str, int]:
        totals = {handler: 0 for handler in self.handlers}
        for window in self.windows:
            for handler, count in window.items():
                totals[handler] += count
        return totals

    def rank_frequencies(self) -> list[float]:
        """Invocation share per handler, most popular first."""
        totals = self.handler_totals()
        grand_total = sum(totals.values())
        if grand_total == 0:
            return [0.0] * len(self.handlers)
        return sorted(
            (count / grand_total for count in totals.values()), reverse=True
        )

    def shifts(self) -> list[float]:
        """Eq. 6 aggregate probability shift between consecutive windows."""
        shifts: list[float] = []
        previous: dict[str, float] | None = None
        for window in self.windows:
            probabilities = invocation_probabilities(window)
            if previous is not None:
                shifts.append(probability_shift(previous, probabilities))
            if probabilities or previous is None:
                previous = probabilities
        return shifts


@dataclass
class ProductionTrace:
    """A fleet of application traces over a shared window grid."""

    window_hours: float
    apps: list[AppTrace] = field(default_factory=list)

    @property
    def window_count(self) -> int:
        return max((len(app.windows) for app in self.apps), default=0)

    def handler_count_pdf(self) -> dict[int, float]:
        """Fig. 3 (left): fraction of apps per handler-function count."""
        counts: dict[int, int] = {}
        for app in self.apps:
            counts[app.handler_count] = counts.get(app.handler_count, 0) + 1
        total = len(self.apps)
        return {k: v / total for k, v in sorted(counts.items())}

    def multi_entry_fraction(self) -> float:
        """Fraction of applications with more than one handler."""
        if not self.apps:
            return 0.0
        multi = sum(1 for app in self.apps if app.handler_count > 1)
        return multi / len(self.apps)

    def invocation_cdf_by_rank(self) -> tuple[list[float], list[float], list[float]]:
        """Fig. 3 (right): cumulative invocation share by handler rank.

        Returns ``(mean_cdf, min_cdf, max_cdf)`` across apps, index = rank.
        Apps with fewer handlers than a given rank contribute a saturated
        (1.0) value at that rank, matching how the paper aggregates apps of
        different sizes into one CDF band.
        """
        max_rank = max((app.handler_count for app in self.apps), default=0)
        means: list[float] = []
        mins: list[float] = []
        maxs: list[float] = []
        per_app_cdfs = []
        for app in self.apps:
            frequencies = app.rank_frequencies()
            cdf = []
            running = 0.0
            for value in frequencies:
                running += value
                cdf.append(running)
            per_app_cdfs.append(cdf)
        for rank in range(max_rank):
            values = [
                cdf[rank] if rank < len(cdf) else 1.0 for cdf in per_app_cdfs
            ]
            means.append(sum(values) / len(values))
            mins.append(min(values))
            maxs.append(max(values))
        return means, mins, maxs

    def mean_shift_series(self) -> list[float]:
        """Fig. 10: mean Δp across apps for each window transition."""
        series: list[float] = []
        for index in range(self.window_count - 1):
            values = []
            for app in self.apps:
                shifts = app.shifts()
                if index < len(shifts):
                    values.append(shifts[index])
            series.append(sum(values) / len(values) if values else 0.0)
        return series

    def exceeding_fraction_series(self, epsilon: float) -> list[float]:
        """Fig. 10: fraction of apps whose Δp exceeds ``epsilon`` per window."""
        series: list[float] = []
        for index in range(self.window_count - 1):
            exceeded = 0
            counted = 0
            for app in self.apps:
                shifts = app.shifts()
                if index < len(shifts):
                    counted += 1
                    if shifts[index] > epsilon:
                        exceeded += 1
            series.append(exceeded / counted if counted else 0.0)
        return series


@dataclass(frozen=True)
class TraceGenerator:
    """Seeded generator for :class:`ProductionTrace` fleets."""

    app_count: int = 119
    duration_hours: float = 312.0
    window_hours: float = 12.0
    seed: int = 2025
    single_entry_fraction: float = 0.46  # => 54 % multi-entry (Fig. 3)
    max_handlers: int = 25
    zipf_exponent: float = 1.6
    shift_hours: tuple[float, ...] = (144.0, 228.0)
    shift_app_fraction: float = 0.85  # of multi-entry apps, at shift hours
    mean_requests_per_window: float = 4000.0
    #: Log-normal sigma of per-window volume wobble.  Production traces
    #: aggregate 12-hour windows over large request volumes, so per-window
    #: probability noise is tiny — Fig. 10's stable baseline mean Δp sits
    #: well below the ε = 0.002 threshold, which requires sub-0.1 % count
    #: noise (plain Poisson sampling would swamp ε with statistical noise).
    window_noise_sigma: float = 0.0008

    def __post_init__(self) -> None:
        if self.app_count <= 0:
            raise WorkloadError("app_count must be positive")
        if self.window_hours <= 0 or self.duration_hours < self.window_hours:
            raise WorkloadError("invalid window/duration configuration")
        if not 0 <= self.single_entry_fraction <= 1:
            raise WorkloadError("single_entry_fraction must be in [0, 1]")

    def generate(self) -> ProductionTrace:
        rng = SeededRNG(derive_seed(self.seed, "production-trace"))
        window_count = int(self.duration_hours // self.window_hours)
        shift_windows = {
            int(hour // self.window_hours) for hour in self.shift_hours
        }
        trace = ProductionTrace(window_hours=self.window_hours)
        for app_index in range(self.app_count):
            app_rng = rng.child("app", app_index)
            handler_count = self._draw_handler_count(app_rng)
            handlers = tuple(f"h{rank}" for rank in range(handler_count))
            weights = app_rng.zipf_weights(handler_count, self.zipf_exponent)
            volume = max(
                50.0, app_rng.gauss(self.mean_requests_per_window, 1200.0)
            )
            shifts_here = app_rng.random() < self.shift_app_fraction
            order = list(range(handler_count))
            windows: list[dict[str, int]] = []
            for window_index in range(window_count):
                if window_index in shift_windows and shifts_here:
                    # Workload shift: the popularity ranking rotates, so
                    # formerly-rare handlers become hot (and vice versa).
                    rotation = 1 + app_rng.randint(0, max(0, handler_count - 2))
                    order = order[rotation:] + order[:rotation]
                window_rng = app_rng.child("window", window_index)
                counts: dict[str, int] = {}
                for position, handler_index in enumerate(order):
                    expected = volume * weights[position]
                    noisy = expected * math.exp(
                        window_rng.gauss(0.0, self.window_noise_sigma)
                    )
                    count = int(round(noisy))
                    if count > 0:
                        counts[handlers[handler_index]] = count
                windows.append(counts)
            trace.apps.append(
                AppTrace(name=f"app{app_index:03d}", handlers=handlers, windows=windows)
            )
        return trace

    def _draw_handler_count(self, rng: SeededRNG) -> int:
        if rng.random() < self.single_entry_fraction:
            return 1
        # Geometric tail over 2..max_handlers, matching the heavy-headed
        # PDF of Fig. 3 (most multi-entry apps have a handful of handlers).
        count = 2
        while count < self.max_handlers and rng.random() < 0.55:
            count += 1
        return count
