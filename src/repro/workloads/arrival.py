"""Arrival processes for replaying workloads against a platform."""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG
from repro.workloads.popularity import EntryMix


def poisson_schedule(
    mix: EntryMix,
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[tuple[float, str]]:
    """Poisson arrivals with i.i.d. entry choices; ``(time, entry)`` pairs."""
    if rate_per_s <= 0:
        raise WorkloadError(f"rate must be positive: {rate_per_s}")
    if duration_s <= 0:
        raise WorkloadError(f"duration must be positive: {duration_s}")
    rng = SeededRNG(seed)
    now = start_s
    schedule: list[tuple[float, str]] = []
    while True:
        now += rng.expovariate(rate_per_s)
        if now >= start_s + duration_s:
            break
        schedule.append((now, rng.weighted_choice(mix.entries, mix.weights)))
    return schedule


def burst_entries(mix: EntryMix, count: int, seed: int | None = None) -> list[str]:
    """Entry list for an N-concurrent burst.

    With ``seed=None`` the mix's exact proportional sequence is used
    (deterministic measurement); otherwise entries are sampled i.i.d.
    """
    if seed is None:
        return mix.proportional_sequence(count)
    return mix.sample_sequence(count, seed)


def idle_gaps(
    schedule: list[tuple[float, str]], keep_alive_s: float
) -> Iterator[tuple[float, float]]:
    """Yield ``(gap_start, gap_length)`` for gaps exceeding the keep-alive.

    Every such gap forces the next request into a cold start; useful for
    asserting cold-start counts in tests.
    """
    previous: float | None = None
    for timestamp, _ in schedule:
        if previous is not None and timestamp - previous > keep_alive_s:
            yield previous, timestamp - previous
        previous = timestamp
