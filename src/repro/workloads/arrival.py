"""Arrival processes for replaying workloads against a platform.

Besides the paper's measurement protocols (Poisson profiling traffic and
N-concurrent bursts), this module generates cluster-scale inputs: on/off
bursty schedules that stress autoscaling, merged multi-application
streams for fleet experiments (see :mod:`repro.faas.cluster`), and
region-tagged schedules for the multi-region federation
(see :mod:`repro.faas.region`).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Mapping, Sequence

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.workloads.popularity import EntryMix


def poisson_schedule(
    mix: EntryMix,
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[tuple[float, str]]:
    """Poisson arrivals with i.i.d. entry choices; ``(time, entry)`` pairs."""
    if rate_per_s <= 0:
        raise WorkloadError(f"rate must be positive: {rate_per_s}")
    if duration_s <= 0:
        raise WorkloadError(f"duration must be positive: {duration_s}")
    rng = SeededRNG(seed)
    now = start_s
    schedule: list[tuple[float, str]] = []
    while True:
        now += rng.expovariate(rate_per_s)
        if now >= start_s + duration_s:
            break
        schedule.append((now, rng.weighted_choice(mix.entries, mix.weights)))
    return schedule


def burst_entries(mix: EntryMix, count: int, seed: int | None = None) -> list[str]:
    """Entry list for an N-concurrent burst.

    With ``seed=None`` the mix's exact proportional sequence is used
    (deterministic measurement); otherwise entries are sampled i.i.d.
    """
    if seed is None:
        return mix.proportional_sequence(count)
    return mix.sample_sequence(count, seed)


def bursty_schedule(
    mix: EntryMix,
    base_rate_per_s: float,
    burst_rate_per_s: float,
    period_s: float,
    burst_fraction: float,
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[tuple[float, str]]:
    """On/off-modulated Poisson arrivals (a Markov-modulated process).

    Each period of ``period_s`` seconds opens with a burst phase lasting
    ``burst_fraction`` of the period at ``burst_rate_per_s``, then falls
    back to ``base_rate_per_s``.  Bursts drive fleet scale-out; the quiet
    phases let keep-alives expire — the traffic shape that makes
    cold-start rates interesting at cluster scale.
    """
    if base_rate_per_s <= 0 or burst_rate_per_s <= 0:
        raise WorkloadError(
            f"rates must be positive: {base_rate_per_s}, {burst_rate_per_s}"
        )
    if duration_s <= 0:
        raise WorkloadError(f"duration must be positive: {duration_s}")
    if period_s <= 0:
        raise WorkloadError(f"period must be positive: {period_s}")
    if not 0.0 <= burst_fraction <= 1.0:
        raise WorkloadError(f"burst fraction must be in [0, 1]: {burst_fraction}")
    rng = SeededRNG(seed)
    end = start_s + duration_s
    schedule: list[tuple[float, str]] = []
    now = start_s
    while now < end:
        offset = (now - start_s) % period_s
        boundary = burst_fraction * period_s
        in_burst = offset < boundary
        rate = burst_rate_per_s if in_burst else base_rate_per_s
        phase_end = now - offset + (boundary if in_burst else period_s)
        gap = rng.expovariate(rate)
        if now + gap >= phase_end:
            # No arrival before the phase flips; restart sampling at the
            # next phase's rate.  Exact for a piecewise-constant-rate
            # Poisson process by memorylessness — without this, one long
            # quiet-phase gap can silently jump whole burst windows.
            now = phase_end
            continue
        now += gap
        if now >= end:
            break
        schedule.append((now, rng.weighted_choice(mix.entries, mix.weights)))
    return schedule


def merge_schedules(
    streams: Sequence[tuple[str, list[tuple[float, str]]]],
) -> list[tuple[float, str]]:
    """Merge per-application schedules into one gateway-path stream.

    ``streams`` pairs an app name with its ``(arrival_s, entry)`` schedule;
    the result is ``(arrival_s, "/<app>/<entry>")`` tuples in global time
    order (ties broken by stream position, deterministically), ready for
    :meth:`repro.faas.gateway.Gateway.submit`.
    """
    tagged = [
        [(at, index, f"/{app}/{entry}") for at, entry in schedule]
        for index, (app, schedule) in enumerate(streams)
    ]
    return [(at, path) for at, _, path in heapq.merge(*tagged)]


def tag_schedule(
    schedule: list[tuple[float, str]], region: str
) -> list[tuple[float, str, str]]:
    """Attach an origin region to every arrival of a schedule.

    Turns ``(arrival_s, entry)`` pairs into the ``(arrival_s, entry,
    region)`` triples :meth:`repro.faas.region.FederatedGateway.submit_schedule`
    consumes.
    """
    return [(at, entry, region) for at, entry in schedule]


def merge_tagged_schedules(
    streams: Sequence[tuple[str, list[tuple[float, str]]]],
) -> list[tuple[float, str, str]]:
    """Merge per-region schedules into one region-tagged arrival stream.

    ``streams`` pairs a region name with its ``(arrival_s, entry)``
    schedule; the result is ``(arrival_s, entry, region)`` triples in
    global time order (ties broken by stream position, deterministically)
    — the multi-region analogue of :func:`merge_schedules`.
    """
    tagged = [
        [(at, index, entry, region) for at, entry in schedule]
        for index, (region, schedule) in enumerate(streams)
    ]
    return [(at, entry, region) for at, _, entry, region in heapq.merge(*tagged)]


def regional_poisson_schedules(
    mix: EntryMix,
    rates_per_s: Mapping[str, float],
    duration_s: float,
    seed: int = 0,
    start_s: float = 0.0,
) -> list[tuple[float, str, str]]:
    """Independent per-region Poisson traffic, merged into one stream.

    Each region draws its own arrival process at its own rate from a
    seed derived per region (``derive_seed(seed, "region", name)``), so
    adding a region never perturbs the others' schedules.  Returns
    region-tagged ``(arrival_s, entry, region)`` triples in global time
    order, ready for the federated gateway.
    """
    return merge_tagged_schedules(
        [
            (
                region,
                poisson_schedule(
                    mix,
                    rate_per_s=rate,
                    duration_s=duration_s,
                    seed=derive_seed(seed, "region", region),
                    start_s=start_s,
                ),
            )
            for region, rate in rates_per_s.items()
        ]
    )


def idle_gaps(
    schedule: list[tuple[float, str]], keep_alive_s: float
) -> Iterator[tuple[float, float]]:
    """Yield ``(gap_start, gap_length)`` for gaps exceeding the keep-alive.

    Every such gap forces the next request into a cold start; useful for
    asserting cold-start counts in tests.
    """
    previous: float | None = None
    for timestamp, _ in schedule:
        if previous is not None and timestamp - previous > keep_alive_s:
            yield previous, timestamp - previous
        previous = timestamp
