"""Workload substrate: entry-point popularity, arrivals, production
traces, and the streaming replay compiler that turns traces into lazy,
globally time-ordered arrival streams (:mod:`repro.workloads.replay`)."""

from repro.workloads.popularity import EntryMix, zipf_mix
from repro.workloads.arrival import (
    burst_entries,
    bursty_schedule,
    merge_schedules,
    merge_tagged_schedules,
    poisson_schedule,
    regional_poisson_schedules,
    tag_schedule,
)
from repro.workloads.replay import (
    ARRIVAL_MODEL_NAMES,
    ArrivalModel,
    DiurnalArrivals,
    ExplicitMap,
    HashAffinity,
    PoissonArrivals,
    PopularityWeighted,
    RegionAssigner,
    UniformArrivals,
    as_paths,
    assign_regions,
    compile_trace,
    make_arrival_model,
)
from repro.workloads.trace import AppTrace, ProductionTrace, TraceGenerator

__all__ = [
    "EntryMix",
    "zipf_mix",
    "poisson_schedule",
    "burst_entries",
    "bursty_schedule",
    "merge_schedules",
    "merge_tagged_schedules",
    "regional_poisson_schedules",
    "tag_schedule",
    "ARRIVAL_MODEL_NAMES",
    "ArrivalModel",
    "DiurnalArrivals",
    "ExplicitMap",
    "HashAffinity",
    "PoissonArrivals",
    "PopularityWeighted",
    "RegionAssigner",
    "UniformArrivals",
    "as_paths",
    "assign_regions",
    "compile_trace",
    "make_arrival_model",
    "AppTrace",
    "ProductionTrace",
    "TraceGenerator",
]
