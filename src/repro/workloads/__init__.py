"""Workload substrate: entry-point popularity, arrivals, production traces."""

from repro.workloads.popularity import EntryMix, zipf_mix
from repro.workloads.arrival import (
    burst_entries,
    bursty_schedule,
    merge_schedules,
    merge_tagged_schedules,
    poisson_schedule,
    regional_poisson_schedules,
    tag_schedule,
)
from repro.workloads.trace import AppTrace, ProductionTrace, TraceGenerator

__all__ = [
    "EntryMix",
    "zipf_mix",
    "poisson_schedule",
    "burst_entries",
    "bursty_schedule",
    "merge_schedules",
    "merge_tagged_schedules",
    "regional_poisson_schedules",
    "tag_schedule",
    "AppTrace",
    "ProductionTrace",
    "TraceGenerator",
]
