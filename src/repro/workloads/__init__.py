"""Workload substrate: entry-point popularity, arrivals, production traces."""

from repro.workloads.popularity import EntryMix, zipf_mix
from repro.workloads.arrival import poisson_schedule, burst_entries
from repro.workloads.trace import AppTrace, ProductionTrace, TraceGenerator

__all__ = [
    "EntryMix",
    "zipf_mix",
    "poisson_schedule",
    "burst_entries",
    "AppTrace",
    "ProductionTrace",
    "TraceGenerator",
]
