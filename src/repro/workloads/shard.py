"""Sharded multi-process trace replay: split by app, replay, merge exactly.

A compiled trace drives one :class:`~repro.faas.cluster.ClusterPlatform`
event loop on one core.  But the cluster gives every application its own
container fleet, and fleets share *no* capacity, no queue, no RNG stream
— each app's event sequence is a pure function of that app's arrivals.
A single-cluster replay therefore factorizes: split the trace's apps into
shards (a stable hash of the app name), replay each shard on its own
platform — in its own *process* — and merge the per-shard windowed
summaries.  The merge is **bit-identical** to the unsharded replay
because:

* per-app arrival streams are independent by construction
  (:func:`~repro.workloads.replay.compile_trace` derives one RNG per
  (app, window, handler));
* container ids/sequence numbers only break ties *within* a fleet, and
  relative order within a fleet is preserved under sharding;
* every float the summary reports is accumulated **per app** inside the
  :class:`~repro.metrics.WindowAccumulator` and recombined in one
  canonical order — workers ship the accumulator's columnar raw state
  (:meth:`~repro.metrics.WindowAccumulator.to_wire`), the coordinator
  folds it with :func:`repro.metrics.merge_wire`, and the equivalent
  summary-level :meth:`~repro.metrics.WindowedSummary.merge` remains
  for merging already-finalized results;
* provisioned tails are flushed at the container's natural keep-alive
  expiry (``flush_at=math.inf``) rather than at the shard's last event
  time, which would differ between shards and the full run.

``tests/workloads/test_shard.py`` pins the exactness property for
arbitrary shard counts and app partitions; the federation is *not*
shardable this way (regions share routing state), so sharding is a
single-cluster capability.

Process orchestration uses :class:`concurrent.futures.ProcessPoolExecutor`;
everything a worker needs (the sub-trace, the :class:`ShardReplaySpec`)
is a plain picklable dataclass.  Throughput at 1/2/4 workers is measured
by ``benchmarks/test_perf_replay_throughput.py`` into
``BENCH_replay_throughput.json``.

Sharded replays are also *resumable*: :func:`run_sharded_checkpointed`
gives every worker its own durable checkpoint file plus a coordinator
manifest, so a multi-day sharded run killed mid-trace picks up from the
last window boundary of every shard and still merges bit-identically
(``tests/workloads/test_shard_checkpoint.py`` pins this, including
kill-at-any-point under hypothesis).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import CheckpointError, WorkloadError
from repro.common.rng import derive_seed
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.faas.snapshot import (
    load_manifest,
    reject_stale_scratch,
    run_stream_checkpointed,
    shard_checkpoint_path,
    write_checkpoint,
    write_manifest,
)
from repro.metrics import (
    PricingModel,
    QoSClass,
    WindowAccumulator,
    WindowedSummary,
    merge_wire,
)
from repro.obs.journal import JournalWriter, merge_journals, shard_journal_path
from repro.workloads.replay import (
    ArrivalModel,
    assign_qos,
    compile_trace,
    progress_stream,
)
from repro.workloads.trace import ProductionTrace


def shard_index(app: str, shards: int) -> int:
    """The shard a given application hashes to.

    Uses the repo's process-stable BLAKE2 hash (never Python's ``hash``),
    so the same app lands on the same shard in every worker process and
    on every machine.
    """
    if shards < 1:
        raise WorkloadError(f"need at least one shard: {shards}")
    return derive_seed(0, "shard", app) % shards


def shard_trace(trace: ProductionTrace, shards: int) -> list[ProductionTrace]:
    """Split a trace into ``shards`` app-disjoint sub-traces by app hash.

    Every app appears in exactly one shard (some shards may be empty for
    small fleets); window geometry is shared.  App objects are shared,
    not copied — traces are read-only inputs to replay.
    """
    out = [ProductionTrace(window_hours=trace.window_hours) for _ in range(shards)]
    for app in trace.apps:
        out[shard_index(app.name, shards)].apps.append(app)
    return out


@dataclass(frozen=True)
class ShardReplaySpec:
    """Everything one shard worker needs to replay its sub-trace.

    A frozen, picklable bundle of the replay parameters every shard must
    agree on — one spec drives all workers, so shards cannot diverge in
    configuration.

    Attributes:
        platform: Platform cost constants for the per-shard cluster.
        fleet: Fleet/autoscaler configuration deployed for every app.
        seed: Cluster seed (jitter streams derive per app, so sharding
            never perturbs them).
        replay_seed: Seed for :func:`~repro.workloads.replay.compile_trace`.
        model: Intra-window arrival model (``None`` = uniform).
        scale: Trace volume multiplier.
        start_s: Replay start offset on the virtual clock.
        window_s: Accumulator window size in seconds.
        pricing: Pricing model for the windowed cost series.
        exec_ms: Trace-app handler self-time
            (see :func:`repro.faas.replaydeploy.trace_app_config`).
        base_memory_mb: Trace-app container footprint.
        qos: QoS classes to tag arrivals with
            (:func:`~repro.workloads.replay.assign_qos`); ``None`` leaves
            the stream untagged.  Tagging is per-app-seeded, so it is
            partition-independent and the merge stays bit-identical.
        qos_seed: Seed for the per-app QoS assignment draws.
        progress: Emit a per-shard heartbeat line to stderr at every
            window boundary (:func:`~repro.workloads.replay.progress_stream`).
            Diagnostics only — never affects the replay result, so it is
            deliberately *not* part of the replay fingerprint.
    """

    platform: SimPlatformConfig = SimPlatformConfig(record_traces=False)
    fleet: FleetConfig = FleetConfig()
    seed: int = 0
    replay_seed: int = 0
    model: ArrivalModel | None = None
    scale: float = 1.0
    start_s: float = 0.0
    window_s: float = 3600.0
    pricing: PricingModel | None = None
    exec_ms: float = 2.0
    base_memory_mb: float = 96.0
    qos: tuple[QoSClass, ...] | None = None
    qos_seed: int = 0
    progress: bool = False


def build_shard_replay(
    spec: ShardReplaySpec, trace: ProductionTrace
) -> tuple[ClusterPlatform, object, WindowAccumulator]:
    """Build one shard's deployed platform, compiled stream, and accumulator.

    Everything here is deterministic in ``(spec, trace)``: per-(app,
    window, handler) replay RNGs and per-app jitter/QoS seeds mean the
    same sub-trace always compiles to the same stream on the same
    platform — the property both the sharded merge and checkpoint resume
    lean on.
    """
    platform = ClusterPlatform(
        config=spec.platform, fleet=spec.fleet, seed=spec.seed, qos=spec.qos
    )
    deploy_trace(
        platform, trace, exec_ms=spec.exec_ms, base_memory_mb=spec.base_memory_mb
    )
    stream = compile_trace(
        trace,
        model=spec.model,
        seed=spec.replay_seed,
        start_s=spec.start_s,
        scale=spec.scale,
    )
    if spec.qos is not None:
        stream = assign_qos(stream, spec.qos, seed=spec.qos_seed)
    accumulator = WindowAccumulator(window_s=spec.window_s, pricing=spec.pricing)
    return platform, stream, accumulator


def replay_shard(spec: ShardReplaySpec, trace: ProductionTrace) -> WindowedSummary:
    """Replay one (sub-)trace on a fresh cluster; the shard worker body.

    Also the one-shard path of :func:`replay_sharded`, so a 1-worker run
    and an N-worker run execute literally the same code per shard.
    Flushes provisioned tails at natural expiry (see module docstring).
    """
    platform, stream, accumulator = build_shard_replay(spec, trace)
    if spec.progress:
        stream = progress_stream(stream, spec.window_s)
    return platform.run_stream(stream, accumulator, flush_at=math.inf)


def replay_shard_wire(spec: ShardReplaySpec, trace: ProductionTrace) -> tuple:
    """:func:`replay_shard`, returning the accumulator's wire form.

    The pool worker body of :func:`replay_sharded`: instead of
    finalizing a :class:`~repro.metrics.WindowedSummary` (a tree of
    per-window stat dataclasses that is expensive to pickle and must be
    re-expanded to merge), the worker ships the accumulator's columnar
    raw state (:meth:`~repro.metrics.WindowAccumulator.to_wire`) and the
    coordinator folds the wires together with
    :func:`repro.metrics.merge_wire` — summarizing exactly once, after
    the merge.  ``merge_wire([replay_shard_wire(spec, t)])`` is
    bit-identical to ``replay_shard(spec, t)`` re-merged, which the
    shard suite pins.
    """
    platform, stream, accumulator = build_shard_replay(spec, trace)
    if spec.progress:
        stream = progress_stream(stream, spec.window_s)
    platform.run_stream(stream, accumulator, flush_at=math.inf, finalize=False)
    return accumulator.to_wire()


def replay_sharded(
    trace: ProductionTrace,
    spec: ShardReplaySpec | None = None,
    workers: int = 1,
) -> WindowedSummary:
    """Replay ``trace`` across ``workers`` processes; merge exactly.

    ``workers=1`` runs inline (no pool) but through the identical
    per-shard code path, so scaling the worker count never changes the
    result — only the wall time.  Empty shards (hash collisions on small
    fleets) are skipped.
    """
    spec = spec if spec is not None else ShardReplaySpec()
    shards = [shard for shard in shard_trace(trace, workers) if shard.apps]
    if not shards:
        shards = [ProductionTrace(window_hours=trace.window_hours)]
    if workers == 1 or len(shards) == 1:
        wires = [replay_shard_wire(spec, shard) for shard in shards]
    else:
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            wires = list(pool.map(replay_shard_wire, [spec] * len(shards), shards))
    return merge_wire(wires)


# -- checkpointed sharded replay ---------------------------------------------


def shard_fingerprint(
    fingerprint: dict | None, shard: int, workers: int
) -> dict:
    """The per-shard fingerprint a shard checkpoint is validated against.

    Wraps the run-wide replay fingerprint with the shard's identity, so a
    shard file that is renamed, copied between runs, or resumed under a
    different partition fails :func:`run_stream_checkpointed`'s
    fingerprint check even when the run-wide flags match.
    """
    return {"replay": fingerprint, "shard": shard, "workers": workers}


def checkpointed_shard(
    spec: ShardReplaySpec,
    trace: ProductionTrace,
    path: str,
    fingerprint: dict,
    journal_path: str | None = None,
    trace_sample: float = 0.0,
) -> WindowedSummary:
    """The checkpointed shard worker body (module-level: pool-picklable).

    Identical to :func:`replay_shard` except the stream is driven through
    :func:`run_stream_checkpointed`: the worker resumes from its shard
    checkpoint (the coordinator guarantees one exists, if only the
    consumed-0 initial state), writes a fresh one at every window
    boundary, and *keeps* its final checkpoint — only the coordinator
    deletes shard files, after the merge, so a kill between one shard
    finishing and the run completing stays resumable everywhere.

    ``journal_path`` additionally journals this shard's telemetry (a
    :class:`~repro.obs.journal.JournalWriter` at the spec's window size,
    stamped with the shard fingerprint); the coordinator later merges the
    per-shard files exactly like the summaries.
    """
    platform, stream, accumulator = build_shard_replay(spec, trace)
    if spec.progress:
        stream = progress_stream(stream, spec.window_s, label=Path(path).name)
    journal = None
    if journal_path is not None:
        journal = JournalWriter(
            journal_path,
            window_s=spec.window_s,
            fingerprint=fingerprint,
            trace_sample=trace_sample,
        )
    return run_stream_checkpointed(
        platform,
        stream,
        accumulator,
        path,
        flush_at=math.inf,
        keep=True,
        fingerprint=fingerprint,
        journal=journal,
    )


def prepare_sharded_checkpoint(
    trace: ProductionTrace,
    path: str | Path,
    spec: ShardReplaySpec,
    workers: int,
    fingerprint: dict | None = None,
) -> tuple[list[ProductionTrace], list[Path], list[dict], bool]:
    """Validate-or-create the on-disk state of a checkpointed sharded run.

    Returns ``(shards, shard_paths, shard_fingerprints, resumed)``.

    Fresh run (no manifest at ``path``): every shard's *initial*
    checkpoint (consumed ``0``, freshly deployed platform, empty
    accumulator) is written **before** the manifest, so the manifest's
    invariant — every shard file it references exists — holds from the
    instant it appears on disk, whatever gets killed when.

    Resume (manifest present): the manifest's format, worker count,
    fingerprint, and re-derived app partition are all validated, and
    every referenced shard file must exist; any mismatch raises
    :class:`CheckpointError` *before* a single worker starts, so a wrong
    ``--workers`` or a different trace can never skip a shard into the
    wrong deterministic stream (nor silently restart one from zero).
    """
    if workers < 1:
        raise WorkloadError(f"need at least one worker: {workers}")
    path = Path(path)
    reject_stale_scratch(path)
    shards = shard_trace(trace, workers)
    partition = {app.name: shard_index(app.name, workers) for app in trace.apps}
    shard_paths = [
        shard_checkpoint_path(path, shard, workers) for shard in range(workers)
    ]
    fingerprints = [
        shard_fingerprint(fingerprint, shard, workers) for shard in range(workers)
    ]
    resumed = path.exists()
    if resumed:
        manifest = load_manifest(path)
        if manifest["workers"] != workers:
            raise CheckpointError(
                f"checkpoint manifest {path} was written by a "
                f"{manifest['workers']}-worker replay; this run has "
                f"--workers {workers}. Shard checkpoints only resume under "
                f"the worker count that wrote them — re-run with --workers "
                f"{manifest['workers']}, or delete the checkpoint files to "
                "start over"
            )
        if manifest.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint manifest {path} was written by a "
                f"differently-configured replay (manifest fingerprint "
                f"{manifest.get('fingerprint')!r}, this run {fingerprint!r}); "
                "resuming would blend two workloads — delete the checkpoint "
                "files or re-run with the original flags"
            )
        if manifest.get("partition") != partition:
            raise CheckpointError(
                f"checkpoint manifest {path} partitions a different trace "
                "across its shards; resuming would blend two workloads — "
                "delete the checkpoint files or re-run with the original "
                "trace flags"
            )
        for shard_path in shard_paths:
            if not shard_path.exists():
                raise CheckpointError(
                    f"manifest {path} references shard checkpoint "
                    f"{shard_path.name}, which is missing — a partial resume "
                    "would silently restart that shard from zero; delete the "
                    "manifest and remaining shard files to start over"
                )
    else:
        for shard, shard_path, fp in zip(shards, shard_paths, fingerprints):
            platform, _, accumulator = build_shard_replay(spec, shard)
            write_checkpoint(shard_path, platform, accumulator, 0, fp)
        write_manifest(path, workers, partition, fingerprint)
    return shards, shard_paths, fingerprints, resumed


def run_sharded_checkpointed(
    trace: ProductionTrace,
    path: str | Path,
    spec: ShardReplaySpec | None = None,
    workers: int = 1,
    fingerprint: dict | None = None,
    keep: bool = False,
    journal: str | Path | None = None,
    trace_sample: float = 0.0,
) -> WindowedSummary:
    """:func:`replay_sharded` with per-shard durable checkpoints.

    Each worker checkpoints its own event loop + accumulator at window
    boundaries (``<path>.shard-K-of-N.json``), coordinated by the
    manifest at ``path`` (see :func:`prepare_sharded_checkpoint`).  If
    the manifest exists the run *resumes*: the deterministic per-shard
    streams are recompiled, each worker restores its last boundary state
    and skips its consumed prefix, and the per-shard summaries merge
    through :meth:`WindowedSummary.merge` — bit-identical to an
    uninterrupted run at any worker count, which is itself bit-identical
    to the unsharded :func:`replay_shard` (tails flush at natural
    expiry, exactly like :func:`replay_sharded`).  On success every
    checkpoint file is removed unless ``keep``.

    ``journal`` makes the run journaled: every worker writes its own
    ``<journal>.shard-K-of-N.jsonl`` (resumed and truncated in lockstep
    with its checkpoint), and after the summary merge the coordinator
    merges them into one window-ordered journal at ``journal`` —
    row-identical to the journal of an uninterrupted run at the same
    worker count.  (Window/shed/scale/provision rows are
    partition-independent like the summary itself; sampled *span* rows
    key off each shard's own stream position, so the sampled subset —
    not any sampled row's content — varies with the partition.)
    ``trace_sample`` is the span sampling rate.
    """
    spec = spec if spec is not None else ShardReplaySpec()
    path = Path(path)
    shards, shard_paths, fingerprints, _ = prepare_sharded_checkpoint(
        trace, path, spec, workers, fingerprint
    )
    journal_paths: list[str | None] = [None] * workers
    if journal is not None:
        journal = Path(journal)
        journal_paths = [
            str(shard_journal_path(journal, shard, workers))
            for shard in range(workers)
        ]
    if workers == 1:
        summaries = [
            checkpointed_shard(
                spec,
                shards[0],
                str(shard_paths[0]),
                fingerprints[0],
                journal_paths[0],
                trace_sample,
            )
        ]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            summaries = list(
                pool.map(
                    checkpointed_shard,
                    [spec] * workers,
                    shards,
                    [str(shard_path) for shard_path in shard_paths],
                    fingerprints,
                    journal_paths,
                    [trace_sample] * workers,
                )
            )
    summary = WindowedSummary.merge(summaries)
    if journal is not None:
        merge_journals(
            journal_paths,
            journal,
            window_s=spec.window_s,
            fingerprint=fingerprint,
            trace_sample=trace_sample,
        )
    if not keep:
        for shard_path in shard_paths:
            shard_path.unlink(missing_ok=True)
        if journal is not None:
            for journal_path in journal_paths:
                Path(journal_path).unlink(missing_ok=True)
        path.unlink(missing_ok=True)
    return summary
