"""Sharded multi-process trace replay: split by app, replay, merge exactly.

A compiled trace drives one :class:`~repro.faas.cluster.ClusterPlatform`
event loop on one core.  But the cluster gives every application its own
container fleet, and fleets share *no* capacity, no queue, no RNG stream
— each app's event sequence is a pure function of that app's arrivals.
A single-cluster replay therefore factorizes: split the trace's apps into
shards (a stable hash of the app name), replay each shard on its own
platform — in its own *process* — and merge the per-shard windowed
summaries.  The merge is **bit-identical** to the unsharded replay
because:

* per-app arrival streams are independent by construction
  (:func:`~repro.workloads.replay.compile_trace` derives one RNG per
  (app, window, handler));
* container ids/sequence numbers only break ties *within* a fleet, and
  relative order within a fleet is preserved under sharding;
* every float the summary reports is accumulated **per app** inside the
  :class:`~repro.metrics.WindowAccumulator` and recombined in one
  canonical order by :meth:`~repro.metrics.WindowedSummary.merge`;
* provisioned tails are flushed at the container's natural keep-alive
  expiry (``flush_at=math.inf``) rather than at the shard's last event
  time, which would differ between shards and the full run.

``tests/workloads/test_shard.py`` pins the exactness property for
arbitrary shard counts and app partitions; the federation is *not*
shardable this way (regions share routing state), so sharding is a
single-cluster capability.

Process orchestration uses :class:`concurrent.futures.ProcessPoolExecutor`;
everything a worker needs (the sub-trace, the :class:`ShardReplaySpec`)
is a plain picklable dataclass.  Throughput at 1/2/4 workers is measured
by ``benchmarks/test_perf_replay_throughput.py`` into
``BENCH_replay_throughput.json``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.common.errors import WorkloadError
from repro.common.rng import derive_seed
from repro.faas.cluster import ClusterPlatform, FleetConfig
from repro.faas.replaydeploy import deploy_trace
from repro.faas.sim import SimPlatformConfig
from repro.metrics import PricingModel, QoSClass, WindowAccumulator, WindowedSummary
from repro.workloads.replay import ArrivalModel, assign_qos, compile_trace
from repro.workloads.trace import ProductionTrace


def shard_index(app: str, shards: int) -> int:
    """The shard a given application hashes to.

    Uses the repo's process-stable BLAKE2 hash (never Python's ``hash``),
    so the same app lands on the same shard in every worker process and
    on every machine.
    """
    if shards < 1:
        raise WorkloadError(f"need at least one shard: {shards}")
    return derive_seed(0, "shard", app) % shards


def shard_trace(trace: ProductionTrace, shards: int) -> list[ProductionTrace]:
    """Split a trace into ``shards`` app-disjoint sub-traces by app hash.

    Every app appears in exactly one shard (some shards may be empty for
    small fleets); window geometry is shared.  App objects are shared,
    not copied — traces are read-only inputs to replay.
    """
    out = [ProductionTrace(window_hours=trace.window_hours) for _ in range(shards)]
    for app in trace.apps:
        out[shard_index(app.name, shards)].apps.append(app)
    return out


@dataclass(frozen=True)
class ShardReplaySpec:
    """Everything one shard worker needs to replay its sub-trace.

    A frozen, picklable bundle of the replay parameters every shard must
    agree on — one spec drives all workers, so shards cannot diverge in
    configuration.

    Attributes:
        platform: Platform cost constants for the per-shard cluster.
        fleet: Fleet/autoscaler configuration deployed for every app.
        seed: Cluster seed (jitter streams derive per app, so sharding
            never perturbs them).
        replay_seed: Seed for :func:`~repro.workloads.replay.compile_trace`.
        model: Intra-window arrival model (``None`` = uniform).
        scale: Trace volume multiplier.
        start_s: Replay start offset on the virtual clock.
        window_s: Accumulator window size in seconds.
        pricing: Pricing model for the windowed cost series.
        exec_ms: Trace-app handler self-time
            (see :func:`repro.faas.replaydeploy.trace_app_config`).
        base_memory_mb: Trace-app container footprint.
        qos: QoS classes to tag arrivals with
            (:func:`~repro.workloads.replay.assign_qos`); ``None`` leaves
            the stream untagged.  Tagging is per-app-seeded, so it is
            partition-independent and the merge stays bit-identical.
        qos_seed: Seed for the per-app QoS assignment draws.
    """

    platform: SimPlatformConfig = SimPlatformConfig(record_traces=False)
    fleet: FleetConfig = FleetConfig()
    seed: int = 0
    replay_seed: int = 0
    model: ArrivalModel | None = None
    scale: float = 1.0
    start_s: float = 0.0
    window_s: float = 3600.0
    pricing: PricingModel | None = None
    exec_ms: float = 2.0
    base_memory_mb: float = 96.0
    qos: tuple[QoSClass, ...] | None = None
    qos_seed: int = 0


def replay_shard(spec: ShardReplaySpec, trace: ProductionTrace) -> WindowedSummary:
    """Replay one (sub-)trace on a fresh cluster; the shard worker body.

    Also the one-shard path of :func:`replay_sharded`, so a 1-worker run
    and an N-worker run execute literally the same code per shard.
    Flushes provisioned tails at natural expiry (see module docstring).
    """
    platform = ClusterPlatform(
        config=spec.platform, fleet=spec.fleet, seed=spec.seed, qos=spec.qos
    )
    deploy_trace(
        platform, trace, exec_ms=spec.exec_ms, base_memory_mb=spec.base_memory_mb
    )
    stream = compile_trace(
        trace,
        model=spec.model,
        seed=spec.replay_seed,
        start_s=spec.start_s,
        scale=spec.scale,
    )
    if spec.qos is not None:
        stream = assign_qos(stream, spec.qos, seed=spec.qos_seed)
    accumulator = WindowAccumulator(window_s=spec.window_s, pricing=spec.pricing)
    return platform.run_stream(stream, accumulator, flush_at=math.inf)


def replay_sharded(
    trace: ProductionTrace,
    spec: ShardReplaySpec | None = None,
    workers: int = 1,
) -> WindowedSummary:
    """Replay ``trace`` across ``workers`` processes; merge exactly.

    ``workers=1`` runs inline (no pool) but through the identical
    per-shard code path, so scaling the worker count never changes the
    result — only the wall time.  Empty shards (hash collisions on small
    fleets) are skipped.
    """
    spec = spec if spec is not None else ShardReplaySpec()
    shards = [shard for shard in shard_trace(trace, workers) if shard.apps]
    if not shards:
        shards = [ProductionTrace(window_hours=trace.window_hours)]
    if workers == 1 or len(shards) == 1:
        summaries = [replay_shard(spec, shard) for shard in shards]
    else:
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            summaries = list(pool.map(replay_shard, [spec] * len(shards), shards))
    return WindowedSummary.merge(summaries)
