"""Streaming trace replay: lazy arrival streams from production traces.

:class:`~repro.workloads.trace.ProductionTrace` describes a fleet as
*windowed invocation counts* — per app, per 12-hour window, per handler.
The simulators consume *arrivals* — globally time-ordered ``(second, app,
entry)`` events.  This module compiles the former into the latter without
ever materializing the full request list, which is what lets a multi-day,
million-request trace drive :class:`~repro.faas.cluster.ClusterPlatform`
or :class:`~repro.faas.region.RegionFederation` at bounded memory:

* **Intra-window arrival models** (:class:`ArrivalModel`) expand one
  window's count into arrival times: :class:`UniformArrivals` (order
  statistics of i.i.d. uniforms — a Poisson process conditioned on the
  count), :class:`PoissonArrivals` (an *unconditioned* Poisson process at
  the window's mean rate, so per-window volumes wobble like real
  traffic), and :class:`DiurnalArrivals` (intensity modulated by the time
  of day, so a 12-hour window is front- or back-loaded depending on where
  it sits in the diurnal cycle).
* **Lazy compilation** (:func:`compile_trace`): the shared window grid
  is expanded one window at a time — every app's arrivals for the
  window, concatenated and sorted into one globally non-decreasing
  stream.  Peak memory is O(one window's arrivals across apps), never
  O(total requests).
* **Region assignment** (:class:`RegionAssigner`): :func:`assign_regions`
  tags each event with an origin region — hash-affinity (stable app →
  home-region mapping), popularity-weighted (regions draw apps in
  proportion to configured weights), or an explicit map — producing the
  ``(at, app, entry, origin)`` stream the federation's streaming path
  consumes.
* **QoS assignment** (:func:`assign_qos`): tags each event with a QoS
  class name drawn in proportion to the classes' arrival weights, with
  one seeded RNG per app so the tagging is shard-exact.  Applied before
  :func:`assign_regions`, so a fully tagged stream reads
  ``(at, app, entry, origin, qos)``.
Deploying the trace's synthetic apps onto a platform is the job of
:mod:`repro.faas.replaydeploy` (``trace_app_config`` / ``deploy_trace``
/ ``expose_trace``) — this module stays below the ``faas`` layer and
never imports it.

Everything is deterministic: per-(app, window, handler) RNGs derive from
the replay seed by label, so adding an app or reordering handlers never
perturbs another app's arrivals, and identical seeds reproduce identical
streams event-for-event.
"""

from __future__ import annotations

import math
import os
import sys
import time
from dataclasses import dataclass
from itertools import accumulate
from typing import ClassVar, Iterable, Iterator, Mapping, Protocol, runtime_checkable

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG, derive_seed
from repro.metrics import QoSClass
from repro.workloads.trace import ProductionTrace

#: One compiled arrival: ``(arrival_s, app, entry)``.
ReplayEvent = tuple[float, str, str]
#: A region-tagged arrival: ``(arrival_s, app, entry, origin_region)``.
TaggedReplayEvent = tuple[float, str, str, str]


# -- the optional-numpy seam -------------------------------------------------
#
# numpy is an *optional* accelerator (install as ``repro[fast]``): every
# arrival model keeps a pure-python ``_times_python`` body that is the
# semantic definition, and a ``_times_numpy`` body that batches the same
# draws through numpy — producing bit-identical timestamps in identical
# order (pinned by ``tests/workloads/test_compile_vectorized.py``).  The
# single seam below resolves the dependency: absent numpy (or with
# ``SLIMSTART_NO_NUMPY`` set, the CI escape hatch for exercising the
# fallback on machines that do have numpy), compilation silently runs
# the pure-python path — no error, no warning, same stream.

#: Below a per-(app, window, handler) count each model's ``vector_min``
#: the pure-python path is used even when numpy is available: re-keying
#: the shared RandomState plus the array round-trips cost a few dozen
#: draws' worth of time, and both paths are bit-identical anyway, so
#: tiny windows stay on the allocation-free python body.  The default
#: here is overridden per model at its measured crossover — diurnal
#: wins almost immediately (two draws plus a weighted bisect per
#: arrival in python), uniform and poisson only past ~200 draws.
_VECTOR_MIN = 192

_UNSET = object()
_numpy_module = _UNSET


def _load_numpy():
    """Resolve the optional numpy dependency (``None`` when unavailable).

    The import result is cached for the process; the ``SLIMSTART_NO_NUMPY``
    environment check is per call, so tests can flip the fallback on
    without re-importing the module.
    """
    if os.environ.get("SLIMSTART_NO_NUMPY"):
        return None
    global _numpy_module
    if _numpy_module is _UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


_np_state = None


def _np_rng(np, rng: SeededRNG):
    """A numpy ``RandomState`` emitting ``rng``'s exact double stream.

    Both CPython's ``random.Random`` and numpy's legacy ``RandomState``
    are MT19937 generators whose ``random()``/``random_sample()`` derive
    doubles with the same 53-bit recipe, and both key-schedule an int
    seed through the reference ``init_by_array`` — CPython splits the
    seed into 32-bit little-endian words internally, numpy takes the
    word list verbatim (a Python *list*, never an ndarray or scalar:
    those route through numpy's other seeding paths, which do NOT
    match).  Re-keying one shared ``RandomState`` this way is ~6x
    cheaper than transplanting the 624-word internal state per call,
    which is what keeps the vectorized bodies profitable at the small
    per-(app, window, handler) counts real traces produce.

    The equivalence holds because arrival models receive *freshly
    seeded* generators (the pure-function contract on
    :class:`ArrivalModel`, upheld by :func:`compile_trace`); a generator
    that had already been drawn from would no longer be a pure function
    of its seed.
    """
    global _np_state
    state = _np_state
    if state is None:
        state = _np_state = np.random.RandomState(0)
    seed = abs(rng.seed)
    words = []
    while seed:
        words.append(seed & 0xFFFFFFFF)
        seed >>= 32
    state.seed(words or [0])
    return state


# -- intra-window arrival models -------------------------------------------


@runtime_checkable
class ArrivalModel(Protocol):
    """Expands one window's invocation count into arrival times.

    Implementations return *sorted* times in ``[start_s, start_s +
    window_s)`` and must be pure functions of the RNG handed to them —
    the replay compiler derives one RNG per (app, window, handler), so a
    model never observes global state.
    """

    name: str

    def times(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        ...  # pragma: no cover - protocol stub


def _clip(value: float, start_s: float, window_s: float) -> float:
    """Keep float arithmetic from leaking an arrival past the window end."""
    end = start_s + window_s
    return min(max(value, start_s), math.nextafter(end, start_s))


@dataclass(frozen=True)
class UniformArrivals:
    """I.i.d. uniform arrival times — Poisson conditioned on the count.

    Exactly ``count`` arrivals per window, spread without intra-window
    structure; the faithful reading of "this window saw N invocations".
    """

    name: str = "uniform"
    vector_min: ClassVar[int] = _VECTOR_MIN

    def times(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        np = _load_numpy()
        if np is not None and count >= self.vector_min:
            return self._times_numpy(np, rng, start_s, window_s, count)
        return self._times_python(rng, start_s, window_s, count)

    def _times_python(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        # Bit-identical to sorting per-draw _clip()ed values, cheaper: a
        # uniform draw can never fall below ``start_s``, and clipping to
        # the largest float below the window end is a monotone map, so it
        # commutes with sorting — only the sorted tail can need it.
        end = start_s + window_s
        values = rng.uniform_list(start_s, end, count)
        values.sort()
        limit = math.nextafter(end, start_s)
        for index in range(count - 1, -1, -1):
            if values[index] > limit:
                values[index] = limit
            else:
                break
        return values

    def _times_numpy(
        self, np, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        # CPython's uniform(a, b) is ``a + (b - a) * random()``; the
        # elementwise form below evaluates the identical IEEE expression
        # on the identical doubles (see _np_rng), so each value — and
        # after sorting, the whole list — matches _times_python bit for
        # bit.  The tail clip commutes with np.minimum on a sorted array
        # because every over-limit value sits in the contiguous tail.
        end = start_s + window_s
        values = start_s + (end - start_s) * _np_rng(np, rng).random_sample(count)
        values.sort()
        limit = math.nextafter(end, start_s)
        return np.minimum(values, limit).tolist()


@dataclass(frozen=True)
class PoissonArrivals:
    """An unconditioned Poisson process at the window's mean rate.

    The window count becomes an *intensity* (``count / window_s``); the
    realized number of arrivals is Poisson-distributed around it, so
    replays carry the sampling noise production traffic would.
    """

    name: str = "poisson"
    # The exponential map stays per-element python (see _times_numpy),
    # so only the uniform draws vectorize — the crossover sits later.
    vector_min: ClassVar[int] = 224

    def times(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        np = _load_numpy()
        if np is not None and count >= self.vector_min:
            return self._times_numpy(np, rng, start_s, window_s, count)
        return self._times_python(rng, start_s, window_s, count)

    def _times_python(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        if count <= 0:
            return []
        rate = count / window_s
        times: list[float] = []
        now = start_s
        while True:
            now += rng.expovariate(rate)
            if now >= start_s + window_s:
                return times
            times.append(now)

    def _times_numpy(
        self, np, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        if count <= 0:
            return []
        # Uniform draws batch through numpy, but the exponential map
        # stays per-element in Python: numpy's vectorized log differs
        # from math.log in the last ulp on some inputs (SIMD codepaths),
        # and the running sum must accumulate in CPython evaluation
        # order anyway.  CPython's expovariate(lambd) is
        # ``-log(1.0 - random()) / lambd`` — replicated verbatim below.
        rate = count / window_s
        end = start_s + window_s
        state = _np_rng(np, rng)
        log = math.log
        times: list[float] = []
        append = times.append
        now = start_s
        # Expected draws ≈ count (rate * window_s); the refill chunk
        # covers the overwhelmingly common case in one batch.
        chunk = count + 16
        while True:
            for u in state.random_sample(chunk).tolist():
                now += -log(1.0 - u) / rate
                if now >= end:
                    return times
                append(now)
            chunk = max(16, count >> 3)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Diurnal ramp: intensity follows the time of day.

    Arrival intensity within the window is ``1 + amplitude * sin(2π *
    (t - peak_hour·3600) / period)`` (floored at a small positive value),
    evaluated on ``sub_bins`` sub-intervals; each of the window's
    ``count`` arrivals picks a sub-interval in proportion to its
    intensity, then lands uniformly inside it.  A 12-hour trace window
    therefore front- or back-loads depending on where it sits in the
    day, and consecutive windows join into a continuous diurnal wave.
    """

    amplitude: float = 0.8
    period_s: float = 86_400.0
    peak_hour: float = 14.0  # intensity peaks at 14:00 trace time
    sub_bins: int = 24
    name: str = "diurnal"
    # Each python-path arrival costs a weighted bisect plus two draws,
    # so the batched body wins from the first handful of arrivals.
    vector_min: ClassVar[int] = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1]: {self.amplitude}")
        if self.period_s <= 0:
            raise WorkloadError(f"period must be positive: {self.period_s}")
        if self.sub_bins < 1:
            raise WorkloadError(f"need at least one sub-bin: {self.sub_bins}")

    def _intensity(self, at_s: float) -> float:
        phase = 2.0 * math.pi * (at_s - self.peak_hour * 3600.0) / self.period_s
        # The peak lands at peak_hour (cos of the offset phase).
        return max(1e-6, 1.0 + self.amplitude * math.cos(phase))

    def times(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        np = _load_numpy()
        if np is not None and count >= self.vector_min:
            return self._times_numpy(np, rng, start_s, window_s, count)
        return self._times_python(rng, start_s, window_s, count)

    def _times_python(
        self, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        if count <= 0:
            return []
        bin_s = window_s / self.sub_bins
        centers = [start_s + (index + 0.5) * bin_s for index in range(self.sub_bins)]
        weights = [self._intensity(center) for center in centers]
        bins = list(range(self.sub_bins))
        times = []
        for _ in range(count):
            index = rng.weighted_choice(bins, weights)
            low = start_s + index * bin_s
            times.append(_clip(rng.uniform(low, low + bin_s), start_s, window_s))
        times.sort()
        return times

    def _times_numpy(
        self, np, rng: SeededRNG, start_s: float, window_s: float, count: int
    ) -> list[float]:
        if count <= 0:
            return []
        bin_s = window_s / self.sub_bins
        centers = [start_s + (index + 0.5) * bin_s for index in range(self.sub_bins)]
        weights = [self._intensity(center) for center in centers]
        # The python path draws two doubles per arrival — one for the
        # weighted bin choice, one for the uniform placement — so one
        # batch of 2*count doubles splits into the even (choice) and odd
        # (placement) subsequences.  Each step replicates a CPython
        # internal exactly: random.choices builds cumulative weights and
        # bisects ``random() * total`` with hi = n - 1 (np.searchsorted
        # side='right' is bisect.bisect, capped to the same hi), and
        # uniform(low, high) is ``low + (high - low) * random()`` — note
        # ``(low + bin_s) - low`` is NOT necessarily bin_s in floats, so
        # the subtraction is kept, not simplified away.
        cum_weights = list(accumulate(weights))
        total = cum_weights[-1] + 0.0
        draws = _np_rng(np, rng).random_sample(2 * count)
        index = np.minimum(
            np.searchsorted(np.asarray(cum_weights), draws[0::2] * total, side="right"),
            self.sub_bins - 1,
        )
        low = start_s + index * bin_s
        high = low + bin_s
        values = low + (high - low) * draws[1::2]
        limit = math.nextafter(start_s + window_s, start_s)
        values = np.minimum(np.maximum(values, start_s), limit)
        values.sort()
        return values.tolist()


#: CLI-facing arrival-model registry (see ``slimstart replay``).
ARRIVAL_MODEL_NAMES = ("uniform", "poisson", "diurnal")


def make_arrival_model(name: str) -> ArrivalModel:
    """Build an intra-window arrival model from its CLI name."""
    if name == "uniform":
        return UniformArrivals()
    if name == "poisson":
        return PoissonArrivals()
    if name == "diurnal":
        return DiurnalArrivals()
    raise WorkloadError(
        f"unknown arrival model: {name!r} (choose from {ARRIVAL_MODEL_NAMES})"
    )


# -- trace compilation ------------------------------------------------------


def compile_trace(
    trace: ProductionTrace,
    model: ArrivalModel | None = None,
    seed: int = 0,
    start_s: float = 0.0,
    scale: float = 1.0,
) -> Iterator[ReplayEvent]:
    """Compile a trace into a lazy, globally time-ordered arrival stream.

    Yields ``(arrival_s, app, entry)`` with non-decreasing arrival times.
    Each app advances one window at a time through ``model`` (default
    :class:`UniformArrivals`); ``scale`` multiplies every window count
    (deterministic rounding), so the same trace replays at 1 % volume for
    a smoke test or full volume for the real experiment.  The result is a
    generator — peak memory is one window's arrivals across the apps,
    regardless of the trace's total request count.

    All apps share one window grid, so the stream is produced one window
    at a time: every app's expansion for the window is concatenated and
    sorted once.  That is order-identical to ``heapq.merge`` over
    per-app generators (the total order on ``(at, app_index, entry)``
    breaks ties the same way) at a fraction of the per-event overhead —
    the compiler feeds the cluster's event loop, so its cost lands
    directly on replay throughput.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    arrival_model = model if model is not None else UniformArrivals()
    window_s = trace.window_hours * 3600.0
    names = [app.name for app in trace.apps]
    window_count = max((len(app.windows) for app in trace.apps), default=0)
    for window_index in range(window_count):
        window_start = start_s + window_index * window_s
        batch: list[tuple] = []
        append = batch.append
        for index, app in enumerate(trace.apps):
            if window_index >= len(app.windows):
                continue
            counts = app.windows[window_index]
            for entry in app.handlers:  # stable handler order
                count = int(round(counts.get(entry, 0) * scale))
                if count <= 0:
                    continue
                rng = SeededRNG(
                    derive_seed(seed, "replay", app.name, window_index, entry)
                )
                for at in arrival_model.times(rng, window_start, window_s, count):
                    append((at, index, entry))
        batch.sort()
        for at, index, entry in batch:
            yield (at, names[index], entry)


def as_paths(
    stream: Iterable[ReplayEvent] | Iterable[TaggedReplayEvent],
) -> Iterator[tuple]:
    """Project a replay stream onto conventional gateway URLs.

    ``(at, app, entry)`` becomes ``(at, "/<app>/<entry>")`` — the shape
    :meth:`repro.faas.gateway.Gateway.submit_stream` consumes — and any
    trailing fields (e.g. the origin region added by
    :func:`assign_regions`) pass through unchanged, so the same helper
    feeds the federated gateway's stream path.
    """
    for item in stream:
        at, app, entry = item[0], item[1], item[2]
        yield (at, f"/{app}/{entry}", *item[3:])


# -- region assignment ------------------------------------------------------


@runtime_checkable
class RegionAssigner(Protocol):
    """Maps an application to the region its traffic originates in.

    Assignment is per *app*, not per request: a production tenant's
    clients sit somewhere, so all of an app's arrivals share one origin
    (routing policies may still serve them elsewhere).  Implementations
    must be deterministic in the app name alone.
    """

    name: str

    def region_for(self, app: str) -> str:
        ...  # pragma: no cover - protocol stub


def _check_regions(regions: tuple[str, ...]) -> tuple[str, ...]:
    if not regions:
        raise WorkloadError("assigner needs at least one region")
    if len(set(regions)) != len(regions):
        raise WorkloadError(f"duplicate regions: {regions}")
    return regions


class HashAffinity:
    """Stable hash of the app name picks its home region.

    Independent of app order and of the other apps in the trace: adding
    an app never moves an existing one.
    """

    name = "hash-affinity"

    def __init__(self, regions: Iterable[str]) -> None:
        self.regions = _check_regions(tuple(regions))

    def region_for(self, app: str) -> str:
        return self.regions[derive_seed(0, "affinity", app) % len(self.regions)]


class PopularityWeighted:
    """Regions draw apps in proportion to configured popularity weights.

    Models a skewed user base (most tenants sit in the big region).  The
    draw is seeded per app, so assignment is stable under app reordering.
    """

    name = "popularity-weighted"

    def __init__(
        self,
        regions: Iterable[str],
        weights: Iterable[float] | None = None,
        seed: int = 0,
    ) -> None:
        self.regions = _check_regions(tuple(regions))
        self.weights = (
            tuple(weights) if weights is not None else (1.0,) * len(self.regions)
        )
        if len(self.weights) != len(self.regions):
            raise WorkloadError(
                f"{len(self.regions)} regions but {len(self.weights)} weights"
            )
        if any(weight < 0 for weight in self.weights) or sum(self.weights) <= 0:
            raise WorkloadError(f"invalid region weights: {self.weights}")
        self.seed = seed

    def region_for(self, app: str) -> str:
        rng = SeededRNG(derive_seed(self.seed, "assign", app))
        return rng.weighted_choice(self.regions, self.weights)


class ExplicitMap:
    """A hand-written app → region map, with an optional default."""

    name = "explicit"

    def __init__(self, mapping: Mapping[str, str], default: str | None = None) -> None:
        self.mapping = dict(mapping)
        self.default = default

    def region_for(self, app: str) -> str:
        region = self.mapping.get(app, self.default)
        if region is None:
            raise WorkloadError(f"no region assigned for app {app!r}")
        return region


def assign_regions(
    stream: Iterable[ReplayEvent], assigner: RegionAssigner
) -> Iterator[TaggedReplayEvent]:
    """Tag each replay event with its app's origin region (lazily).

    The per-app assignment is memoized, so the assigner is consulted once
    per app — O(apps) state on top of the stream's own bounded buffer.
    The origin is *inserted* at index 3; trailing fields (e.g. the QoS
    class added by :func:`assign_qos` — apply it *before* this one) shift
    right, producing the ``(at, app, entry, origin, qos)`` shape the
    federation's streaming path consumes.
    """
    homes: dict[str, str] = {}
    for item in stream:
        app = item[1]
        home = homes.get(app)
        if home is None:
            home = homes[app] = assigner.region_for(app)
        yield (item[0], app, item[2], home, *item[3:])


# -- QoS assignment ----------------------------------------------------------


def assign_qos(
    stream: Iterable[ReplayEvent],
    classes: Iterable[QoSClass],
    seed: int = 0,
) -> Iterator[tuple]:
    """Tag each replay event with a QoS class name (lazily, seeded).

    ``classes`` are :class:`repro.metrics.QoSClass` specs; each arrival
    draws a class in proportion to the classes' ``arrival_weight``.  The
    draw uses one RNG per *app* (``derive_seed(seed, "qos", app)``),
    consumed in that app's arrival order — an order preserved by app-hash
    sharding (:mod:`repro.workloads.shard`), so a sharded replay assigns
    every request the same class the unsharded replay would.  Yields
    ``(at, app, entry, qos_name)``; apply *before* :func:`assign_regions`
    when combining with a multi-region replay.
    """
    specs = tuple(classes)
    if not specs:
        raise WorkloadError("assign_qos needs at least one QoS class")
    names = [spec.name for spec in specs]
    weights = [spec.arrival_weight for spec in specs]
    total = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    rngs: dict[str, SeededRNG] = {}
    for at, app, entry in stream:
        rng = rngs.get(app)
        if rng is None:
            rng = rngs[app] = SeededRNG(derive_seed(seed, "qos", app))
        draw = rng.random() * total
        for index, bound in enumerate(cumulative):
            if draw < bound:
                yield (at, app, entry, names[index])
                break
        else:  # float-edge: draw == total
            yield (at, app, entry, names[-1])


def progress_stream(
    stream: Iterable[tuple],
    window_s: float,
    label: str = "",
    out=None,
) -> Iterator[tuple]:
    """Pass a replay stream through, heartbeating to stderr at boundaries.

    An opt-in diagnostic for long replays (``slimstart replay
    --progress``): every time an arrival crosses a ``window_s`` boundary
    one line — windows flushed so far, events fed, cumulative events/s of
    wall clock — is written to ``out`` (default ``sys.stderr``) and
    flushed.  The events themselves pass through untouched, in order, so
    wrapping a stream can never change a replay result; wall-clock
    timing stays out of the virtual-time event loop entirely.
    """
    if window_s <= 0:
        raise WorkloadError(f"progress window must be positive: {window_s}")
    sink = sys.stderr if out is None else out
    prefix = f"{label}: " if label else ""
    started = time.perf_counter()
    boundary: int | None = None
    windows = 0
    count = 0
    for item in stream:
        index = int(item[0] // window_s)
        if boundary is None:
            boundary = index
        elif index > boundary:
            windows += index - boundary
            boundary = index
            elapsed = time.perf_counter() - started
            rate = count / elapsed if elapsed > 0 else 0.0
            print(
                f"{prefix}{windows} window(s) flushed, "
                f"{count} events, {rate:.0f} events/s",
                file=sink,
                flush=True,
            )
        count += 1
        yield item
