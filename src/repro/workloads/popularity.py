"""Entry-point popularity models.

The paper's motivation (§II-C, Fig. 3) rests on skewed entry-point usage:
most serverless apps expose several handler functions but a few dominate
invocations.  :class:`EntryMix` captures one app's popularity vector and
generates deterministic invocation sequences from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRNG


@dataclass(frozen=True)
class EntryMix:
    """A normalized popularity distribution over entry points."""

    entries: tuple[str, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.entries) != len(self.weights):
            raise WorkloadError("entries and weights must align")
        if not self.entries:
            raise WorkloadError("entry mix may not be empty")
        if any(weight < 0 for weight in self.weights):
            raise WorkloadError("negative popularity weight")
        total = sum(self.weights)
        if total <= 0:
            raise WorkloadError("popularity weights must sum to > 0")

    def probability(self, entry: str) -> float:
        total = sum(self.weights)
        for name, weight in zip(self.entries, self.weights):
            if name == entry:
                return weight / total
        raise WorkloadError(f"unknown entry {entry!r}")

    def sample_sequence(self, count: int, seed: int) -> list[str]:
        """Deterministic i.i.d. entry sequence of length ``count``."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative: {count}")
        rng = SeededRNG(seed)
        return [
            rng.weighted_choice(self.entries, self.weights) for _ in range(count)
        ]

    def proportional_sequence(self, count: int) -> list[str]:
        """Largest-remainder quota sequence: exact expected proportions.

        Used by measurement benches so the entry mix of a 500-request burst
        is identical before and after optimization (no sampling noise in
        the speedup comparison).
        """
        total = sum(self.weights)
        quotas = [count * weight / total for weight in self.weights]
        counts = [int(quota) for quota in quotas]
        remainder = count - sum(counts)
        by_fraction = sorted(
            range(len(self.entries)),
            key=lambda index: -(quotas[index] - counts[index]),
        )
        for index in by_fraction[:remainder]:
            counts[index] += 1
        sequence: list[str] = []
        for entry, entry_count in zip(self.entries, counts):
            sequence.extend([entry] * entry_count)
        return sequence

    def rare_entries(self, threshold: float = 0.02) -> list[str]:
        """Entries whose popularity falls below ``threshold``."""
        total = sum(self.weights)
        return [
            entry
            for entry, weight in zip(self.entries, self.weights)
            if weight / total < threshold
        ]


def zipf_mix(entries: list[str], exponent: float = 1.2, seed: int = 0) -> EntryMix:
    """Zipf-skewed mix over ``entries`` (rank order = given order)."""
    if not entries:
        raise WorkloadError("need at least one entry")
    rng = SeededRNG(seed)
    weights = rng.zipf_weights(len(entries), exponent=exponent)
    return EntryMix(entries=tuple(entries), weights=tuple(weights))


def uniform_mix(entries: list[str]) -> EntryMix:
    return EntryMix(entries=tuple(entries), weights=tuple([1.0] * len(entries)))
