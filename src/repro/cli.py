"""``slimstart`` command-line interface.

Sub-commands mirror the tool's workflow plus the evaluation harness:

* ``slimstart apps``                      — list the 22 benchmark apps
* ``slimstart report --app R-SA``         — profile one app on the
  simulator and print its SLIMSTART summary (Tables IV/V shape)
* ``slimstart cycle --app R-GB``          — full optimize cycle + speedups
* ``slimstart table2``                    — regenerate Table II
* ``slimstart cluster --app R-SA``        — replay Poisson traffic against
  a container fleet under a pluggable autoscaler (``--policy
  per-request|target-utilization|panic-window|predictive``, the last
  pre-warming ahead of a window-count forecast chosen via
  ``--forecaster ewma|holt-winters``) and print the cluster
  metrics (cold-start rate, queueing percentiles, GB-seconds, $-cost)
* ``slimstart regions --app R-SA``        — replay multi-region traffic
  across federated fleets under a latency-aware routing policy (and an
  autoscaler chosen via ``--scaling-policy``), printing per-region
  metrics, per-region $-cost, and the routing summary
* ``slimstart replay --apps 24``          — stream a production-shaped
  trace fleet (Zipf handlers, workload-shift events) through the cluster
  simulator — or, with ``--regions``, the federation — at bounded
  memory, printing the per-window time series (cold-start rate, p95
  queueing, shed rate, GB-seconds, $) that makes shift transients
  visible
* ``slimstart optimize --workspace DIR``  — rewrite a real workspace from
  a plan JSON file
* ``slimstart obs summarize out.jsonl``   — query the append-only run
  journal a journaled replay wrote (``slimstart replay --journal
  out.jsonl``): ``query`` filters rows by kind/app/time window, ``tail``
  shows the last events, ``summarize`` aggregates per-app and run
  totals — all stream-scanning at O(1) memory
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

from repro.apps import benchmark_apps
from repro.common.errors import ReproError, SpecError, WorkloadError
from repro.apps.catalog import APP_DEFINITIONS, app_by_key
from repro.apps.model import bench_platform_config, instantiate
from repro.core.pipeline import PipelineConfig, SlimStart
from repro.core.report import render_report
from repro.faas.autoscale import (
    SCALING_POLICY_NAMES,
    PanicWindow,
    TargetUtilization,
    make_scaling_policy,
)
from repro.faas.cluster import ClusterPlatform, FleetConfig, replay_cluster_workload
from repro.faas.forecast import FORECASTER_NAMES
from repro.faas.gateway import Gateway
from repro.faas.replaydeploy import deploy_trace, expose_trace
from repro.faas.snapshot import run_stream_checkpointed
from repro.metrics import (
    DEFAULT_PRICING,
    QOS_PRESETS,
    PricingModel,
    WindowAccumulator,
    parse_qos_mix,
)
from repro.faas.region import (
    POLICY_NAMES,
    FederatedGateway,
    RegionFederation,
    RegionTopology,
    make_policy,
    replay_federated_workload,
)
from repro.faas.sim import SimPlatform
from repro.obs import (
    JournalWriter,
    PhaseProfiler,
    query_rows,
    summarize_journal,
    tail_rows,
)
from repro.plan import DeferralPlan
from repro.workloads.arrival import poisson_schedule, regional_poisson_schedules
from repro.workloads.replay import (
    ARRIVAL_MODEL_NAMES,
    HashAffinity,
    PopularityWeighted,
    as_paths,
    assign_qos,
    assign_regions,
    compile_trace,
    make_arrival_model,
    progress_stream,
)
from repro.workloads.shard import (
    ShardReplaySpec,
    replay_sharded,
    run_sharded_checkpointed,
)
from repro.workloads.trace import TraceGenerator


def _build_tool(args: argparse.Namespace) -> SlimStart:
    return SlimStart(
        PipelineConfig(
            measure_cold_starts=args.cold_starts,
            measure_runs=args.runs,
        )
    )


def _profile_app(tool: SlimStart, key: str):
    app = instantiate(app_by_key(key))
    platform = SimPlatform(config=bench_platform_config())
    schedule = poisson_schedule(app.mix, rate_per_s=0.3, duration_s=3600.0, seed=7)
    config = app.sim_config()
    platform.deploy(config)
    bundle = tool.profile_simulated(platform, config, schedule)
    report = tool.analyze(bundle, tool.sim_attributor(config))
    return app, platform, config, report


def cmd_apps(args: argparse.Namespace) -> int:
    print(f"{'key':10s} {'suite':14s} {'libs':>5s} {'modules':>8s} {'depth':>6s}  name")
    for definition in APP_DEFINITIONS:
        app = instantiate(definition)
        print(
            f"{app.key:10s} {definition.suite:14s} {app.library_count:5d} "
            f"{app.module_count:8d} {app.average_depth:6.2f}  {app.name}"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    tool = _build_tool(args)
    _, _, _, report = _profile_app(tool, args.app)
    print(render_report(report))
    if args.plan_out:
        payload = {
            "app": report.plan.app,
            "deferred_handler_imports": sorted(report.plan.deferred_handler_imports),
            "deferred_library_edges": sorted(report.plan.deferred_library_edges),
        }
        with open(args.plan_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nplan written to {args.plan_out}")
    return 0


def cmd_cycle(args: argparse.Namespace) -> int:
    tool = _build_tool(args)
    app = instantiate(app_by_key(args.app))
    platform = SimPlatform(config=bench_platform_config())
    schedule = poisson_schedule(app.mix, rate_per_s=0.3, duration_s=3600.0, seed=7)
    result = tool.run_simulated_cycle(
        app.sim_config(), schedule, app.mix, platform=platform
    )
    print(render_report(result.report))
    speedups = result.speedups
    print()
    print(f"initialization speedup : {speedups.init_speedup:5.2f}x")
    print(f"end-to-end speedup     : {speedups.e2e_speedup:5.2f}x")
    print(f"p99 init speedup       : {speedups.p99_init_speedup:5.2f}x")
    print(f"p99 end-to-end speedup : {speedups.p99_e2e_speedup:5.2f}x")
    print(f"memory reduction       : {speedups.memory_reduction:5.2f}x")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    tool = _build_tool(args)
    header = (
        f"{'App':10s} {'Libs':>4s} {'Mods':>5s} {'Depth':>5s} "
        f"{'Init x':>7s} {'E2E x':>6s} {'p99 Init':>8s} {'p99 E2E':>8s}"
    )
    print(header)
    print("-" * len(header))
    for app in benchmark_apps():
        if app.definition.paper is None:
            continue
        platform = SimPlatform(config=bench_platform_config())
        schedule = poisson_schedule(
            app.mix, rate_per_s=0.3, duration_s=3600.0, seed=7
        )
        result = tool.run_simulated_cycle(
            app.sim_config(), schedule, app.mix, platform=platform
        )
        s = result.speedups
        print(
            f"{app.key:10s} {app.library_count:4d} {app.module_count:5d} "
            f"{app.average_depth:5.2f} {s.init_speedup:7.2f} {s.e2e_speedup:6.2f} "
            f"{s.p99_init_speedup:8.2f} {s.p99_e2e_speedup:8.2f}"
        )
    return 0


def _scaling_policy(args: argparse.Namespace, name: str):
    """Build the scaling policy, rejecting flags the policy ignores.

    Flags default to ``None`` so only explicitly-passed values reach the
    factory — a `--target` sweep that forgot `--policy` fails loudly
    instead of silently producing identical per-request runs.
    """
    utilization_flags = {"--target": args.target, "--grace": args.grace}
    panic_flags = {
        "--stable-window": args.stable_window,
        "--panic-window": args.panic_window,
        "--panic-threshold": args.panic_threshold,
    }
    forecast_flags = {
        "--forecaster": args.forecaster,
        "--season-windows": args.season_windows,
        "--forecast-window": args.forecast_window,
        "--prewarm-lead": args.prewarm_lead,
        "--prewarm-headroom": args.prewarm_headroom,
    }
    stray: dict = {}
    if name == "per-request":
        stray = {**utilization_flags, **panic_flags, **forecast_flags}
    elif name == "target-utilization":
        stray = {**panic_flags, **forecast_flags}
    elif name == "panic-window":
        stray = forecast_flags
    elif name == "predictive":
        # --target/--grace configure the reactive TargetUtilization base.
        stray = panic_flags
    stray_set = sorted(flag for flag, value in stray.items() if value is not None)
    if stray_set:
        raise SpecError(
            f"{', '.join(stray_set)} have no effect with scaling policy {name!r}"
        )
    overrides = {
        "target": args.target,
        "scale_to_zero_grace_s": args.grace,
        "stable_window_s": args.stable_window,
        "panic_window_s": args.panic_window,
        "panic_threshold": args.panic_threshold,
        "forecaster": args.forecaster,
        "season_windows": args.season_windows,
        "forecast_window_s": args.forecast_window,
        "prewarm_lead_s": args.prewarm_lead,
        "prewarm_headroom": args.prewarm_headroom,
    }
    return make_scaling_policy(
        name, **{key: value for key, value in overrides.items() if value is not None}
    )


def _pricing(args: argparse.Namespace) -> PricingModel:
    return PricingModel(
        per_gb_second=args.price_gb_second,
        per_million_requests=args.price_million_requests,
        cold_start_surcharge=args.cold_start_surcharge,
    )


def _add_fleet_arguments(
    parser: argparse.ArgumentParser, scaling_flag: str, max_containers: int
) -> None:
    """The fleet/autoscaler/pricing flag block every replay command shares.

    ``cluster``, ``regions``, and ``replay`` all configure the same
    :class:`FleetConfig` surface; this helper (plus :func:`_fleet_config`
    on the consuming side) keeps the plumbing in one place so a new flag
    lands on all three subcommands at once.
    """
    parser.add_argument("--max-containers", type=int, default=max_containers)
    parser.add_argument("--max-concurrency", type=int, default=1)
    parser.add_argument("--keep-alive", type=float, default=120.0)
    parser.add_argument(
        "--queue-capacity", type=int, default=None, help="bounded queue; sheds beyond"
    )
    parser.add_argument("--seed", type=int, default=7)
    _add_scaling_arguments(parser, scaling_flag)


def _fleet_config(args: argparse.Namespace) -> FleetConfig:
    """Build the fleet every subcommand deploys from the shared flags."""
    return FleetConfig(
        max_containers=args.max_containers,
        max_concurrency=args.max_concurrency,
        keep_alive_s=args.keep_alive,
        queue_capacity=args.queue_capacity,
        policy=_scaling_policy(args, args.scaling_policy),
    )


def _add_scaling_arguments(parser: argparse.ArgumentParser, flag: str) -> None:
    parser.add_argument(
        flag,
        dest="scaling_policy",
        choices=SCALING_POLICY_NAMES,
        default="per-request",
        help="autoscaler policy for every fleet",
    )
    parser.add_argument(
        "--target",
        type=float,
        default=None,
        help="target in-flight utilization, in (0, 1] "
        f"(default {TargetUtilization.target})",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=None,
        help="scale-to-zero grace: extra idle seconds for the last container "
        f"(default {TargetUtilization.scale_to_zero_grace_s})",
    )
    parser.add_argument(
        "--stable-window",
        type=float,
        default=None,
        help=f"panic-window: stable window, s (default {PanicWindow.stable_window_s})",
    )
    parser.add_argument(
        "--panic-window",
        type=float,
        default=None,
        help=f"panic-window: panic window, s (default {PanicWindow.panic_window_s})",
    )
    parser.add_argument(
        "--panic-threshold",
        type=float,
        default=None,
        help="panic-window: burst factor that triggers panic (> 1) "
        f"(default {PanicWindow.panic_threshold})",
    )
    parser.add_argument(
        "--forecaster",
        choices=FORECASTER_NAMES,
        default=None,
        help="predictive: window-count forecast model (default ewma)",
    )
    parser.add_argument(
        "--season-windows",
        type=int,
        default=None,
        help="predictive + holt-winters: observation windows per season "
        "(default 24; e.g. 24 one-hour windows for a diurnal day)",
    )
    parser.add_argument(
        "--forecast-window",
        type=float,
        default=None,
        help="predictive: observation window width, s (default 3600)",
    )
    parser.add_argument(
        "--prewarm-lead",
        type=float,
        default=None,
        help="predictive: seconds before a window boundary to start "
        "provisioning for the next window (default 0)",
    )
    parser.add_argument(
        "--prewarm-headroom",
        type=float,
        default=None,
        help="predictive: multiplier on the forecast demand (default 1.2)",
    )
    parser.add_argument(
        "--price-gb-second",
        type=float,
        default=DEFAULT_PRICING.per_gb_second,
        help="$ per provisioned GB-second",
    )
    parser.add_argument(
        "--price-million-requests",
        type=float,
        default=DEFAULT_PRICING.per_million_requests,
        help="$ per million served requests",
    )
    parser.add_argument(
        "--cold-start-surcharge",
        type=float,
        default=DEFAULT_PRICING.cold_start_surcharge,
        help="$ charged per container boot",
    )


def cmd_cluster(args: argparse.Namespace) -> int:
    app = instantiate(app_by_key(args.app))
    platform = ClusterPlatform(
        config=bench_platform_config(record_traces=False),
        fleet=_fleet_config(args),
        seed=args.seed,
    )
    config = app.sim_config()
    platform.deploy(config)
    gateway = Gateway(platform)
    gateway.expose(app.name, tuple(entry.name for entry in app.entries))
    schedule = poisson_schedule(
        app.mix, rate_per_s=args.rate, duration_s=args.duration, seed=args.seed
    )
    if not schedule:
        print(
            "no arrivals generated for this rate/duration; "
            "increase --rate or --duration",
            file=sys.stderr,
        )
        return 1
    replay_cluster_workload(platform, gateway, schedule, app.name)
    stats = platform.fleet_stats(app.name, pricing=_pricing(args))
    print(f"app                : {args.app} ({app.name})")
    print(f"policy             : {args.scaling_policy}")
    print(f"offered load       : {stats.offered_load.per_second:8.2f} req/s")
    print(f"completed          : {stats.completed:8d}")
    print(f"rejected           : {stats.rejected:8d}")
    print(f"cold starts        : {stats.cold_starts:8d}")
    print(f"cold-start rate    : {stats.cold_start_rate:8.4f}")
    print(f"queueing p50/p99   : {stats.queueing.p50_ms:8.2f} / {stats.queueing.p99_ms:.2f} ms")
    print(f"e2e p50/p99        : {stats.e2e.p50_ms:8.2f} / {stats.e2e.p99_ms:.2f} ms")
    print(f"containers spawned : {stats.containers_spawned:8d}")
    print(f"peak containers    : {stats.peak_containers:8d}")
    print(f"container-seconds  : {stats.container_seconds:8.1f}")
    print(f"GB-seconds         : {stats.gb_seconds:8.1f}")
    print(f"total cost         : ${stats.cost.total_cost:.6f}")
    print(f"cost per 1k req    : ${stats.cost.per_1k_requests:.6f}")
    return 0


def cmd_regions(args: argparse.Namespace) -> int:
    app = instantiate(app_by_key(args.app))
    regions = [name.strip() for name in args.regions.split(",") if name.strip()]
    try:
        rates = [float(rate) for rate in args.rates.split(",")]
    except ValueError:
        print(
            f"--rates must be comma-separated numbers; got {args.rates!r}",
            file=sys.stderr,
        )
        return 1
    if len(rates) == 1:
        rates = rates * len(regions)
    if len(rates) != len(regions):
        print(
            f"--rates needs 1 or {len(regions)} values for regions "
            f"{','.join(regions)}; got {len(rates)}",
            file=sys.stderr,
        )
        return 1
    topology = RegionTopology.fully_connected(regions, default_ms=args.latency)
    federation = RegionFederation(
        topology,
        policy=make_policy(args.policy, spillover_load=args.spillover, seed=args.seed),
        platform=bench_platform_config(record_traces=False),
        fleet=_fleet_config(args),
        seed=args.seed,
    )
    federation.deploy(app.sim_config())
    gateway = FederatedGateway(platform=federation)
    gateway.expose(app.name, tuple(entry.name for entry in app.entries))
    schedule = regional_poisson_schedules(
        app.mix, dict(zip(regions, rates)), duration_s=args.duration, seed=args.seed
    )
    if not schedule:
        print(
            "no arrivals generated for these rates/duration; "
            "increase --rates or --duration",
            file=sys.stderr,
        )
        return 1
    replay_federated_workload(federation, gateway, schedule, app.name)
    stats = federation.region_stats(app.name, pricing=_pricing(args))
    served = federation.served_counts(app.name)
    print(f"app     : {args.app} ({app.name})")
    print(f"routing : {args.policy}   scaling : {args.scaling_policy}   "
          f"latency : {args.latency:.0f} ms   arrivals: {len(schedule)}")
    print()
    header = (
        f"{'region':12s} {'routed':>7s} {'served':>7s} {'rejected':>8s} "
        f"{'cold rate':>9s} {'queue p50':>9s} {'queue p95':>9s} {'peak ctr':>8s} "
        f"{'$ / 1k':>9s}"
    )
    print(header)
    print("-" * len(header))
    for region in regions:
        if region not in stats:  # routed traffic (if any) was all shed
            print(f"{region:12s} {served[region]:7d} {0:7d} {'-':>8s} {'-':>9s} "
                  f"{'-':>9s} {'-':>9s} {'-':>8s} {'-':>9s}")
            continue
        s = stats[region]
        print(
            f"{region:12s} {served[region]:7d} {s.completed:7d} {s.rejected:8d} "
            f"{s.cold_start_rate:9.4f} {s.queueing.p50_ms:9.2f} "
            f"{s.queueing.p95_ms:9.2f} {s.peak_containers:8d} "
            f"{s.cost.per_1k_requests:9.5f}"
        )
    routing = federation.routing_summary()
    total_cost = sum(s.cost.total_cost for s in stats.values())
    print()
    print(f"served locally     : {routing.local:8d} ({routing.local_fraction:6.1%})")
    print(f"forwarded          : {routing.forwarded:8d}")
    print(f"network mean/p95   : {routing.network_ms.mean_ms:8.2f} / "
          f"{routing.network_ms.p95_ms:.2f} ms")
    print(f"federation cost    : ${total_cost:.6f}")
    return 0


#: Every CLI flag the deterministic stream and platform are built from:
#: the replay fingerprint written into checkpoints, so resuming under
#: different flags fails loudly instead of blending two workloads into
#: one report.  --workers is deliberately absent — the sharded manifest
#: validates it separately (with its own targeted error).
_REPLAY_FINGERPRINT_FLAGS = (
    "apps", "duration_hours", "window_hours", "requests_per_window",
    "scale", "arrival_model", "shift_hours", "exec_ms", "seed",
    "max_containers", "max_concurrency", "keep_alive", "queue_capacity",
    "scaling_policy", "target", "grace", "stable_window", "panic_window",
    "panic_threshold", "forecaster", "season_windows", "forecast_window",
    "prewarm_lead", "prewarm_headroom", "price_gb_second",
    "price_million_requests", "cold_start_surcharge", "qos_mix",
)


def _replay_journal(
    args: argparse.Namespace, fingerprint: dict | None = None
) -> JournalWriter | None:
    """The run's journal writer (not yet opened), or ``None`` sans --journal."""
    if not args.journal:
        return None
    return JournalWriter(
        args.journal,
        window_s=args.window_hours * 3600.0,
        fingerprint=fingerprint,
        trace_sample=args.trace_sample,
    )


def _journaled(journal: JournalWriter | None, run):
    """Run ``run(journal)`` inside the journal's begin/close lifecycle.

    For the non-checkpointed engines only — the checkpoint drivers own
    their journal's lifecycle themselves (resume/truncate on restart).
    """
    if journal is None:
        return run(None)
    with journal.begin():
        return run(journal)


def cmd_replay(args: argparse.Namespace) -> int:
    try:
        shift_hours = tuple(
            float(hour) for hour in args.shift_hours.split(",") if hour.strip()
        )
    except ValueError:
        print(
            f"--shift-hours must be comma-separated numbers; got {args.shift_hours!r}",
            file=sys.stderr,
        )
        return 1
    # float() happily parses "nan"/"inf"/"-3", none of which is a
    # simulation hour: NaN poisons every window comparison downstream
    # and a negative/infinite shift can never fire.
    bad_hours = [
        hour for hour in shift_hours if not math.isfinite(hour) or hour < 0
    ]
    if bad_hours:
        print(
            "--shift-hours must be finite and >= 0; got "
            f"{', '.join(f'{hour:g}' for hour in bad_hours)}",
            file=sys.stderr,
        )
        return 1
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be at least 1; got {args.workers}", file=sys.stderr)
        return 1
    if args.regions and (args.workers is not None or args.checkpoint):
        print(
            "--workers/--checkpoint need the single-cluster engine; federated "
            "replay shares routing state across regions and cannot shard",
            file=sys.stderr,
        )
        return 1
    if not 0.0 <= args.trace_sample <= 1.0:
        print(
            f"--trace-sample must be in [0, 1]; got {args.trace_sample:g}",
            file=sys.stderr,
        )
        return 1
    if args.trace_sample > 0.0 and not args.journal:
        print(
            "--trace-sample writes sampled spans into the run journal; "
            "it needs --journal PATH",
            file=sys.stderr,
        )
        return 1
    if args.journal and args.workers is not None and not args.checkpoint:
        print(
            "--journal with --workers needs --checkpoint: per-shard journals "
            "flush and resume in lockstep with the per-shard checkpoints",
            file=sys.stderr,
        )
        return 1
    if args.profile and (args.workers is not None or args.regions):
        print(
            "--profile times the single-process single-cluster engine; "
            "phase timings inside worker processes or the federation are "
            "not observable from here",
            file=sys.stderr,
        )
        return 1
    qos_mix = None
    if args.qos_mix:
        try:
            qos_mix = parse_qos_mix(args.qos_mix)
        except SpecError as error:
            print(f"--qos-mix invalid: {error}", file=sys.stderr)
            return 1
    trace = TraceGenerator(
        app_count=args.apps,
        duration_hours=args.duration_hours,
        window_hours=args.window_hours,
        seed=args.seed,
        mean_requests_per_window=args.requests_per_window,
        shift_hours=shift_hours,
    ).generate()
    stream = compile_trace(
        trace,
        model=make_arrival_model(args.arrival_model),
        seed=args.seed,
        scale=args.scale,
    )
    if qos_mix is not None:
        # Tag before any region assignment: assign_qos appends the class
        # name, assign_regions then inserts the origin ahead of it.  The
        # sharded engine re-compiles per shard and tags via its spec.
        stream = assign_qos(stream, qos_mix, seed=args.seed)
    profiler = PhaseProfiler() if args.profile else None
    if profiler is not None:
        # Time spent inside the stream's next() is the compile phase;
        # wrap before any passthrough so the measurement stays pure.
        stream = profiler.wrap_iter(stream, "compile")
    if args.progress and args.workers is None:
        # Sharded runs heartbeat per worker instead (spec.progress).
        stream = progress_stream(stream, args.window_hours * 3600.0)
    fleet = _fleet_config(args)
    accumulator = WindowAccumulator(
        window_s=args.window_hours * 3600.0, pricing=_pricing(args)
    )
    served = None
    if args.regions:
        regions = [name.strip() for name in args.regions.split(",") if name.strip()]
        # Build the assigner first: a bad --region-weights list must fail
        # before any federation is built or trace fleet deployed.
        if args.assignment == "hash-affinity":
            assigner = HashAffinity(regions)
        else:
            weights = None
            if args.region_weights:
                try:
                    weights = [float(w) for w in args.region_weights.split(",")]
                except ValueError:
                    print(
                        "--region-weights must be comma-separated numbers; "
                        f"got {args.region_weights!r}",
                        file=sys.stderr,
                    )
                    return 1
            try:
                assigner = PopularityWeighted(regions, weights=weights, seed=args.seed)
            except WorkloadError as error:
                print(f"--region-weights invalid: {error}", file=sys.stderr)
                return 1
        topology = RegionTopology.fully_connected(regions, default_ms=args.latency)
        federation = RegionFederation(
            topology,
            policy=make_policy(
                args.routing,
                spillover_load=args.spillover,
                qos_classes=qos_mix,
                seed=args.seed,
            ),
            platform=bench_platform_config(record_traces=False),
            fleet=fleet,
            seed=args.seed,
            qos=qos_mix,
        )
        deploy_trace(federation, trace, exec_ms=args.exec_ms)
        gateway = FederatedGateway(platform=federation)
        expose_trace(gateway, trace)
        summary = _journaled(
            _replay_journal(args),
            lambda obs: gateway.submit_stream(
                as_paths(assign_regions(stream, assigner)), accumulator, obs=obs
            ),
        )
        served = federation.served_counts()
    elif args.workers is not None:
        # Sharded engine: split the trace's apps across worker processes
        # and merge the per-shard summaries (bit-identical to 1 worker,
        # provisioned tails charged to natural expiry).  With
        # --checkpoint, every worker writes its own per-shard checkpoint
        # file coordinated by a manifest at the checkpoint path, so the
        # sharded run is resumable too — killed mid-trace, rerunning the
        # same command resumes every shard from its last window boundary.
        spec = ShardReplaySpec(
            platform=bench_platform_config(record_traces=False),
            fleet=fleet,
            seed=args.seed,
            replay_seed=args.seed,
            model=make_arrival_model(args.arrival_model),
            scale=args.scale,
            window_s=args.window_hours * 3600.0,
            pricing=_pricing(args),
            exec_ms=args.exec_ms,
            qos=qos_mix,
            qos_seed=args.seed,
            progress=args.progress,
        )
        if args.checkpoint:
            fingerprint = {
                flag: getattr(args, flag) for flag in _REPLAY_FINGERPRINT_FLAGS
            }
            resumed = Path(args.checkpoint).exists()
            try:
                summary = run_sharded_checkpointed(
                    trace,
                    args.checkpoint,
                    spec,
                    workers=args.workers,
                    fingerprint=fingerprint,
                    journal=args.journal or None,
                    trace_sample=args.trace_sample,
                )
            except ReproError as error:
                print(
                    f"cannot resume from {args.checkpoint}: {error}",
                    file=sys.stderr,
                )
                return 1
            if resumed:
                print(f"resumed from checkpoint {args.checkpoint}")
        else:
            summary = replay_sharded(trace, spec, workers=args.workers)
    else:
        platform = ClusterPlatform(
            config=bench_platform_config(record_traces=False),
            fleet=fleet,
            seed=args.seed,
            qos=qos_mix,
        )
        deploy_trace(platform, trace, exec_ms=args.exec_ms)
        run_started = time.perf_counter()
        if args.checkpoint:
            fingerprint = {
                flag: getattr(args, flag) for flag in _REPLAY_FINGERPRINT_FLAGS
            }
            resumed = Path(args.checkpoint).exists()
            try:
                summary = run_stream_checkpointed(
                    platform, stream, accumulator, args.checkpoint,
                    fingerprint=fingerprint,
                    journal=_replay_journal(args, fingerprint=fingerprint),
                    profiler=profiler,
                )
            except ReproError as error:
                print(
                    f"cannot resume from {args.checkpoint}: {error}",
                    file=sys.stderr,
                )
                return 1
            if resumed:
                print(f"resumed from checkpoint {args.checkpoint}")
        else:
            gateway = Gateway(platform)
            expose_trace(gateway, trace)
            summary = _journaled(
                _replay_journal(args),
                lambda obs: gateway.submit_stream(
                    as_paths(stream), accumulator, obs=obs
                ),
            )
        if profiler is not None:
            profiler.add("total", time.perf_counter() - run_started)
            profiler.derive("event-loop", "total", "compile", "checkpoint-write")
    if summary.arrivals == 0:
        print(
            "trace compiled to zero arrivals; "
            "increase --scale or --requests-per-window",
            file=sys.stderr,
        )
        return 1
    print(
        f"trace    : {args.apps} apps x {len(summary.windows)} windows "
        f"({args.window_hours:.0f} h), model {args.arrival_model}, "
        f"scale {args.scale:g}, seed {args.seed}"
    )
    shifts = ",".join(f"{hour:g}" for hour in shift_hours) or "none"
    print(f"policy   : {args.scaling_policy}   shift hours : {shifts}")
    if qos_mix is not None:
        mix = ", ".join(f"{cls.name}={cls.arrival_weight:g}" for cls in qos_mix)
        print(f"qos mix  : {mix}")
    if args.workers is not None:
        checkpointed = ", checkpointed" if args.checkpoint else ""
        print(
            f"engine   : sharded, {args.workers} worker process(es){checkpointed}"
        )
    if served is not None:
        routed = "  ".join(f"{region}={count}" for region, count in served.items())
        print(f"routing  : {args.routing} ({args.assignment})   served: {routed}")
    print()
    header = (
        f"{'window':>6s} {'start h':>8s} {'arrivals':>8s} {'done':>8s} "
        f"{'shed%':>6s} {'cold%':>6s} {'q p95 ms':>9s} {'GB-s':>9s} {'$':>10s}"
    )
    print(header)
    print("-" * len(header))
    for window in summary.windows:
        # Windows that completed nothing despite arrivals carry the
        # UNDEFINED_RATE sentinel (< 0) — print a dash, not a rate.
        cold = (
            f"{window.cold_start_rate:6.1%}" if window.cold_start_rate >= 0 else f"{'-':>6s}"
        )
        p95 = (
            f"{window.queue_p95_ms:9.2f}" if window.queue_p95_ms >= 0 else f"{'-':>9s}"
        )
        print(
            f"{window.index:6d} {window.start_s / 3600.0:8.1f} "
            f"{window.arrivals:8d} {window.completed:8d} "
            f"{window.shed_rate:6.1%} {cold} "
            f"{p95} {window.gb_seconds:9.1f} "
            f"{window.cost.total_cost:10.6f}"
        )
    print()
    print(f"arrivals           : {summary.arrivals:10d}")
    print(f"completed          : {summary.completed:10d}")
    print(f"shed               : {summary.shed:10d}")
    print(f"cold-start rate    : {summary.cold_start_rate:10.4f}")
    print(f"GB-seconds         : {summary.gb_seconds:10.1f}")
    print(f"total cost         : ${summary.cost.total_cost:.6f}")
    print(f"cost per 1k req    : ${summary.cost.per_1k_requests:.6f}")
    if summary.qos:
        print()
        qos_header = (
            f"{'class':10s} {'completed':>9s} {'late':>8s} {'late%':>6s} "
            f"{'dropped':>8s} {'utility':>12s}"
        )
        print(qos_header)
        print("-" * len(qos_header))
        for entry in summary.qos:
            print(
                f"{entry.qos_class:10s} {entry.completed:9d} "
                f"{entry.violations:8d} {entry.violation_rate:6.1%} "
                f"{entry.dropped:8d} {entry.utility:12.2f}"
            )
        print()
        print(f"total utility      : {summary.utility:10.2f}")
    if args.journal:
        print()
        print(f"journal written to {args.journal} (inspect with slimstart obs)")
    if profiler is not None:
        print()
        header = f"{'phase':18s} {'seconds':>10s} {'req/s':>12s}"
        print(header)
        print("-" * len(header))
        for name, entry in profiler.report(requests=summary.arrivals).items():
            rate = entry.get("requests_per_s")
            rate_text = f"{rate:12.0f}" if rate is not None else f"{'-':>12s}"
            print(f"{name:18s} {entry['seconds']:10.4f} {rate_text}")
    return 0


def _render_obs_row(row: dict) -> str:
    """One journal row as an aligned ``kind app field=value...`` line."""
    rest = " ".join(
        f"{key}={row[key]}" for key in sorted(row) if key not in ("kind", "app")
    )
    return f"{row.get('kind', '?'):10s} {row.get('app', '-'):14s} {rest}"


def cmd_obs(args: argparse.Namespace) -> int:
    try:
        if args.obs_command == "query":
            for row in query_rows(
                args.journal,
                kind=args.kind,
                app=args.app,
                since=args.since,
                until=args.until,
            ):
                if args.field is not None:
                    if args.field not in row:
                        continue
                    value = row[args.field]
                    print(json.dumps(value) if args.json else value)
                elif args.json:
                    print(json.dumps(row, sort_keys=True))
                else:
                    print(_render_obs_row(row))
        elif args.obs_command == "tail":
            for row in tail_rows(args.journal, args.lines):
                if args.json:
                    print(json.dumps(row, sort_keys=True))
                else:
                    print(_render_obs_row(row))
        else:  # summarize
            summary = summarize_journal(args.journal)
            if args.json:
                print(json.dumps(summary, sort_keys=True, indent=2))
                return 0
            start = summary["start_s"]
            end = summary["end_s"]
            span = (
                f"{start:.0f}s .. {end:.0f}s" if start is not None else "empty"
            )
            print(f"journal  : {args.journal}")
            print(f"windows  : {summary['windows']}   span: {span}")
            print()
            header = (
                f"{'app':14s} {'arrivals':>9s} {'done':>9s} {'shed':>6s} "
                f"{'cold':>6s} {'cold%':>7s} {'q mean ms':>10s}"
            )
            print(header)
            print("-" * len(header))
            for name, app in summary["apps"].items():
                cold_rate = (
                    f"{app['cold_start_rate']:7.1%}"
                    if app["cold_start_rate"] >= 0
                    else f"{'-':>7s}"
                )
                queue_mean = (
                    f"{app['queue_mean_ms']:10.2f}"
                    if app["queue_mean_ms"] >= 0
                    else f"{'-':>10s}"
                )
                print(
                    f"{name:14s} {app['arrivals']:9d} {app['completed']:9d} "
                    f"{app['shed']:6d} {app['cold_starts']:6d} "
                    f"{cold_rate} {queue_mean}"
                )
            print()
            print(f"arrivals           : {summary['arrivals']:10d}")
            print(f"completed          : {summary['completed']:10d}")
            print(f"shed               : {summary['shed']:10d}")
            print(f"cold starts        : {summary['cold_starts']:10d}")
            print(f"scaling decisions  : {summary['scaling_decisions']:10d}")
            print(f"containers booted  : {summary['containers_booted']:10d}")
            print(f"provisions         : {summary['provisions']:10d}")
            print(f"GB-seconds         : {summary['gb_seconds']:10.1f}")
            print(f"trace spans        : {summary['spans']:10d}")
    except ReproError as error:
        print(f"{error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (e.g. ``| head``): exit quietly like
        # any stream tool, parking stdout so interpreter shutdown does
        # not print a second, spurious broken-pipe complaint.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    with open(args.plan) as handle:
        payload = json.load(handle)
    plan = DeferralPlan(
        app=payload["app"],
        deferred_handler_imports=frozenset(payload["deferred_handler_imports"]),
        deferred_library_edges=frozenset(payload["deferred_library_edges"]),
    )
    tool = SlimStart()
    result = tool.optimize_workspace(args.workspace, plan, args.out)
    print(f"optimized workspace written to {result.workspace}")
    for deferred in result.handler_result.deferred:
        print(f"  handler: deferred {deferred.import_statement}")
    for file, statement in result.stub_result.commented_edges:
        print(f"  library: {file}: {statement} -> lazy")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slimstart",
        description="SlimStart reproduction: profile-guided cold-start optimization.",
    )
    parser.add_argument(
        "--cold-starts", type=int, default=500, help="requests per measurement run"
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="measurement repetitions to average"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the benchmark applications")

    report = sub.add_parser("report", help="profile one app, print its summary")
    report.add_argument("--app", required=True, help="application key, e.g. R-SA")
    report.add_argument("--plan-out", help="write the deferral plan as JSON")

    cycle = sub.add_parser("cycle", help="full optimize cycle on one app")
    cycle.add_argument("--app", required=True, help="application key, e.g. R-GB")

    sub.add_parser("table2", help="regenerate Table II on the simulator")

    cluster = sub.add_parser(
        "cluster",
        help="replay traffic against a container fleet",
        epilog=(
            "Multi-application streams: build per-app schedules with "
            "repro.workloads.arrival and combine them with "
            "merge_schedules(), which interleaves them into one "
            "time-ordered gateway stream for Gateway.submit(). "
            "Autoscaling: --policy picks when containers boot "
            "(per-request boots eagerly; target-utilization holds warm "
            "headroom via --target/--grace; panic-window detects bursts "
            "over --panic-window vs --stable-window and suspends "
            "scale-down while panicking; predictive learns per-window "
            "arrival counts via --forecaster ewma|holt-winters over "
            "--forecast-window seconds and pre-warms --prewarm-headroom "
            "times the forecast, --prewarm-lead seconds ahead); "
            "--price-gb-second and "
            "--cold-start-surcharge price the run in dollars."
        ),
    )
    cluster.add_argument("--app", required=True, help="application key, e.g. R-SA")
    cluster.add_argument("--rate", type=float, default=5.0, help="arrivals per second")
    cluster.add_argument("--duration", type=float, default=600.0, help="seconds of traffic")
    _add_fleet_arguments(cluster, "--policy", max_containers=16)

    regions = sub.add_parser(
        "regions",
        help="replay multi-region traffic across federated fleets",
        epilog=(
            "Each region runs its own container fleet; a routing policy "
            "(round-robin, least-loaded, or locality-biased with "
            "spillover) picks the serving region per request, with "
            "failover away from regions that shed load."
        ),
    )
    regions.add_argument("--app", required=True, help="application key, e.g. R-SA")
    regions.add_argument(
        "--regions",
        default="us-east,eu-west,ap-south",
        help="comma-separated region names",
    )
    regions.add_argument(
        "--rates",
        default="8,2,1",
        help="per-region arrivals per second (one value broadcasts to all)",
    )
    regions.add_argument("--duration", type=float, default=600.0, help="seconds of traffic")
    regions.add_argument(
        "--policy", choices=POLICY_NAMES, default="least-loaded"
    )
    regions.add_argument(
        "--latency", type=float, default=80.0, help="inter-region latency, ms"
    )
    regions.add_argument(
        "--spillover",
        type=int,
        default=None,
        help="locality policy: spill when origin load reaches this",
    )
    _add_fleet_arguments(regions, "--scaling-policy", max_containers=8)

    replay = sub.add_parser(
        "replay",
        help="stream a production-shaped trace through the simulators",
        epilog=(
            "Generates the paper's Fig. 3/Fig. 10 fleet shape (Zipf "
            "handler popularity, multi-entry apps, workload-shift events "
            "at --shift-hours), compiles it into a lazy globally "
            "time-ordered arrival stream (--arrival-model "
            "uniform|poisson|diurnal), and streams it through the "
            "cluster simulator — or a multi-region federation when "
            "--regions is given (--assignment maps each app to its "
            "origin region; --routing picks the serving region). "
            "Metrics fold into per-window accumulators at bounded "
            "memory, so multi-day, million-request replays fit in RAM; "
            "the report is the per-window time series where shift-event "
            "transients stay visible. Single-cluster replays scale out "
            "with --workers N (the trace shards by app hash across "
            "processes; merged results are bit-identical to one worker) "
            "and survive interruption with --checkpoint PATH (state is "
            "saved every window; rerunning the same command resumes). "
            "The two compose: --workers 4 --checkpoint PATH writes one "
            "checkpoint file per shard plus a manifest at PATH, and a "
            "killed run resumes every shard from its last window "
            "boundary — the worker count must match the manifest's. "
            "--qos-mix 'critical=1,standard=5,batch=4' tags every request "
            "with a QoS class (utility, deadline, penalties) and adds the "
            "per-class deadline-violation/utility report; with --regions, "
            "--routing probabilistic re-solves local/offload/drop "
            "probabilities from recent load to maximize that utility."
        ),
    )
    replay.add_argument("--apps", type=int, default=24, help="trace fleet size")
    replay.add_argument(
        "--duration-hours", type=float, default=96.0, help="trace length, hours"
    )
    replay.add_argument(
        "--window-hours", type=float, default=12.0, help="trace window size, hours"
    )
    replay.add_argument(
        "--requests-per-window",
        type=float,
        default=600.0,
        help="mean requests per app per window",
    )
    replay.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply every window count (0.01 = 1%% volume smoke test)",
    )
    replay.add_argument(
        "--arrival-model",
        choices=ARRIVAL_MODEL_NAMES,
        default="uniform",
        help="intra-window arrival process",
    )
    replay.add_argument(
        "--shift-hours",
        default="48,72",
        help="comma-separated workload-shift event hours ('' for none)",
    )
    replay.add_argument(
        "--exec-ms", type=float, default=2.0, help="handler self-time per request"
    )
    replay.add_argument(
        "--qos-mix",
        default=None,
        help="comma-separated QoS classes with arrival weights, e.g. "
        "'critical=1,standard=5,batch=4' "
        f"(presets: {','.join(sorted(QOS_PRESETS))})",
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the trace by app across N worker processes "
        "(single-cluster only; results are bit-identical to 1 worker)",
    )
    replay.add_argument(
        "--checkpoint",
        default=None,
        help="write a resumable checkpoint at every window boundary; "
        "if the file exists, resume the interrupted replay from it "
        "(with --workers N: one checkpoint per shard + a manifest here)",
    )
    replay.add_argument(
        "--regions",
        default=None,
        help="comma-separated region names; enables federated replay",
    )
    replay.add_argument(
        "--assignment",
        choices=("hash-affinity", "popularity-weighted"),
        default="hash-affinity",
        help="app -> origin-region assignment",
    )
    replay.add_argument(
        "--region-weights",
        default=None,
        help="popularity-weighted assignment: comma-separated region weights",
    )
    replay.add_argument(
        "--routing",
        choices=POLICY_NAMES,
        default="least-loaded",
        help="federated replay: routing policy",
    )
    replay.add_argument(
        "--latency", type=float, default=80.0, help="inter-region latency, ms"
    )
    replay.add_argument(
        "--spillover",
        type=int,
        default=None,
        help="locality routing: spill when origin load reaches this",
    )
    replay.add_argument(
        "--journal",
        default=None,
        help="append run telemetry (window deltas, scaling decisions, "
        "shed/provision events, sampled spans) to this JSONL journal; "
        "inspect it with 'slimstart obs'",
    )
    replay.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help="fraction of requests to journal as trace spans "
        "(0.01 = one in a hundred; needs --journal)",
    )
    replay.add_argument(
        "--progress",
        action="store_true",
        help="heartbeat a progress line to stderr at every window boundary",
    )
    replay.add_argument(
        "--profile",
        action="store_true",
        help="print the wall-clock phase breakdown (compile / event loop / "
        "checkpoint writes) after the replay",
    )
    _add_fleet_arguments(replay, "--policy", max_containers=8)

    obs = sub.add_parser(
        "obs",
        help="query a journaled replay's run journal",
        epilog=(
            "Reads the append-only JSONL journal written by slimstart "
            "replay --journal PATH. Every subcommand stream-scans, so "
            "memory stays O(1) in the journal size: query filters rows "
            "(--kind/--app compose with the --since/--until replay-clock "
            "window; --field projects one field), tail shows the last "
            "rows, summarize aggregates per-app and run totals."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_query = obs_sub.add_parser("query", help="filter journal rows, streamed")
    obs_query.add_argument("journal", help="journal file to scan")
    obs_query.add_argument(
        "--kind",
        choices=("window", "scale", "shed", "provision", "span"),
        default=None,
        help="only rows of this kind",
    )
    obs_query.add_argument("--app", default=None, help="only this app's rows")
    obs_query.add_argument(
        "--field",
        default=None,
        help="print just this field's value (rows lacking it are skipped)",
    )
    obs_query.add_argument(
        "--since",
        type=float,
        default=None,
        help="only rows at/after this replay-clock second (inclusive)",
    )
    obs_query.add_argument(
        "--until",
        type=float,
        default=None,
        help="only rows before this replay-clock second (exclusive)",
    )
    obs_query.add_argument(
        "--json", action="store_true", help="print raw JSON rows"
    )
    obs_tail = obs_sub.add_parser("tail", help="show the journal's last rows")
    obs_tail.add_argument("journal", help="journal file to scan")
    obs_tail.add_argument(
        "-n", "--lines", type=int, default=10, help="rows to show"
    )
    obs_tail.add_argument(
        "--json", action="store_true", help="print raw JSON rows"
    )
    obs_summarize = obs_sub.add_parser(
        "summarize", help="aggregate per-app and run totals"
    )
    obs_summarize.add_argument("journal", help="journal file to scan")
    obs_summarize.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )

    optimize = sub.add_parser("optimize", help="apply a plan to a real workspace")
    optimize.add_argument("--workspace", required=True)
    optimize.add_argument("--plan", required=True, help="plan JSON file")
    optimize.add_argument("--out", required=True, help="destination workspace")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "apps": cmd_apps,
        "report": cmd_report,
        "cycle": cmd_cycle,
        "table2": cmd_table2,
        "cluster": cmd_cluster,
        "regions": cmd_regions,
        "replay": cmd_replay,
        "obs": cmd_obs,
        "optimize": cmd_optimize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
