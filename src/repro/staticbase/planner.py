"""Shared plan derivation: turn "used module" sets into deferral plans.

Given the set of modules that some analysis considers *used* (statically
reachable for FaaSLight, dynamically sampled for SLIMSTART's upper-bound
study), derive the maximal set of safely deferrable units: whole handler
imports when an entire library is dead, and maximal dead package subtrees
inside partially-used libraries.
"""

from __future__ import annotations

from typing import Iterable

from repro.plan import DeferralPlan


def _children(modules: set[str], dotted: str) -> list[str]:
    prefix = dotted + "."
    result = set()
    for module in modules:
        if module.startswith(prefix):
            remainder = module[len(prefix):]
            result.add(prefix + remainder.split(".")[0])
    return sorted(result)


def _subtree_used(used: set[str], dotted: str) -> bool:
    prefix = dotted + "."
    return any(module == dotted or module.startswith(prefix) for module in used)


def dead_subtree_plan(
    app: str,
    loaded_modules: Iterable[str],
    used_modules: Iterable[str],
    handler_imports: Iterable[str],
) -> DeferralPlan:
    """Derive the maximal-deferral plan from a used-module judgement.

    * A handler import whose library contains no used module is deferred at
      the handler level.
    * Inside libraries that are used, a top-down walk defers the *maximal*
      dead subtrees (flagging a dead package once, not each of its modules).
    * Libraries loaded only transitively (dependencies of dependencies) are
      deferred as library edges when fully dead.
    """
    loaded = set(loaded_modules)
    used = set(used_modules)
    handler_list = list(dict.fromkeys(handler_imports))

    deferred_handler: set[str] = set()
    deferred_edges: set[str] = set()

    handler_libraries = {dotted.partition(".")[0] for dotted in handler_list}
    loaded_libraries = {module.partition(".")[0] for module in loaded}

    for dotted in handler_list:
        library = dotted.partition(".")[0]
        if not _subtree_used(used, library):
            deferred_handler.add(dotted)

    for library in sorted(loaded_libraries):
        if library in deferred_handler or (
            library in {d.partition(".")[0] for d in deferred_handler}
        ):
            continue
        if not _subtree_used(used, library):
            if library not in handler_libraries:
                deferred_edges.add(library)
            continue

        def walk(subtree_root: str) -> None:
            if not _subtree_used(used, subtree_root):
                deferred_edges.add(subtree_root)
                return
            for child in _children(loaded, subtree_root):
                walk(child)

        for child in _children(loaded, library):
            walk(child)

    return DeferralPlan(
        app=app,
        deferred_handler_imports=frozenset(deferred_handler),
        deferred_library_edges=frozenset(deferred_edges),
    )
