"""FaaSLight-style static analysis baseline.

The paper's main comparison point [13] eliminates libraries *unreachable
from any entry function* via static call-graph reachability.  Crucially, it
cannot see workload skew: a library reachable only from a never-invoked
entry point stays loaded.  This package implements the baseline twice —
exactly on application specifications (for the simulator) and best-effort
on real workspace sources (AST call-graph extraction) — both producing the
same :class:`~repro.plan.DeferralPlan` currency as SLIMSTART, so the two
tools are compared by running identical machinery on their plans.
"""

from repro.staticbase.planner import dead_subtree_plan
from repro.staticbase.spec_analysis import StaticAnalysis, analyze_sim_app
from repro.staticbase.ast_analysis import analyze_workspace, extract_call_graph

__all__ = [
    "dead_subtree_plan",
    "StaticAnalysis",
    "analyze_sim_app",
    "analyze_workspace",
    "extract_call_graph",
]
