"""Best-effort static call-graph extraction from real workspace sources.

This is the "static analysis on actual code" half of the FaaSLight
baseline: it parses every module in a workspace, discovers function
definitions, and extracts call edges it can resolve —

* local calls (``helper()`` within the same module),
* attribute-chain calls rooted at an imported package
  (``sligraph.drawing.colors.render()``), resolved against the workspace's
  real module tree, and
* the generated runtime's dynamic dispatch
  (``_rt.resolve('lib.mod').fn()``), which is statically evident because
  the module path is a string literal.

Reachability then runs from the handler's entry functions.  Like any real
static analyzer it is *sound for our generated code shape* and
conservative elsewhere: edges it cannot resolve are ignored, which only
makes the baseline keep more code (never break it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import SpecError
from repro.plan import DeferralPlan
from repro.staticbase.planner import dead_subtree_plan


@dataclass
class CallGraph:
    """Functions and resolved call edges of one workspace."""

    modules: set[str] = field(default_factory=set)  # dotted module names
    functions: set[str] = field(default_factory=set)  # "module:function"
    edges: dict[str, set[str]] = field(default_factory=dict)
    module_imports: dict[str, set[str]] = field(default_factory=dict)
    # module -> dotted modules it imports at top level

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, function: str) -> set[str]:
        return self.edges.get(function, set())

    def reachable_from(self, roots: set[str]) -> frozenset[str]:
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            function = frontier.pop()
            if function in seen:
                continue
            seen.add(function)
            frontier.extend(
                callee for callee in self.callees(function) if callee in self.functions
            )
        return frozenset(seen)


def _module_name_for(path: Path, workspace: Path) -> str | None:
    relative = path.relative_to(workspace)
    parts = list(relative.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    if not parts:
        return None
    return ".".join(parts)


class _ModuleVisitor(ast.NodeVisitor):
    """Extracts defs, imports and resolvable call edges from one module."""

    def __init__(self, module: str, graph: CallGraph) -> None:
        self.module = module
        self.graph = graph
        self._current: list[str] = []
        self._name_to_module: dict[str, str] = {}
        self._local_functions: set[str] = set()

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            root = alias.name if alias.asname else alias.name.partition(".")[0]
            self._name_to_module[bound] = root
            self.graph.module_imports.setdefault(self.module, set()).add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not node.level and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                self._name_to_module[bound] = f"{node.module}.{alias.name}"
            self.graph.module_imports.setdefault(self.module, set()).add(node.module)
        self.generic_visit(node)

    # -- definitions ------------------------------------------------------------

    def _visit_def(self, node) -> None:
        qualified = f"{self.module}:{node.name}"
        if not self._current:  # record top-level functions only
            self.graph.functions.add(qualified)
            self._local_functions.add(node.name)
        self._current.append(qualified if not self._current else self._current[0])
        self.generic_visit(node)
        self._current.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    # -- calls ---------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._current[0] if self._current else f"{self.module}:<module>"
        callee = self._resolve_call(node)
        if callee is not None:
            self.graph.add_edge(caller, callee)
        self.generic_visit(node)

    def _resolve_call(self, node: ast.Call) -> str | None:
        func = node.func
        # Pattern 1: local call f(...)
        if isinstance(func, ast.Name):
            return f"{self.module}:{func.id}"
        if not isinstance(func, ast.Attribute):
            return None
        # Pattern 2: _rt.resolve('lib.mod').fn(...)
        inner = func.value
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "resolve"
            and len(inner.args) == 1
            and isinstance(inner.args[0], ast.Constant)
            and isinstance(inner.args[0].value, str)
        ):
            return f"{inner.args[0].value}:{func.attr}"
        # Pattern 3: attribute chain rooted at an imported name.
        chain: list[str] = [func.attr]
        current = inner
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        chain.append(current.id)
        chain.reverse()  # [root, ..., attr, fn]
        root = self._name_to_module.get(chain[0])
        if root is None:
            return None
        dotted_parts = root.split(".") + chain[1:-1]
        function = chain[-1]
        # The longest prefix that is a real module wins; remaining parts
        # (if any) are object attributes we cannot resolve statically.
        for end in range(len(dotted_parts), 0, -1):
            candidate = ".".join(dotted_parts[:end])
            if candidate in self.graph.modules:
                if end == len(dotted_parts):
                    return f"{candidate}:{function}"
                return None
        return None


def extract_call_graph(workspace: str | Path) -> CallGraph:
    """Parse every module in a workspace into a :class:`CallGraph`."""
    workspace_path = Path(workspace).resolve()
    if not workspace_path.is_dir():
        raise SpecError(f"workspace does not exist: {workspace_path}")
    graph = CallGraph()
    paths: list[tuple[Path, str]] = []
    for path in sorted(workspace_path.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        module = _module_name_for(path, workspace_path)
        if module is None or module.startswith("_slimstart_runtime"):
            continue
        graph.modules.add(module)
        paths.append((path, module))
    for path, module in paths:  # second pass: modules set is complete
        tree = ast.parse(path.read_text())
        _ModuleVisitor(module, graph).visit(tree)
    return graph


def analyze_workspace(
    workspace: str | Path,
    entries: tuple[str, ...],
    handler_module: str = "handler",
) -> tuple[DeferralPlan, CallGraph, frozenset[str]]:
    """FaaSLight on a real workspace: plan + graph + used modules."""
    graph = extract_call_graph(workspace)
    roots = {f"{handler_module}:{entry}" for entry in entries}
    reachable = graph.reachable_from(roots)
    used_modules = frozenset(
        function.rpartition(":")[0]
        for function in reachable
        if function.rpartition(":")[0] != handler_module
    )
    handler_imports = tuple(
        sorted(graph.module_imports.get(handler_module, set()))
    )
    loaded = {module for module in graph.modules if module != handler_module}
    app_name = Path(workspace).name
    plan = dead_subtree_plan(
        app=app_name,
        loaded_modules=loaded,
        used_modules=used_modules,
        handler_imports=handler_imports,
    )
    return plan, graph, used_modules
