"""Exact static reachability analysis over application specifications.

Static analysis sees *code*, not workloads: every declared entry point is a
root, so anything reachable from a rarely- or never-invoked entry counts as
needed.  That is precisely the blind spot (§II-B, Observation 2) SLIMSTART
exploits, and this module quantifies it for the simulator's applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faas.sim import SimAppConfig
from repro.plan import DeferralPlan
from repro.staticbase.planner import dead_subtree_plan
from repro.synthlib.spec import FunctionRef


@dataclass(frozen=True)
class StaticAnalysis:
    """Result of FaaSLight-style reachability on one application."""

    app: str
    reachable_functions: frozenset[str]  # qualified "lib.mod:fn"
    used_modules: frozenset[str]  # modules containing reachable functions
    loaded_modules: frozenset[str]  # unoptimized eager import closure
    plan: DeferralPlan
    unoptimized_init_ms: float
    optimized_init_ms: float

    @property
    def removable_fraction(self) -> float:
        """Share of init overhead static analysis can eliminate.

        This is Fig. 2's "Unreachable (Static)" bar; the complement is the
        "Reachable (Static)" share the baseline must keep loading.
        """
        if self.unoptimized_init_ms <= 0:
            return 0.0
        saved = self.unoptimized_init_ms - self.optimized_init_ms
        return saved / self.unoptimized_init_ms


def reachable_functions(config: SimAppConfig) -> frozenset[str]:
    """Transitive call-graph closure from *all* entry points."""
    eco = config.ecosystem
    seen: set[str] = set()
    frontier: list[FunctionRef] = []
    for entry in config.entries:
        for call in entry.calls:
            frontier.append(eco.parse_function(call))
    while frontier:
        ref = frontier.pop()
        if ref.qualified in seen:
            continue
        seen.add(ref.qualified)
        frontier.extend(eco.call_targets(ref))
    return frozenset(seen)


def analyze_sim_app(config: SimAppConfig) -> StaticAnalysis:
    """Run the FaaSLight baseline on a simulated application."""
    eco = config.ecosystem
    reachable = reachable_functions(config)
    used_modules = frozenset(
        ref.rpartition(":")[0] for ref in reachable
    )
    roots = [eco.parse_module(dotted) for dotted in config.handler_imports]
    closure = eco.import_closure(roots)
    loaded = frozenset(key.dotted for key in closure)
    plan = dead_subtree_plan(
        app=config.name,
        loaded_modules=loaded,
        used_modules=used_modules,
        handler_imports=config.handler_imports,
    )
    unoptimized_ms = eco.total_init_cost_ms(closure) * config.cost_scale
    deferred_keys = frozenset(
        eco.parse_module(dotted) for dotted in plan.deferred_library_edges
    )
    optimized_roots = [
        eco.parse_module(dotted)
        for dotted in config.handler_imports
        if dotted not in plan.deferred_handler_imports
    ]
    optimized_closure = eco.import_closure(optimized_roots, deferred=deferred_keys)
    optimized_ms = eco.total_init_cost_ms(optimized_closure) * config.cost_scale
    return StaticAnalysis(
        app=config.name,
        reachable_functions=reachable,
        used_modules=used_modules,
        loaded_modules=loaded,
        plan=plan,
        unoptimized_init_ms=unoptimized_ms,
        optimized_init_ms=optimized_ms,
    )
